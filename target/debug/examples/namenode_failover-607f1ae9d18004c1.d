/root/repo/target/debug/examples/namenode_failover-607f1ae9d18004c1.d: examples/namenode_failover.rs

/root/repo/target/debug/examples/namenode_failover-607f1ae9d18004c1: examples/namenode_failover.rs

examples/namenode_failover.rs:
