/root/repo/target/debug/examples/namenode_failover-660dee7f952ca5dd.d: examples/namenode_failover.rs Cargo.toml

/root/repo/target/debug/examples/libnamenode_failover-660dee7f952ca5dd.rmeta: examples/namenode_failover.rs Cargo.toml

examples/namenode_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
