/root/repo/target/debug/examples/wordcount-3fff7abdfc83075a.d: examples/wordcount.rs

/root/repo/target/debug/examples/wordcount-3fff7abdfc83075a: examples/wordcount.rs

examples/wordcount.rs:
