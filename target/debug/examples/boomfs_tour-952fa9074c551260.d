/root/repo/target/debug/examples/boomfs_tour-952fa9074c551260.d: examples/boomfs_tour.rs

/root/repo/target/debug/examples/boomfs_tour-952fa9074c551260: examples/boomfs_tour.rs

examples/boomfs_tour.rs:
