/root/repo/target/debug/examples/late_stragglers-cf9e8e9b67f7711d.d: examples/late_stragglers.rs

/root/repo/target/debug/examples/late_stragglers-cf9e8e9b67f7711d: examples/late_stragglers.rs

examples/late_stragglers.rs:
