/root/repo/target/debug/examples/quickstart-48b96a9fab8ea9fe.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-48b96a9fab8ea9fe: examples/quickstart.rs

examples/quickstart.rs:
