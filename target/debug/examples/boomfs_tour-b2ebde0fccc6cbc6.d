/root/repo/target/debug/examples/boomfs_tour-b2ebde0fccc6cbc6.d: examples/boomfs_tour.rs Cargo.toml

/root/repo/target/debug/examples/libboomfs_tour-b2ebde0fccc6cbc6.rmeta: examples/boomfs_tour.rs Cargo.toml

examples/boomfs_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
