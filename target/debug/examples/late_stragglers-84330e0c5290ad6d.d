/root/repo/target/debug/examples/late_stragglers-84330e0c5290ad6d.d: examples/late_stragglers.rs Cargo.toml

/root/repo/target/debug/examples/liblate_stragglers-84330e0c5290ad6d.rmeta: examples/late_stragglers.rs Cargo.toml

examples/late_stragglers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
