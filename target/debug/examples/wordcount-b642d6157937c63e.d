/root/repo/target/debug/examples/wordcount-b642d6157937c63e.d: examples/wordcount.rs Cargo.toml

/root/repo/target/debug/examples/libwordcount-b642d6157937c63e.rmeta: examples/wordcount.rs Cargo.toml

examples/wordcount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
