/root/repo/target/debug/deps/prop_sim-681c9c46d8393e6c.d: crates/simnet/tests/prop_sim.rs Cargo.toml

/root/repo/target/debug/deps/libprop_sim-681c9c46d8393e6c.rmeta: crates/simnet/tests/prop_sim.rs Cargo.toml

crates/simnet/tests/prop_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
