/root/repo/target/debug/deps/prop_stack-8124e91c35e69482.d: tests/prop_stack.rs Cargo.toml

/root/repo/target/debug/deps/libprop_stack-8124e91c35e69482.rmeta: tests/prop_stack.rs Cargo.toml

tests/prop_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
