/root/repo/target/debug/deps/boom_fs-5ee0f2fe8551d769.d: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg

/root/repo/target/debug/deps/boom_fs-5ee0f2fe8551d769: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg

crates/fs/src/lib.rs:
crates/fs/src/baseline.rs:
crates/fs/src/client.rs:
crates/fs/src/cluster.rs:
crates/fs/src/datanode.rs:
crates/fs/src/namenode.rs:
crates/fs/src/proto.rs:
crates/fs/src/olg/namenode.olg:
