/root/repo/target/debug/deps/boom_mr-55f9c3f1e7c9c4d0.d: crates/mr/src/lib.rs crates/mr/src/baseline.rs crates/mr/src/cluster.rs crates/mr/src/driver.rs crates/mr/src/jobtracker.rs crates/mr/src/proto.rs crates/mr/src/tasktracker.rs crates/mr/src/workload.rs crates/mr/src/olg/jobtracker.olg crates/mr/src/olg/fifo.olg crates/mr/src/olg/locality.olg crates/mr/src/olg/late.olg crates/mr/src/olg/naive.olg

/root/repo/target/debug/deps/boom_mr-55f9c3f1e7c9c4d0: crates/mr/src/lib.rs crates/mr/src/baseline.rs crates/mr/src/cluster.rs crates/mr/src/driver.rs crates/mr/src/jobtracker.rs crates/mr/src/proto.rs crates/mr/src/tasktracker.rs crates/mr/src/workload.rs crates/mr/src/olg/jobtracker.olg crates/mr/src/olg/fifo.olg crates/mr/src/olg/locality.olg crates/mr/src/olg/late.olg crates/mr/src/olg/naive.olg

crates/mr/src/lib.rs:
crates/mr/src/baseline.rs:
crates/mr/src/cluster.rs:
crates/mr/src/driver.rs:
crates/mr/src/jobtracker.rs:
crates/mr/src/proto.rs:
crates/mr/src/tasktracker.rs:
crates/mr/src/workload.rs:
crates/mr/src/olg/jobtracker.olg:
crates/mr/src/olg/fifo.olg:
crates/mr/src/olg/locality.olg:
crates/mr/src/olg/late.olg:
crates/mr/src/olg/naive.olg:
