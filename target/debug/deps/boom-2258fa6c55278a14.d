/root/repo/target/debug/deps/boom-2258fa6c55278a14.d: src/lib.rs src/shipped.rs Cargo.toml

/root/repo/target/debug/deps/libboom-2258fa6c55278a14.rmeta: src/lib.rs src/shipped.rs Cargo.toml

src/lib.rs:
src/shipped.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
