/root/repo/target/debug/deps/replicated_fs-ad2a00c460669363.d: crates/core/tests/replicated_fs.rs

/root/repo/target/debug/deps/replicated_fs-ad2a00c460669363: crates/core/tests/replicated_fs.rs

crates/core/tests/replicated_fs.rs:
