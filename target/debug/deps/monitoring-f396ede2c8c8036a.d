/root/repo/target/debug/deps/monitoring-f396ede2c8c8036a.d: tests/monitoring.rs

/root/repo/target/debug/deps/monitoring-f396ede2c8c8036a: tests/monitoring.rs

tests/monitoring.rs:
