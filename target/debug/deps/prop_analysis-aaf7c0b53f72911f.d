/root/repo/target/debug/deps/prop_analysis-aaf7c0b53f72911f.d: crates/overlog/tests/prop_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libprop_analysis-aaf7c0b53f72911f.rmeta: crates/overlog/tests/prop_analysis.rs Cargo.toml

crates/overlog/tests/prop_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
