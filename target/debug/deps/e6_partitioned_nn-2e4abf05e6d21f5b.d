/root/repo/target/debug/deps/e6_partitioned_nn-2e4abf05e6d21f5b.d: crates/bench/src/bin/e6_partitioned_nn.rs

/root/repo/target/debug/deps/e6_partitioned_nn-2e4abf05e6d21f5b: crates/bench/src/bin/e6_partitioned_nn.rs

crates/bench/src/bin/e6_partitioned_nn.rs:
