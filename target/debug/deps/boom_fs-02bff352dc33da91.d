/root/repo/target/debug/deps/boom_fs-02bff352dc33da91.d: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg Cargo.toml

/root/repo/target/debug/deps/libboom_fs-02bff352dc33da91.rmeta: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg Cargo.toml

crates/fs/src/lib.rs:
crates/fs/src/baseline.rs:
crates/fs/src/client.rs:
crates/fs/src/cluster.rs:
crates/fs/src/datanode.rs:
crates/fs/src/namenode.rs:
crates/fs/src/proto.rs:
crates/fs/src/olg/namenode.olg:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
