/root/repo/target/debug/deps/e6_partitioned_nn-490ec04d4c3dc9d2.d: crates/bench/src/bin/e6_partitioned_nn.rs Cargo.toml

/root/repo/target/debug/deps/libe6_partitioned_nn-490ec04d4c3dc9d2.rmeta: crates/bench/src/bin/e6_partitioned_nn.rs Cargo.toml

crates/bench/src/bin/e6_partitioned_nn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
