/root/repo/target/debug/deps/full_stack-3b79d5a5966bd3a4.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-3b79d5a5966bd3a4: tests/full_stack.rs

tests/full_stack.rs:
