/root/repo/target/debug/deps/boom_paxos-b77a8e7e053abeda.d: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg

/root/repo/target/debug/deps/boom_paxos-b77a8e7e053abeda: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg

crates/paxos/src/lib.rs:
crates/paxos/src/olg/paxos.olg:
