/root/repo/target/debug/deps/olgcheck-ff173fff6b24e223.d: src/bin/olgcheck.rs

/root/repo/target/debug/deps/olgcheck-ff173fff6b24e223: src/bin/olgcheck.rs

src/bin/olgcheck.rs:
