/root/repo/target/debug/deps/multijob-502d635715cce9a3.d: crates/mr/tests/multijob.rs Cargo.toml

/root/repo/target/debug/deps/libmultijob-502d635715cce9a3.rmeta: crates/mr/tests/multijob.rs Cargo.toml

crates/mr/tests/multijob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
