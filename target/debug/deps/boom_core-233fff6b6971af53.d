/root/repo/target/debug/deps/boom_core-233fff6b6971af53.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg Cargo.toml

/root/repo/target/debug/deps/libboom_core-233fff6b6971af53.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/fullstack.rs:
crates/core/src/replicated.rs:
crates/core/src/olg/replicated.olg:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
