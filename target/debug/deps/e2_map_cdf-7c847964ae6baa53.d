/root/repo/target/debug/deps/e2_map_cdf-7c847964ae6baa53.d: crates/bench/src/bin/e2_map_cdf.rs

/root/repo/target/debug/deps/e2_map_cdf-7c847964ae6baa53: crates/bench/src/bin/e2_map_cdf.rs

crates/bench/src/bin/e2_map_cdf.rs:
