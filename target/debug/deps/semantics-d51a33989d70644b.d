/root/repo/target/debug/deps/semantics-d51a33989d70644b.d: crates/overlog/tests/semantics.rs

/root/repo/target/debug/deps/semantics-d51a33989d70644b: crates/overlog/tests/semantics.rs

crates/overlog/tests/semantics.rs:
