/root/repo/target/debug/deps/boom_overlog-3d37215f20a5c8e2.d: crates/overlog/src/lib.rs crates/overlog/src/analysis/mod.rs crates/overlog/src/analysis/diag.rs crates/overlog/src/analysis/graph.rs crates/overlog/src/analysis/lints.rs crates/overlog/src/analysis/safety.rs crates/overlog/src/analysis/stratify.rs crates/overlog/src/ast.rs crates/overlog/src/builtins.rs crates/overlog/src/error.rs crates/overlog/src/parser.rs crates/overlog/src/plan.rs crates/overlog/src/runtime.rs crates/overlog/src/table.rs crates/overlog/src/value.rs

/root/repo/target/debug/deps/libboom_overlog-3d37215f20a5c8e2.rlib: crates/overlog/src/lib.rs crates/overlog/src/analysis/mod.rs crates/overlog/src/analysis/diag.rs crates/overlog/src/analysis/graph.rs crates/overlog/src/analysis/lints.rs crates/overlog/src/analysis/safety.rs crates/overlog/src/analysis/stratify.rs crates/overlog/src/ast.rs crates/overlog/src/builtins.rs crates/overlog/src/error.rs crates/overlog/src/parser.rs crates/overlog/src/plan.rs crates/overlog/src/runtime.rs crates/overlog/src/table.rs crates/overlog/src/value.rs

/root/repo/target/debug/deps/libboom_overlog-3d37215f20a5c8e2.rmeta: crates/overlog/src/lib.rs crates/overlog/src/analysis/mod.rs crates/overlog/src/analysis/diag.rs crates/overlog/src/analysis/graph.rs crates/overlog/src/analysis/lints.rs crates/overlog/src/analysis/safety.rs crates/overlog/src/analysis/stratify.rs crates/overlog/src/ast.rs crates/overlog/src/builtins.rs crates/overlog/src/error.rs crates/overlog/src/parser.rs crates/overlog/src/plan.rs crates/overlog/src/runtime.rs crates/overlog/src/table.rs crates/overlog/src/value.rs

crates/overlog/src/lib.rs:
crates/overlog/src/analysis/mod.rs:
crates/overlog/src/analysis/diag.rs:
crates/overlog/src/analysis/graph.rs:
crates/overlog/src/analysis/lints.rs:
crates/overlog/src/analysis/safety.rs:
crates/overlog/src/analysis/stratify.rs:
crates/overlog/src/ast.rs:
crates/overlog/src/builtins.rs:
crates/overlog/src/error.rs:
crates/overlog/src/parser.rs:
crates/overlog/src/plan.rs:
crates/overlog/src/runtime.rs:
crates/overlog/src/table.rs:
crates/overlog/src/value.rs:
