/root/repo/target/debug/deps/boom-ad33d5b032401e4e.d: src/lib.rs src/shipped.rs

/root/repo/target/debug/deps/libboom-ad33d5b032401e4e.rlib: src/lib.rs src/shipped.rs

/root/repo/target/debug/deps/libboom-ad33d5b032401e4e.rmeta: src/lib.rs src/shipped.rs

src/lib.rs:
src/shipped.rs:
