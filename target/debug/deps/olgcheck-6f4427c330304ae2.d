/root/repo/target/debug/deps/olgcheck-6f4427c330304ae2.d: src/bin/olgcheck.rs

/root/repo/target/debug/deps/olgcheck-6f4427c330304ae2: src/bin/olgcheck.rs

src/bin/olgcheck.rs:
