/root/repo/target/debug/deps/proptest-dc4549fd0114534f.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-dc4549fd0114534f: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
