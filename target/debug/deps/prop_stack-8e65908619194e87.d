/root/repo/target/debug/deps/prop_stack-8e65908619194e87.d: tests/prop_stack.rs

/root/repo/target/debug/deps/prop_stack-8e65908619194e87: tests/prop_stack.rs

tests/prop_stack.rs:
