/root/repo/target/debug/deps/e3_reduce_cdf-144c8bc31b6b53a7.d: crates/bench/src/bin/e3_reduce_cdf.rs

/root/repo/target/debug/deps/e3_reduce_cdf-144c8bc31b6b53a7: crates/bench/src/bin/e3_reduce_cdf.rs

crates/bench/src/bin/e3_reduce_cdf.rs:
