/root/repo/target/debug/deps/boom_overlog-de8b5a15cbd94045.d: crates/overlog/src/lib.rs crates/overlog/src/analysis/mod.rs crates/overlog/src/analysis/diag.rs crates/overlog/src/analysis/graph.rs crates/overlog/src/analysis/lints.rs crates/overlog/src/analysis/safety.rs crates/overlog/src/analysis/stratify.rs crates/overlog/src/ast.rs crates/overlog/src/builtins.rs crates/overlog/src/error.rs crates/overlog/src/parser.rs crates/overlog/src/plan.rs crates/overlog/src/runtime.rs crates/overlog/src/table.rs crates/overlog/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libboom_overlog-de8b5a15cbd94045.rmeta: crates/overlog/src/lib.rs crates/overlog/src/analysis/mod.rs crates/overlog/src/analysis/diag.rs crates/overlog/src/analysis/graph.rs crates/overlog/src/analysis/lints.rs crates/overlog/src/analysis/safety.rs crates/overlog/src/analysis/stratify.rs crates/overlog/src/ast.rs crates/overlog/src/builtins.rs crates/overlog/src/error.rs crates/overlog/src/parser.rs crates/overlog/src/plan.rs crates/overlog/src/runtime.rs crates/overlog/src/table.rs crates/overlog/src/value.rs Cargo.toml

crates/overlog/src/lib.rs:
crates/overlog/src/analysis/mod.rs:
crates/overlog/src/analysis/diag.rs:
crates/overlog/src/analysis/graph.rs:
crates/overlog/src/analysis/lints.rs:
crates/overlog/src/analysis/safety.rs:
crates/overlog/src/analysis/stratify.rs:
crates/overlog/src/ast.rs:
crates/overlog/src/builtins.rs:
crates/overlog/src/error.rs:
crates/overlog/src/parser.rs:
crates/overlog/src/plan.rs:
crates/overlog/src/runtime.rs:
crates/overlog/src/table.rs:
crates/overlog/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
