/root/repo/target/debug/deps/monitoring-5040311cd8689dd2.d: tests/monitoring.rs

/root/repo/target/debug/deps/monitoring-5040311cd8689dd2: tests/monitoring.rs

tests/monitoring.rs:
