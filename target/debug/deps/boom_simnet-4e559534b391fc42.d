/root/repo/target/debug/deps/boom_simnet-4e559534b391fc42.d: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs

/root/repo/target/debug/deps/boom_simnet-4e559534b391fc42: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs

crates/simnet/src/lib.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/overlog_actor.rs:
