/root/repo/target/debug/deps/semantics-5805c09eab373290.d: crates/overlog/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-5805c09eab373290.rmeta: crates/overlog/tests/semantics.rs Cargo.toml

crates/overlog/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
