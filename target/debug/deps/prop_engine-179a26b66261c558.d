/root/repo/target/debug/deps/prop_engine-179a26b66261c558.d: crates/overlog/tests/prop_engine.rs

/root/repo/target/debug/deps/prop_engine-179a26b66261c558: crates/overlog/tests/prop_engine.rs

crates/overlog/tests/prop_engine.rs:
