/root/repo/target/debug/deps/multijob-10fd7f41f6c10fc0.d: crates/mr/tests/multijob.rs

/root/repo/target/debug/deps/multijob-10fd7f41f6c10fc0: crates/mr/tests/multijob.rs

crates/mr/tests/multijob.rs:
