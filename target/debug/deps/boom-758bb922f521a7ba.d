/root/repo/target/debug/deps/boom-758bb922f521a7ba.d: src/lib.rs src/shipped.rs

/root/repo/target/debug/deps/boom-758bb922f521a7ba: src/lib.rs src/shipped.rs

src/lib.rs:
src/shipped.rs:
