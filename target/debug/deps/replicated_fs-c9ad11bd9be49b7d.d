/root/repo/target/debug/deps/replicated_fs-c9ad11bd9be49b7d.d: crates/core/tests/replicated_fs.rs Cargo.toml

/root/repo/target/debug/deps/libreplicated_fs-c9ad11bd9be49b7d.rmeta: crates/core/tests/replicated_fs.rs Cargo.toml

crates/core/tests/replicated_fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
