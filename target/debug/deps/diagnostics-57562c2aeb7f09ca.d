/root/repo/target/debug/deps/diagnostics-57562c2aeb7f09ca.d: crates/overlog/tests/diagnostics.rs Cargo.toml

/root/repo/target/debug/deps/libdiagnostics-57562c2aeb7f09ca.rmeta: crates/overlog/tests/diagnostics.rs Cargo.toml

crates/overlog/tests/diagnostics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
