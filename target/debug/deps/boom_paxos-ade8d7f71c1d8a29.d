/root/repo/target/debug/deps/boom_paxos-ade8d7f71c1d8a29.d: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg

/root/repo/target/debug/deps/libboom_paxos-ade8d7f71c1d8a29.rlib: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg

/root/repo/target/debug/deps/libboom_paxos-ade8d7f71c1d8a29.rmeta: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg

crates/paxos/src/lib.rs:
crates/paxos/src/olg/paxos.olg:
