/root/repo/target/debug/deps/fs_ops-fe5e0d2a24c329b3.d: crates/fs/tests/fs_ops.rs Cargo.toml

/root/repo/target/debug/deps/libfs_ops-fe5e0d2a24c329b3.rmeta: crates/fs/tests/fs_ops.rs Cargo.toml

crates/fs/tests/fs_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
