/root/repo/target/debug/deps/diagnostics-e6b54902f3e0e26e.d: crates/overlog/tests/diagnostics.rs

/root/repo/target/debug/deps/diagnostics-e6b54902f3e0e26e: crates/overlog/tests/diagnostics.rs

crates/overlog/tests/diagnostics.rs:
