/root/repo/target/debug/deps/boom_simnet-b407f500992bb480.d: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs Cargo.toml

/root/repo/target/debug/deps/libboom_simnet-b407f500992bb480.rmeta: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/overlog_actor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
