/root/repo/target/debug/deps/monitoring-1d528accf7b290c6.d: tests/monitoring.rs Cargo.toml

/root/repo/target/debug/deps/libmonitoring-1d528accf7b290c6.rmeta: tests/monitoring.rs Cargo.toml

tests/monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
