/root/repo/target/debug/deps/consensus-81771682c9c120ae.d: crates/paxos/tests/consensus.rs Cargo.toml

/root/repo/target/debug/deps/libconsensus-81771682c9c120ae.rmeta: crates/paxos/tests/consensus.rs Cargo.toml

crates/paxos/tests/consensus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
