/root/repo/target/debug/deps/boom_simnet-d1dceefda2590e78.d: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs

/root/repo/target/debug/deps/libboom_simnet-d1dceefda2590e78.rlib: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs

/root/repo/target/debug/deps/libboom_simnet-d1dceefda2590e78.rmeta: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs

crates/simnet/src/lib.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/overlog_actor.rs:
