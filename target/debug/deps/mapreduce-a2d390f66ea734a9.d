/root/repo/target/debug/deps/mapreduce-a2d390f66ea734a9.d: crates/mr/tests/mapreduce.rs Cargo.toml

/root/repo/target/debug/deps/libmapreduce-a2d390f66ea734a9.rmeta: crates/mr/tests/mapreduce.rs Cargo.toml

crates/mr/tests/mapreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
