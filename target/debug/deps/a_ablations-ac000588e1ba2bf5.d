/root/repo/target/debug/deps/a_ablations-ac000588e1ba2bf5.d: crates/bench/src/bin/a_ablations.rs Cargo.toml

/root/repo/target/debug/deps/liba_ablations-ac000588e1ba2bf5.rmeta: crates/bench/src/bin/a_ablations.rs Cargo.toml

crates/bench/src/bin/a_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
