/root/repo/target/debug/deps/full_stack-3852ec7a12d52c80.d: tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-3852ec7a12d52c80.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
