/root/repo/target/debug/deps/e3_reduce_cdf-be9eae65007c7833.d: crates/bench/src/bin/e3_reduce_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libe3_reduce_cdf-be9eae65007c7833.rmeta: crates/bench/src/bin/e3_reduce_cdf.rs Cargo.toml

crates/bench/src/bin/e3_reduce_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
