/root/repo/target/debug/deps/fs_ops-26e4d5a384b5dce9.d: crates/fs/tests/fs_ops.rs

/root/repo/target/debug/deps/fs_ops-26e4d5a384b5dce9: crates/fs/tests/fs_ops.rs

crates/fs/tests/fs_ops.rs:
