/root/repo/target/debug/deps/rename-567cd2060862c5d4.d: crates/fs/tests/rename.rs Cargo.toml

/root/repo/target/debug/deps/librename-567cd2060862c5d4.rmeta: crates/fs/tests/rename.rs Cargo.toml

crates/fs/tests/rename.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
