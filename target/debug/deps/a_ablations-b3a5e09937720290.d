/root/repo/target/debug/deps/a_ablations-b3a5e09937720290.d: crates/bench/src/bin/a_ablations.rs

/root/repo/target/debug/deps/a_ablations-b3a5e09937720290: crates/bench/src/bin/a_ablations.rs

crates/bench/src/bin/a_ablations.rs:
