/root/repo/target/debug/deps/e5_failover-4a41168908a22148.d: crates/bench/src/bin/e5_failover.rs

/root/repo/target/debug/deps/e5_failover-4a41168908a22148: crates/bench/src/bin/e5_failover.rs

crates/bench/src/bin/e5_failover.rs:
