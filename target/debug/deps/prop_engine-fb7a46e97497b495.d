/root/repo/target/debug/deps/prop_engine-fb7a46e97497b495.d: crates/overlog/tests/prop_engine.rs Cargo.toml

/root/repo/target/debug/deps/libprop_engine-fb7a46e97497b495.rmeta: crates/overlog/tests/prop_engine.rs Cargo.toml

crates/overlog/tests/prop_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
