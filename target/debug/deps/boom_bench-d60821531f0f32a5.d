/root/repo/target/debug/deps/boom_bench-d60821531f0f32a5.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs

/root/repo/target/debug/deps/libboom_bench-d60821531f0f32a5.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs

/root/repo/target/debug/deps/libboom_bench-d60821531f0f32a5.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/locs.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
