/root/repo/target/debug/deps/olgcheck-622d2686ff496a4b.d: tests/olgcheck.rs Cargo.toml

/root/repo/target/debug/deps/libolgcheck-622d2686ff496a4b.rmeta: tests/olgcheck.rs Cargo.toml

tests/olgcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
