/root/repo/target/debug/deps/rename-e61e31a498be95a6.d: crates/fs/tests/rename.rs

/root/repo/target/debug/deps/rename-e61e31a498be95a6: crates/fs/tests/rename.rs

crates/fs/tests/rename.rs:
