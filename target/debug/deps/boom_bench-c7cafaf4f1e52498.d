/root/repo/target/debug/deps/boom_bench-c7cafaf4f1e52498.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs Cargo.toml

/root/repo/target/debug/deps/libboom_bench-c7cafaf4f1e52498.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/locs.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
