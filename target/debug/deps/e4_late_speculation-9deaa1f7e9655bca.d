/root/repo/target/debug/deps/e4_late_speculation-9deaa1f7e9655bca.d: crates/bench/src/bin/e4_late_speculation.rs

/root/repo/target/debug/deps/e4_late_speculation-9deaa1f7e9655bca: crates/bench/src/bin/e4_late_speculation.rs

crates/bench/src/bin/e4_late_speculation.rs:
