/root/repo/target/debug/deps/proptest-c6e353a3970550b9.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c6e353a3970550b9.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs Cargo.toml

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
