/root/repo/target/debug/deps/locality-0f3e9b0cc377da45.d: crates/mr/tests/locality.rs Cargo.toml

/root/repo/target/debug/deps/liblocality-0f3e9b0cc377da45.rmeta: crates/mr/tests/locality.rs Cargo.toml

crates/mr/tests/locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
