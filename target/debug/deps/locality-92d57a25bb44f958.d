/root/repo/target/debug/deps/locality-92d57a25bb44f958.d: crates/mr/tests/locality.rs

/root/repo/target/debug/deps/locality-92d57a25bb44f958: crates/mr/tests/locality.rs

crates/mr/tests/locality.rs:
