/root/repo/target/debug/deps/consensus-e9c3cdfbca000b44.d: crates/paxos/tests/consensus.rs

/root/repo/target/debug/deps/consensus-e9c3cdfbca000b44: crates/paxos/tests/consensus.rs

crates/paxos/tests/consensus.rs:
