/root/repo/target/debug/deps/e1_code_size-7d961749420cb7a5.d: crates/bench/src/bin/e1_code_size.rs Cargo.toml

/root/repo/target/debug/deps/libe1_code_size-7d961749420cb7a5.rmeta: crates/bench/src/bin/e1_code_size.rs Cargo.toml

crates/bench/src/bin/e1_code_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
