/root/repo/target/debug/deps/e5_failover-03a7d104ebd19b7d.d: crates/bench/src/bin/e5_failover.rs Cargo.toml

/root/repo/target/debug/deps/libe5_failover-03a7d104ebd19b7d.rmeta: crates/bench/src/bin/e5_failover.rs Cargo.toml

crates/bench/src/bin/e5_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
