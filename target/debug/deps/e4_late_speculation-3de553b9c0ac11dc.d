/root/repo/target/debug/deps/e4_late_speculation-3de553b9c0ac11dc.d: crates/bench/src/bin/e4_late_speculation.rs Cargo.toml

/root/repo/target/debug/deps/libe4_late_speculation-3de553b9c0ac11dc.rmeta: crates/bench/src/bin/e4_late_speculation.rs Cargo.toml

crates/bench/src/bin/e4_late_speculation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
