/root/repo/target/debug/deps/edge_cases-cb39073c40e17efd.d: crates/overlog/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-cb39073c40e17efd: crates/overlog/tests/edge_cases.rs

crates/overlog/tests/edge_cases.rs:
