/root/repo/target/debug/deps/e4_late_speculation-5cc93accd455c173.d: crates/bench/src/bin/e4_late_speculation.rs Cargo.toml

/root/repo/target/debug/deps/libe4_late_speculation-5cc93accd455c173.rmeta: crates/bench/src/bin/e4_late_speculation.rs Cargo.toml

crates/bench/src/bin/e4_late_speculation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
