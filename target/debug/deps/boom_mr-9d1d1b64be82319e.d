/root/repo/target/debug/deps/boom_mr-9d1d1b64be82319e.d: crates/mr/src/lib.rs crates/mr/src/baseline.rs crates/mr/src/cluster.rs crates/mr/src/driver.rs crates/mr/src/jobtracker.rs crates/mr/src/proto.rs crates/mr/src/tasktracker.rs crates/mr/src/workload.rs crates/mr/src/olg/jobtracker.olg crates/mr/src/olg/fifo.olg crates/mr/src/olg/locality.olg crates/mr/src/olg/late.olg crates/mr/src/olg/naive.olg Cargo.toml

/root/repo/target/debug/deps/libboom_mr-9d1d1b64be82319e.rmeta: crates/mr/src/lib.rs crates/mr/src/baseline.rs crates/mr/src/cluster.rs crates/mr/src/driver.rs crates/mr/src/jobtracker.rs crates/mr/src/proto.rs crates/mr/src/tasktracker.rs crates/mr/src/workload.rs crates/mr/src/olg/jobtracker.olg crates/mr/src/olg/fifo.olg crates/mr/src/olg/locality.olg crates/mr/src/olg/late.olg crates/mr/src/olg/naive.olg Cargo.toml

crates/mr/src/lib.rs:
crates/mr/src/baseline.rs:
crates/mr/src/cluster.rs:
crates/mr/src/driver.rs:
crates/mr/src/jobtracker.rs:
crates/mr/src/proto.rs:
crates/mr/src/tasktracker.rs:
crates/mr/src/workload.rs:
crates/mr/src/olg/jobtracker.olg:
crates/mr/src/olg/fifo.olg:
crates/mr/src/olg/locality.olg:
crates/mr/src/olg/late.olg:
crates/mr/src/olg/naive.olg:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
