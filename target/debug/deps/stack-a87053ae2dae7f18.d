/root/repo/target/debug/deps/stack-a87053ae2dae7f18.d: crates/bench/benches/stack.rs Cargo.toml

/root/repo/target/debug/deps/libstack-a87053ae2dae7f18.rmeta: crates/bench/benches/stack.rs Cargo.toml

crates/bench/benches/stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
