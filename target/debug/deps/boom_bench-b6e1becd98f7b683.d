/root/repo/target/debug/deps/boom_bench-b6e1becd98f7b683.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs

/root/repo/target/debug/deps/boom_bench-b6e1becd98f7b683: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/locs.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
