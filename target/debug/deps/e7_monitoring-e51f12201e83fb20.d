/root/repo/target/debug/deps/e7_monitoring-e51f12201e83fb20.d: crates/bench/src/bin/e7_monitoring.rs Cargo.toml

/root/repo/target/debug/deps/libe7_monitoring-e51f12201e83fb20.rmeta: crates/bench/src/bin/e7_monitoring.rs Cargo.toml

crates/bench/src/bin/e7_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
