/root/repo/target/debug/deps/boom_core-dbd2a09ead9b170f.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg

/root/repo/target/debug/deps/libboom_core-dbd2a09ead9b170f.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg

/root/repo/target/debug/deps/libboom_core-dbd2a09ead9b170f.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/fullstack.rs:
crates/core/src/replicated.rs:
crates/core/src/olg/replicated.olg:
