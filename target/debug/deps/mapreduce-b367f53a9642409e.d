/root/repo/target/debug/deps/mapreduce-b367f53a9642409e.d: crates/mr/tests/mapreduce.rs

/root/repo/target/debug/deps/mapreduce-b367f53a9642409e: crates/mr/tests/mapreduce.rs

crates/mr/tests/mapreduce.rs:
