/root/repo/target/debug/deps/boom_fs-d56683caf35f493c.d: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg

/root/repo/target/debug/deps/libboom_fs-d56683caf35f493c.rlib: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg

/root/repo/target/debug/deps/libboom_fs-d56683caf35f493c.rmeta: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg

crates/fs/src/lib.rs:
crates/fs/src/baseline.rs:
crates/fs/src/client.rs:
crates/fs/src/cluster.rs:
crates/fs/src/datanode.rs:
crates/fs/src/namenode.rs:
crates/fs/src/proto.rs:
crates/fs/src/olg/namenode.olg:
