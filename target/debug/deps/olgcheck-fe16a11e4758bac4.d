/root/repo/target/debug/deps/olgcheck-fe16a11e4758bac4.d: src/bin/olgcheck.rs Cargo.toml

/root/repo/target/debug/deps/libolgcheck-fe16a11e4758bac4.rmeta: src/bin/olgcheck.rs Cargo.toml

src/bin/olgcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
