/root/repo/target/debug/deps/e3_reduce_cdf-7755349bdeb4fe70.d: crates/bench/src/bin/e3_reduce_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libe3_reduce_cdf-7755349bdeb4fe70.rmeta: crates/bench/src/bin/e3_reduce_cdf.rs Cargo.toml

crates/bench/src/bin/e3_reduce_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
