/root/repo/target/debug/deps/e1_code_size-d3f42437d6c3bfc3.d: crates/bench/src/bin/e1_code_size.rs

/root/repo/target/debug/deps/e1_code_size-d3f42437d6c3bfc3: crates/bench/src/bin/e1_code_size.rs

crates/bench/src/bin/e1_code_size.rs:
