/root/repo/target/debug/deps/olgcheck-1a628591b4e4226b.d: tests/olgcheck.rs

/root/repo/target/debug/deps/olgcheck-1a628591b4e4226b: tests/olgcheck.rs

tests/olgcheck.rs:
