/root/repo/target/debug/deps/engine-9906d65338267b59.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-9906d65338267b59.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
