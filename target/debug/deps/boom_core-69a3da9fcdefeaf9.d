/root/repo/target/debug/deps/boom_core-69a3da9fcdefeaf9.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg

/root/repo/target/debug/deps/boom_core-69a3da9fcdefeaf9: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/fullstack.rs:
crates/core/src/replicated.rs:
crates/core/src/olg/replicated.olg:
