/root/repo/target/debug/deps/e7_monitoring-9b8065a5e3619c00.d: crates/bench/src/bin/e7_monitoring.rs

/root/repo/target/debug/deps/e7_monitoring-9b8065a5e3619c00: crates/bench/src/bin/e7_monitoring.rs

crates/bench/src/bin/e7_monitoring.rs:
