/root/repo/target/debug/deps/e2_map_cdf-2623effce51b9e92.d: crates/bench/src/bin/e2_map_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libe2_map_cdf-2623effce51b9e92.rmeta: crates/bench/src/bin/e2_map_cdf.rs Cargo.toml

crates/bench/src/bin/e2_map_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
