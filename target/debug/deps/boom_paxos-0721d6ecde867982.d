/root/repo/target/debug/deps/boom_paxos-0721d6ecde867982.d: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg Cargo.toml

/root/repo/target/debug/deps/libboom_paxos-0721d6ecde867982.rmeta: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg Cargo.toml

crates/paxos/src/lib.rs:
crates/paxos/src/olg/paxos.olg:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
