/root/repo/target/debug/deps/boom_bench-c93caf2331e85b74.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs Cargo.toml

/root/repo/target/debug/deps/libboom_bench-c93caf2331e85b74.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/locs.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
