/root/repo/target/debug/deps/proptest-5d2d5fe81f379193.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-5d2d5fe81f379193.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-5d2d5fe81f379193.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
