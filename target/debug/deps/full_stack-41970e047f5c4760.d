/root/repo/target/debug/deps/full_stack-41970e047f5c4760.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-41970e047f5c4760: tests/full_stack.rs

tests/full_stack.rs:
