/root/repo/target/debug/deps/prop_sim-0f6fa21dd364af20.d: crates/simnet/tests/prop_sim.rs

/root/repo/target/debug/deps/prop_sim-0f6fa21dd364af20: crates/simnet/tests/prop_sim.rs

crates/simnet/tests/prop_sim.rs:
