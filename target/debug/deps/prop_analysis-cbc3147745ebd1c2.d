/root/repo/target/debug/deps/prop_analysis-cbc3147745ebd1c2.d: crates/overlog/tests/prop_analysis.rs

/root/repo/target/debug/deps/prop_analysis-cbc3147745ebd1c2: crates/overlog/tests/prop_analysis.rs

crates/overlog/tests/prop_analysis.rs:
