/root/repo/target/debug/deps/prop_stack-b69bcccce252ffbb.d: tests/prop_stack.rs

/root/repo/target/debug/deps/prop_stack-b69bcccce252ffbb: tests/prop_stack.rs

tests/prop_stack.rs:
