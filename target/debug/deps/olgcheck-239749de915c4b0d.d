/root/repo/target/debug/deps/olgcheck-239749de915c4b0d.d: src/bin/olgcheck.rs Cargo.toml

/root/repo/target/debug/deps/libolgcheck-239749de915c4b0d.rmeta: src/bin/olgcheck.rs Cargo.toml

src/bin/olgcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
