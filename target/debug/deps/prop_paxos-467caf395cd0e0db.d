/root/repo/target/debug/deps/prop_paxos-467caf395cd0e0db.d: crates/paxos/tests/prop_paxos.rs

/root/repo/target/debug/deps/prop_paxos-467caf395cd0e0db: crates/paxos/tests/prop_paxos.rs

crates/paxos/tests/prop_paxos.rs:
