/root/repo/target/debug/deps/boom-d52d3cbda4f81e6f.d: src/lib.rs src/shipped.rs Cargo.toml

/root/repo/target/debug/deps/libboom-d52d3cbda4f81e6f.rmeta: src/lib.rs src/shipped.rs Cargo.toml

src/lib.rs:
src/shipped.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
