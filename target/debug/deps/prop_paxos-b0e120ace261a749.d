/root/repo/target/debug/deps/prop_paxos-b0e120ace261a749.d: crates/paxos/tests/prop_paxos.rs Cargo.toml

/root/repo/target/debug/deps/libprop_paxos-b0e120ace261a749.rmeta: crates/paxos/tests/prop_paxos.rs Cargo.toml

crates/paxos/tests/prop_paxos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
