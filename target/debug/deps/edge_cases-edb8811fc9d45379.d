/root/repo/target/debug/deps/edge_cases-edb8811fc9d45379.d: crates/overlog/tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-edb8811fc9d45379.rmeta: crates/overlog/tests/edge_cases.rs Cargo.toml

crates/overlog/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
