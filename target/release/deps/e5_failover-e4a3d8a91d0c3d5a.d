/root/repo/target/release/deps/e5_failover-e4a3d8a91d0c3d5a.d: crates/bench/src/bin/e5_failover.rs

/root/repo/target/release/deps/e5_failover-e4a3d8a91d0c3d5a: crates/bench/src/bin/e5_failover.rs

crates/bench/src/bin/e5_failover.rs:
