/root/repo/target/release/deps/boom_bench-2af0d7b4a7b6f4a8.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs

/root/repo/target/release/deps/libboom_bench-2af0d7b4a7b6f4a8.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs

/root/repo/target/release/deps/libboom_bench-2af0d7b4a7b6f4a8.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/locs.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/locs.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
