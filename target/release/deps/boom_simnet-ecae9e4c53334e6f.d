/root/repo/target/release/deps/boom_simnet-ecae9e4c53334e6f.d: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs

/root/repo/target/release/deps/libboom_simnet-ecae9e4c53334e6f.rlib: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs

/root/repo/target/release/deps/libboom_simnet-ecae9e4c53334e6f.rmeta: crates/simnet/src/lib.rs crates/simnet/src/metrics.rs crates/simnet/src/overlog_actor.rs

crates/simnet/src/lib.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/overlog_actor.rs:
