/root/repo/target/release/deps/olgcheck-846bbd905c6900d4.d: src/bin/olgcheck.rs

/root/repo/target/release/deps/olgcheck-846bbd905c6900d4: src/bin/olgcheck.rs

src/bin/olgcheck.rs:
