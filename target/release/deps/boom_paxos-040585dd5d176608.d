/root/repo/target/release/deps/boom_paxos-040585dd5d176608.d: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg

/root/repo/target/release/deps/libboom_paxos-040585dd5d176608.rlib: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg

/root/repo/target/release/deps/libboom_paxos-040585dd5d176608.rmeta: crates/paxos/src/lib.rs crates/paxos/src/olg/paxos.olg

crates/paxos/src/lib.rs:
crates/paxos/src/olg/paxos.olg:
