/root/repo/target/release/deps/boom_core-7a207c66c3f0e3f0.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg

/root/repo/target/release/deps/libboom_core-7a207c66c3f0e3f0.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg

/root/repo/target/release/deps/libboom_core-7a207c66c3f0e3f0.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/fullstack.rs crates/core/src/replicated.rs crates/core/src/olg/replicated.olg

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/fullstack.rs:
crates/core/src/replicated.rs:
crates/core/src/olg/replicated.olg:
