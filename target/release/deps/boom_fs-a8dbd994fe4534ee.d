/root/repo/target/release/deps/boom_fs-a8dbd994fe4534ee.d: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg

/root/repo/target/release/deps/libboom_fs-a8dbd994fe4534ee.rlib: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg

/root/repo/target/release/deps/libboom_fs-a8dbd994fe4534ee.rmeta: crates/fs/src/lib.rs crates/fs/src/baseline.rs crates/fs/src/client.rs crates/fs/src/cluster.rs crates/fs/src/datanode.rs crates/fs/src/namenode.rs crates/fs/src/proto.rs crates/fs/src/olg/namenode.olg

crates/fs/src/lib.rs:
crates/fs/src/baseline.rs:
crates/fs/src/client.rs:
crates/fs/src/cluster.rs:
crates/fs/src/datanode.rs:
crates/fs/src/namenode.rs:
crates/fs/src/proto.rs:
crates/fs/src/olg/namenode.olg:
