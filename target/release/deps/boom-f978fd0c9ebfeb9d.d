/root/repo/target/release/deps/boom-f978fd0c9ebfeb9d.d: src/lib.rs src/shipped.rs

/root/repo/target/release/deps/libboom-f978fd0c9ebfeb9d.rlib: src/lib.rs src/shipped.rs

/root/repo/target/release/deps/libboom-f978fd0c9ebfeb9d.rmeta: src/lib.rs src/shipped.rs

src/lib.rs:
src/shipped.rs:
