/root/repo/target/release/deps/e1_code_size-1daaf76013016369.d: crates/bench/src/bin/e1_code_size.rs

/root/repo/target/release/deps/e1_code_size-1daaf76013016369: crates/bench/src/bin/e1_code_size.rs

crates/bench/src/bin/e1_code_size.rs:
