//! The serving tier in action: stand up live watches over a running
//! BOOM-FS NameNode and observe the namespace change in real time.
//!
//! A `ServeHost` hook turns the NameNode into a server for standing
//! Overlog queries. We subscribe an operator console to two canned
//! queries (the full namespace and replication health) plus one ad-hoc
//! query written on the spot, churn the filesystem through the ordinary
//! client, and watch incremental deltas keep the console's mirrors
//! exact. Along the way: an illegal query bounces with an analyzer
//! diagnostic instead of installing, and a one-shot `pull` grabs a
//! bounded-staleness snapshot without a standing subscription.
//!
//! ```text
//! cargo run --example watch_namenode
//! ```

use boom::fs::cluster::{nn_name, FsClusterBuilder};
use boom::overlog::Value;
use boom::serve::{fs_queries, ServeConfig, ServeHost, SubscriberActor, SubscriptionSpec};
use boom::simnet::OverlogActor;

const NAMESPACE: i64 = 1;
const HEALTH: i64 = 2;
const ADHOC: i64 = 3;
const BOGUS: i64 = 4;

fn print_mirror(cluster: &mut boom::fs::cluster::FsCluster, tag: i64, label: &str) {
    let rows: Vec<String> = cluster
        .sim
        .with_actor::<SubscriberActor, _>("console", |w| {
            w.mirrors
                .get(&tag)
                .map(|m| {
                    m.iter()
                        .map(|r| {
                            r.iter()
                                .map(Value::to_string)
                                .collect::<Vec<_>>()
                                .join(", ")
                        })
                        .collect()
                })
                .unwrap_or_default()
        });
    println!("  {label} ({} rows)", rows.len());
    for r in &rows {
        println!("    [{r}]");
    }
}

fn main() {
    let mut cluster = FsClusterBuilder::default().build();
    let nn = nn_name(0);

    // Attach the serving tier to the live NameNode — a hook on its actor,
    // no restart, no second process.
    cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        a.add_hook(Box::new(ServeHost::new(ServeConfig::default())));
    });

    // One console node multiplexing four subscriptions: two canned
    // queries, one ad-hoc join written here, and one deliberately broken
    // query to show the analyzer guarding the door.
    let adhoc = SubscriptionSpec::new(
        "big-dirs",
        "0,1",
        "String, Int",
        "Path, FId",
        "fqpath(Path, FId), file(FId, _, _, true)",
    );
    let bogus = SubscriptionSpec::new("typo", "0", "Int", "X", "fqpth(X, X)");
    cluster.sim.add_node(
        "console",
        Box::new(SubscriberActor::new(
            &nn,
            vec![
                (NAMESPACE, fs_queries::file_status()),
                (HEALTH, fs_queries::replication_health()),
                (ADHOC, adhoc),
                (BOGUS, bogus),
            ],
            500,
        )),
    );
    cluster.sim.run_for(1_000);

    let errors = cluster
        .sim
        .with_actor::<SubscriberActor, _>("console", |w| w.errors.clone());
    println!("== the analyzer rejects the broken query before it installs ==");
    for (tag, msg) in &errors {
        println!("  tag {tag}: {}", msg.lines().next().unwrap_or(msg));
    }
    assert!(!errors.is_empty(), "the typo query must bounce");

    println!("\n== churn the namespace through the ordinary FS client ==");
    let client = cluster.client.clone();
    client.mkdir(&mut cluster.sim, "/jobs").unwrap();
    for i in 0..3 {
        client
            .create(&mut cluster.sim, &format!("/jobs/task{i}"))
            .unwrap();
    }
    client
        .write_file(&mut cluster.sim, "/jobs/log", "speculative re-execution")
        .unwrap();
    cluster.sim.run_for(2_000);
    print_mirror(&mut cluster, NAMESPACE, "namespace mirror");
    print_mirror(
        &mut cluster,
        ADHOC,
        "ad-hoc `big-dirs` mirror (directories only)",
    );

    println!("\n== deletes retract; the mirror follows exactly ==");
    client.rm(&mut cluster.sim, "/jobs/task1").unwrap();
    client
        .rename(&mut cluster.sim, "/jobs/task2", "/jobs/done2")
        .unwrap();
    cluster.sim.run_for(2_000);
    print_mirror(&mut cluster, NAMESPACE, "namespace mirror");

    // The mirror is not approximately right — it is the server's view.
    let mirror: Vec<Vec<Value>> = cluster
        .sim
        .with_actor::<SubscriberActor, _>("console", |w| {
            w.mirrors
                .get(&NAMESPACE)
                .map(|m| m.iter().cloned().collect())
                .unwrap_or_default()
        });
    let table = cluster
        .sim
        .with_actor::<OverlogActor, _>(&nn, |a| {
            a.hook_mut::<ServeHost>()
                .unwrap()
                .query_table(&fs_queries::file_status())
        })
        .expect("query installed");
    let server: Vec<Vec<Value>> = cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        a.runtime_ref()
            .table(&table)
            .map(|t| t.sorted_rows().into_iter().map(|r| r.to_vec()).collect())
            .unwrap_or_default()
    });
    assert_eq!(mirror, server, "mirror must equal the server view");
    println!("  mirror == server-side `{table}` view, row for row");

    println!("\n== one-shot pull: a snapshot with bounded staleness ==");
    let t_req = cluster.sim.now();
    cluster.sim.inject(
        &nn,
        boom::serve::PULL_TABLE,
        boom::overlog::value::row(vec![
            Value::str("console"),
            Value::Int(7),
            Value::str("fchunk"),
        ]),
    );
    cluster.sim.run_for(1_000);
    let pulls = cluster
        .sim
        .with_actor::<SubscriberActor, _>("console", |w| w.pulls.clone());
    let (as_of, rows) = pulls.get(&7).expect("pull completed");
    println!(
        "  pull(fchunk) -> {} rows, as-of t={as_of}ms (requested at t={t_req}ms)",
        rows.len()
    );
    assert!(*as_of >= t_req);

    println!("\nfour subscriptions, one hook, zero perturbation — the loaded");
    println!("NameNode ran the byte-identical schedule it runs unwatched.");
}
