//! The LATE reproduction (paper §MapReduce scheduling): run the same
//! wordcount on a cluster with injected stragglers under all three
//! speculation policies and compare job completion times — the experiment
//! behind the paper's speculative-execution CDFs.
//!
//! ```text
//! cargo run --example late_stragglers
//! ```

use boom::mr::{CostModel, MrClusterBuilder, MrJob, SpecPolicy, StragglerConfig};
use boom::simnet::SimConfig;

fn run(policy: SpecPolicy) -> (u64, usize) {
    let mut cluster = MrClusterBuilder {
        policy,
        workers: 6,
        slots: 2,
        chunk_size: 2048,
        stragglers: StragglerConfig {
            fraction: 0.25,
            slow_factor: 0.08,
        },
        sim: SimConfig {
            seed: 99,
            ..Default::default()
        },
        cost: CostModel {
            map_ms_per_kib: 400.0,
            reduce_ms_per_krec: 400.0,
            min_ms: 200,
        },
        ..Default::default()
    }
    .build();
    let nstragglers = cluster.straggler_nodes.len();
    let inputs = cluster.load_corpus(5, 3, 3_000).unwrap();
    let fs = cluster.fs.clone();
    let mut driver = cluster.driver.clone();
    let job = MrJob {
        job_type: "wordcount".to_string(),
        inputs,
        nreduces: 3,
        outdir: "/out".to_string(),
    };
    let deadline = cluster.sim.now() + 10_000_000;
    let (_, took) = driver.run(&mut cluster.sim, &fs, &job, deadline).unwrap();
    (took, nstragglers)
}

fn main() {
    println!("wordcount, 6 workers, 25% stragglers running at 8% speed\n");
    let mut base = None;
    for (policy, name) in [
        (SpecPolicy::None, "no speculation"),
        (SpecPolicy::Naive, "naive (pre-LATE Hadoop)"),
        (SpecPolicy::Late, "LATE"),
    ] {
        let (took, n) = run(policy);
        let speedup = base
            .map(|b: u64| format!("{:.2}x faster than no speculation", b as f64 / took as f64))
            .unwrap_or_else(|| format!("baseline ({n} straggler nodes)"));
        if base.is_none() {
            base = Some(took);
        }
        println!("  {name:<26} {:>8.1}s   {speedup}", took as f64 / 1000.0);
    }
    println!(
        "\nThe ordering (LATE <= naive < none) reproduces the paper's figures: the\n\
         Overlog LATE port — a dozen rules — rescues the job from stragglers."
    );
}
