//! A tour of BOOM-FS: spin up a simulated cluster whose NameNode is pure
//! Overlog, exercise the filesystem API, peek at the metadata relations,
//! then kill a DataNode and watch the declarative re-replication rules
//! repair the chunk.
//!
//! ```text
//! cargo run --example boomfs_tour
//! ```

use boom::fs::cluster::{ControlPlane, FsClusterBuilder};
use boom::simnet::OverlogActor;

fn main() {
    let mut cluster = FsClusterBuilder {
        control: ControlPlane::Declarative,
        datanodes: 4,
        replication: 2,
        chunk_size: 512,
        ..Default::default()
    }
    .build();
    let client = cluster.client.clone();
    let sim = &mut cluster.sim;

    println!("== filesystem operations ==");
    client.mkdir(sim, "/logs").unwrap();
    client.mkdir(sim, "/logs/2026").unwrap();
    client
        .write_file(sim, "/logs/2026/jul", &"entry ".repeat(300))
        .unwrap();
    client.create(sim, "/logs/README").unwrap();
    println!("ls /        -> {:?}", client.ls(sim, "/").unwrap());
    println!("ls /logs    -> {:?}", client.ls(sim, "/logs").unwrap());
    let chunks = client.chunks(sim, "/logs/2026/jul").unwrap();
    println!("chunks of /logs/2026/jul -> {chunks:?}");

    println!("\n== the NameNode's Overlog relations (paper Table 1) ==");
    sim.with_actor::<OverlogActor, _>("nn0", |nn| {
        let rt = nn.runtime_ref();
        for table in ["file", "fqpath", "fchunk", "datanode", "hb_chunk"] {
            println!("-- {table} ({} rows)", rt.count(table));
            for r in rt.rows(table).iter().take(6) {
                let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
                println!("   ({})", cells.join(", "));
            }
        }
    });

    println!("\n== failure handling ==");
    let chunk = chunks[0];
    let locs = client.locations(sim, "/logs/2026/jul", chunk).unwrap();
    println!("chunk {chunk} lives on {locs:?}");
    let victim = locs[0].clone();
    println!("crashing {victim} ...");
    sim.schedule_crash(&victim, sim.now() + 10);
    sim.run_for(40_000); // heartbeat timeout + repcheck + copy

    let locs_after = client.locations(sim, "/logs/2026/jul", chunk).unwrap();
    println!("chunk {chunk} now lives on {locs_after:?}");
    assert!(!locs_after.contains(&victim));
    assert!(
        locs_after.len() >= 2,
        "re-replication restored the replica count"
    );

    let content = client.read_file(sim, "/logs/2026/jul").unwrap();
    println!(
        "file still reads back fine after the failure ({} bytes)",
        content.len()
    );
}
