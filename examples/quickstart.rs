//! Quickstart: the Overlog engine in five minutes.
//!
//! Declares a tiny network-reachability program — the "hello world" of
//! declarative networking that motivated BOOM — loads it into a runtime,
//! feeds it link facts, and queries the fixpoint. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use boom::overlog::{value::row, OverlogRuntime, Value};

fn main() {
    let mut rt = OverlogRuntime::new("demo-node");
    rt.load(
        r#"
        program reachability;

        define(link, keys(0,1), {String, String});
        define(path, keys(0,1), {String, String});
        define(reach_count, keys(0), {String, Int});

        // Transitive closure, exactly as the paper writes it.
        path(X, Y) :- link(X, Y);
        path(X, Z) :- link(X, Y), path(Y, Z);

        // An aggregate view: how many nodes each node can reach.
        reach_count(X, count<Y>) :- path(X, Y);

        // Facts can live in the program text too.
        link("eu-west", "us-east");
        "#,
    )
    .expect("program compiles");

    // Feed more facts from the host side.
    for (a, b) in [
        ("us-east", "us-west"),
        ("us-west", "ap-south"),
        ("eu-west", "eu-north"),
    ] {
        rt.insert("link", row(vec![Value::str(a), Value::str(b)]))
            .expect("well-typed link fact");
    }

    // One timestep runs the rules to fixpoint.
    rt.tick(0).expect("evaluation succeeds");

    println!("paths derived ({}):", rt.count("path"));
    for r in rt.rows("path") {
        println!("  {} -> {}", r[0], r[1]);
    }
    println!("\nreachability counts:");
    for r in rt.rows("reach_count") {
        println!("  {} reaches {} node(s)", r[0], r[1]);
    }

    // Deletion: retract a link and watch the views heal.
    rt.delete(
        "link",
        row(vec![Value::str("us-east"), Value::str("us-west")]),
    )
    .expect("link row is well-typed");
    rt.tick(1).expect("evaluation succeeds");
    println!(
        "\nafter deleting us-east -> us-west: {} paths",
        rt.count("path")
    );
    assert!(rt.count("path") < 6);
}
