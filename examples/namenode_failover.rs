//! The availability revision in action: a Paxos-replicated NameNode loses
//! its primary mid-workload and keeps serving — the namespace survives,
//! new mutations keep committing, and the client only sees a brief stall.
//!
//! ```text
//! cargo run --example namenode_failover
//! ```

use boom::core::ReplicatedFsBuilder;

fn main() {
    let mut cluster = ReplicatedFsBuilder {
        replicas: 3,
        datanodes: 3,
        lease_ms: 2_000,
        rpc_timeout: 1_000,
        ..Default::default()
    }
    .build();
    let client = cluster.client.clone();

    println!("== populate the namespace through consensus ==");
    client.mkdir(&mut cluster.sim, "/jobs").unwrap();
    for i in 0..5 {
        client
            .create(&mut cluster.sim, &format!("/jobs/task{i}"))
            .unwrap();
    }
    println!(
        "created /jobs with {} entries at t={}ms",
        client.ls(&mut cluster.sim, "/jobs").unwrap().len(),
        cluster.sim.now()
    );

    let primary = cluster.namenodes[0].clone();
    let crash_at = cluster.sim.now() + 100;
    println!("\n== killing primary {primary} at t={crash_at}ms ==");
    cluster.sim.schedule_crash(&primary, crash_at);
    cluster.sim.run_for(200);

    // Keep issuing operations; time how long until service resumes.
    let stall_start = cluster.sim.now();
    let mut resumed_at = None;
    for _ in 0..200 {
        match client.exists(&mut cluster.sim, "/jobs/task0") {
            Ok(true) => {
                resumed_at = Some(cluster.sim.now());
                break;
            }
            Ok(false) => unreachable!("metadata must survive the failover"),
            Err(_) => cluster.sim.run_for(250),
        }
    }
    let resumed = resumed_at.expect("a new leader must take over");
    println!(
        "service resumed after {}ms of unavailability (lease expiry + election)",
        resumed - stall_start
    );

    println!("\n== mutations keep working on the new leader ==");
    client
        .create(&mut cluster.sim, "/jobs/after-failover")
        .unwrap();
    let listing = client.ls(&mut cluster.sim, "/jobs").unwrap();
    println!("ls /jobs -> {listing:?}");
    assert!(listing.contains(&"after-failover".to_string()));
    assert_eq!(listing.len(), 6);
    println!("\nnamespace intact; the single-NameNode deployment would have lost everything.");
}
