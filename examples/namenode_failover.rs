//! The availability revision in action: a Paxos-replicated NameNode loses
//! its primary mid-workload and keeps serving — the namespace survives,
//! new mutations keep committing, and the client only sees a brief stall.
//! Then the durability layer takes over: the killed primary restarts,
//! replays its own disk, pulls what it missed from its peers, and serves
//! reads again with the complete namespace.
//!
//! ```text
//! cargo run --example namenode_failover
//! ```

use boom::core::ReplicatedFsBuilder;
use boom::simnet::OverlogActor;

fn main() {
    let mut cluster = ReplicatedFsBuilder {
        replicas: 3,
        datanodes: 3,
        lease_ms: 2_000,
        rpc_timeout: 1_000,
        durable: true,
        ..Default::default()
    }
    .build();
    let client = cluster.client.clone();

    println!("== populate the namespace through consensus ==");
    client.mkdir(&mut cluster.sim, "/jobs").unwrap();
    for i in 0..5 {
        client
            .create(&mut cluster.sim, &format!("/jobs/task{i}"))
            .unwrap();
    }
    println!(
        "created /jobs with {} entries at t={}ms",
        client.ls(&mut cluster.sim, "/jobs").unwrap().len(),
        cluster.sim.now()
    );

    let primary = cluster.namenodes[0].clone();
    let crash_at = cluster.sim.now() + 100;
    println!("\n== killing primary {primary} at t={crash_at}ms ==");
    cluster.sim.schedule_crash(&primary, crash_at);
    cluster.sim.run_for(200);

    // Keep issuing operations; time how long until service resumes.
    let stall_start = cluster.sim.now();
    let mut resumed_at = None;
    for _ in 0..200 {
        match client.exists(&mut cluster.sim, "/jobs/task0") {
            Ok(true) => {
                resumed_at = Some(cluster.sim.now());
                break;
            }
            Ok(false) => unreachable!("metadata must survive the failover"),
            Err(_) => cluster.sim.run_for(250),
        }
    }
    let resumed = resumed_at.expect("a new leader must take over");
    println!(
        "service resumed after {}ms of unavailability (lease expiry + election)",
        resumed - stall_start
    );

    println!("\n== mutations keep working on the new leader ==");
    client
        .create(&mut cluster.sim, "/jobs/after-failover")
        .unwrap();
    let listing = client.ls(&mut cluster.sim, "/jobs").unwrap();
    println!("ls /jobs -> {listing:?}");
    assert!(listing.contains(&"after-failover".to_string()));
    assert_eq!(listing.len(), 6);
    println!("\nnamespace intact; the single-NameNode deployment would have lost everything.");

    // -- Act II: the dead primary comes back and catches up. --------------
    let restart_at = cluster.sim.now() + 100;
    println!("\n== restarting {primary} at t={restart_at}ms ==");
    cluster.sim.schedule_restart(&primary, restart_at);
    cluster.sim.run_for(150);
    let (recovered, missing_at_rejoin) = cluster.sim.with_actor::<OverlogActor, _>(&primary, |a| {
        let rec = a.recoveries.last().expect("restart goes through recovery");
        (
            format!(
                "replayed {} WAL entries over a {}-row snapshot",
                rec.replayed_entries, rec.snapshot_rows
            ),
            a.runtime_ref().count("decided"),
        )
    });
    println!(
        "t={}ms  {primary} recovered its own disk: {recovered}",
        cluster.sim.now()
    );

    // Retransmission and anti-entropy close whatever gap the node missed
    // while it was down.
    let peer = cluster.namenodes[1].clone();
    let target = cluster
        .sim
        .with_actor::<OverlogActor, _>(&peer, |a| a.runtime_ref().count("decided"));
    println!(
        "t={}ms  {primary} holds {missing_at_rejoin} decided instances, peer {peer} holds {target}",
        cluster.sim.now()
    );
    let deadline = cluster.sim.now() + 30_000;
    while cluster.sim.now() < deadline {
        let have = cluster
            .sim
            .with_actor::<OverlogActor, _>(&primary, |a| a.runtime_ref().count("decided"));
        if have >= target {
            println!(
                "t={}ms  {primary} caught up to {have} decided instances (peer has {target})",
                cluster.sim.now()
            );
            break;
        }
        cluster.sim.run_for(500);
    }

    // The rejoined replica itself serves the complete namespace: the entry
    // committed while it was dead included.
    let served = cluster.sim.with_actor::<OverlogActor, _>(&primary, |a| {
        a.runtime_ref()
            .rows("fqpath")
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
    });
    assert!(
        served.iter().any(|p| p.contains("/jobs/after-failover")),
        "rejoined replica must serve entries committed while it was down"
    );
    println!(
        "t={}ms  {primary} serves {} paths, /jobs/after-failover included",
        cluster.sim.now(),
        served.len()
    );
    println!("\nthe restarted primary kept its promises and rejoined with full state.");
}
