//! The canonical BOOM Analytics workload: wordcount on the full
//! declarative stack — BOOM-MR scheduling a job (Overlog JobTracker) over
//! data stored in BOOM-FS (Overlog NameNode), with the LATE speculation
//! policy installed.
//!
//! ```text
//! cargo run --example wordcount
//! ```

use boom::mr::{CostModel, MrClusterBuilder, MrDriver, MrJob, SpecPolicy};

fn main() {
    let mut cluster = MrClusterBuilder {
        workers: 6,
        slots: 2,
        chunk_size: 2048,
        policy: SpecPolicy::Late,
        cost: CostModel {
            map_ms_per_kib: 300.0,
            reduce_ms_per_krec: 300.0,
            min_ms: 100,
        },
        ..Default::default()
    }
    .build();

    println!("loading corpus into BOOM-FS ...");
    let inputs = cluster.load_corpus(2026, 4, 4_000).unwrap();
    println!("  {} input files written", inputs.len());

    let fs = cluster.fs.clone();
    let mut driver = cluster.driver.clone();
    let job = MrJob {
        job_type: "wordcount".to_string(),
        inputs,
        nreduces: 4,
        outdir: "/out".to_string(),
    };
    let deadline = cluster.sim.now() + 3_600_000;
    let (job_id, took) = driver.run(&mut cluster.sim, &fs, &job, deadline).unwrap();
    println!(
        "job {job_id} completed in {:.1}s of simulated time",
        took as f64 / 1000.0
    );

    let output = MrDriver::collect_output(&mut cluster.sim, &cluster.trackers.clone(), job_id);
    let mut by_count: Vec<(&String, &i64)> = output.iter().collect();
    by_count.sort_by(|a, b| b.1.cmp(a.1));
    println!("\ntop words:");
    for (word, count) in by_count.iter().take(8) {
        println!("  {word:<10} {count}");
    }
    let total: i64 = output.values().sum();
    println!("  (total {total} words)");

    println!("\ntask timeline (from the JobTracker's Overlog tables):");
    let mut times = cluster.task_times();
    times.sort_by_key(|t| t.start);
    for t in &times {
        println!(
            "  job {} task {:>3} [{:>6}] {:>7}ms -> {:>7}ms  ({} ms)",
            t.job,
            t.task,
            t.ty,
            t.start,
            t.end,
            t.duration()
        );
    }
}
