//! Test configuration and the deterministic per-test RNG.

use rand::{RngCore, SeedableRng, StdRng};
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG handed to strategies; seeded from the test's name so
/// every run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a fully-qualified test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `usize` in `range` (empty ranges yield `range.start`).
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}
