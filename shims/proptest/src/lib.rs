//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides a
//! deterministic random-input testing harness with the same *surface* as the
//! subset of `proptest 1.x` the workspace uses: the [`proptest!`] macro,
//! [`Strategy`](strategy::Strategy) with `prop_map`, integer-range / tuple /
//! [`Just`](strategy::Just) / [`prop_oneof!`] strategies, and the
//! `collection` / `option` / `sample` / `bool` strategy modules.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs and
//!   panics; it does not minimize them.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of its
//!   fully-qualified name, so failures reproduce exactly across runs.
//! * **No persistence files.** `*.proptest-regressions` files are ignored.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate ordered sets of values from `element`, sized within `size`
    /// (best effort: duplicates are retried a bounded number of times).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `Some` roughly three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling strategies over fixed universes.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Choose uniformly among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() as usize) % self.options.len();
            self.options[i].clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (see [`ANY`]).
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The names a test file conventionally glob-imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{bool, collection, option, sample};
    }
}

/// Assert a condition inside a property body (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property body (panics with context).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property body (panics with context).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($strat) as _),+])
    };
}

/// Define property tests: each runs its body against `cases` random inputs
/// drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __rng,
                    );)+
                    let __inputs = format!("{:?}", ($(&$arg),+));
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = __outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed for input(s): {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
