//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of an associated type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces values directly from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wrap a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof requires at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}
