//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, dependency-free implementation of the `rand 0.8` API
//! surface it actually uses: `StdRng::seed_from_u64`, `Rng::gen_bool`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen`.
//!
//! The generator is **xoshiro256++** seeded via SplitMix64 — deterministic,
//! fast, and statistically strong enough for simulation workloads. It is
//! *not* the same stream as upstream `StdRng` (ChaCha12); experiments are
//! reproducible against this crate, not against upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard {
    /// Sample a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Sample a value in the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator (the crate's only RNG).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let u = rng.gen_range(0u32..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }
}
