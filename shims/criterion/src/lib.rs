//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the small slice of the `criterion 0.5` API the workspace's benches use:
//! [`Criterion`], benchmark groups, `bench_function`, `Bencher::iter` /
//! `iter_batched`, [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures simple wall-clock medians — no warm-up modeling, outlier
//! analysis, or HTML reports — and prints one line per benchmark. That is
//! enough to compile the benches under `cargo test`/`cargo clippy` and to
//! give order-of-magnitude numbers under `cargo bench`.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units the harness reports per-iteration throughput in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u32,
}

impl Bencher {
    fn new(iters: u32) -> Self {
        Bencher {
            samples: Vec::new(),
            iters,
        }
    }

    /// Time `routine` over several iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort();
        s[s.len() / 2]
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Set the target measurement time (accepted, not interpreted).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_one(&name.into(), self.sample_size, None, f);
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = (n as u32).max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.criterion.sample_size, self.throughput, f);
    }

    /// Close the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    iters: u32,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher::new(iters);
    f(&mut b);
    let med = b.median();
    match throughput {
        Some(Throughput::Elements(n)) if med > Duration::ZERO => {
            let rate = n as f64 / med.as_secs_f64();
            println!("bench {name:<48} median {med:>12?}  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
            let rate = n as f64 / med.as_secs_f64();
            println!("bench {name:<48} median {med:>12?}  ({rate:.0} B/s)");
        }
        _ => println!("bench {name:<48} median {med:>12?}"),
    }
    // Machine-readable twin of the human line: one JSON object per case
    // with a fixed key order, so CI can grep `bench-json` and diff perf
    // across commits.
    let mut json = format!(
        "{{\"name\":\"{}\",\"median_ns\":{}",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        med.as_nanos()
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            json.push_str(&format!(",\"elements\":{n}"));
            if med > Duration::ZERO {
                json.push_str(&format!(
                    ",\"elements_per_sec\":{:.1}",
                    n as f64 / med.as_secs_f64()
                ));
            }
        }
        Some(Throughput::Bytes(n)) => {
            json.push_str(&format!(",\"bytes\":{n}"));
            if med > Duration::ZERO {
                json.push_str(&format!(
                    ",\"bytes_per_sec\":{:.1}",
                    n as f64 / med.as_secs_f64()
                ));
            }
        }
        None => {}
    }
    json.push('}');
    println!("bench-json {json}");
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
