//! Whole-stack integration tests spanning every crate: MapReduce over a
//! Paxos-replicated BOOM-FS, with failures injected mid-job — the paper's
//! most demanding end-to-end scenario (a job keeps running while the
//! primary NameNode dies).

use boom::core::{FullStack, FullStackBuilder};
use boom::mr::driver::{MrDriver, MrJob};
use boom::mr::workload::synth_text;

fn build_replicated_stack(workers: usize) -> FullStack {
    FullStackBuilder {
        workers,
        ..Default::default()
    }
    .build()
}

#[test]
fn mapreduce_over_replicated_namenode() {
    let mut s = build_replicated_stack(4);
    s.fs.mkdir(&mut s.sim, "/input").unwrap();
    for i in 0..2 {
        let text = synth_text(77 + i, 2_000);
        s.fs.write_file(&mut s.sim, &format!("/input/part{i}"), &text)
            .unwrap();
    }
    let job = MrJob {
        job_type: "wordcount".to_string(),
        inputs: vec!["/input/part0".into(), "/input/part1".into()],
        nreduces: 2,
        outdir: "/out".to_string(),
    };
    let fs = s.fs.clone();
    let deadline = s.sim.now() + 3_600_000;
    let (job_id, _) = s.driver.run(&mut s.sim, &fs, &job, deadline).unwrap();
    let out = MrDriver::collect_output(&mut s.sim, &s.trackers.clone(), job_id);
    let total: i64 = out.values().sum();
    assert_eq!(total, 4_000, "every word counted exactly once");
}

#[test]
fn job_survives_primary_namenode_crash_midway() {
    // The paper's availability experiment: kill the primary NameNode while
    // a job is in flight. Running map tasks already know their chunk
    // locations; once a new leaseholder takes over, everything proceeds.
    let mut s = build_replicated_stack(4);
    s.fs.mkdir(&mut s.sim, "/input").unwrap();
    for i in 0..3 {
        let text = synth_text(200 + i, 2_500);
        s.fs.write_file(&mut s.sim, &format!("/input/part{i}"), &text)
            .unwrap();
    }
    let job = MrJob {
        job_type: "wordcount".to_string(),
        inputs: (0..3).map(|i| format!("/input/part{i}")).collect(),
        nreduces: 2,
        outdir: "/out".to_string(),
    };
    let fs = s.fs.clone();
    let job_id = s.driver.submit(&mut s.sim, &fs, &job).unwrap();
    // Let the job get going, then kill the primary.
    s.sim.run_for(700);
    let primary = s.namenodes[0].clone();
    let at = s.sim.now() + 10;
    s.sim.schedule_crash(&primary, at);
    let deadline = s.sim.now() + 3_600_000;
    let done = s.driver.wait(&mut s.sim, job_id, deadline);
    assert!(
        done.is_some(),
        "job must finish despite the NameNode failover"
    );
    let out = MrDriver::collect_output(&mut s.sim, &s.trackers.clone(), job_id);
    let total: i64 = out.values().sum();
    assert_eq!(total, 7_500);
    // And the filesystem is still fully usable afterwards.
    let mut ok = false;
    for _ in 0..40 {
        match fs.exists(&mut s.sim, "/input/part0") {
            Ok(true) => {
                ok = true;
                break;
            }
            _ => s.sim.run_for(500),
        }
    }
    assert!(ok, "metadata survived the crash");
}

#[test]
fn tracker_crash_reschedules_its_tasks() {
    let mut s = build_replicated_stack(4);
    s.fs.mkdir(&mut s.sim, "/input").unwrap();
    for i in 0..2 {
        let text = synth_text(300 + i, 3_000);
        s.fs.write_file(&mut s.sim, &format!("/input/part{i}"), &text)
            .unwrap();
    }
    let job = MrJob {
        job_type: "wordcount".to_string(),
        inputs: (0..2).map(|i| format!("/input/part{i}")).collect(),
        nreduces: 2,
        outdir: "/out".to_string(),
    };
    let fs = s.fs.clone();
    let job_id = s.driver.submit(&mut s.sim, &fs, &job).unwrap();
    s.sim.run_for(800);
    // Kill one tracker mid-job; its attempts are failed by the tracker
    // timeout and rescheduled on survivors.
    let victim = s.trackers[0].clone();
    let at = s.sim.now() + 10;
    s.sim.schedule_crash(&victim, at);
    let deadline = s.sim.now() + 3_600_000;
    let done = s.driver.wait(&mut s.sim, job_id, deadline);
    assert!(done.is_some(), "job completes on surviving trackers");
    let out = MrDriver::collect_output(&mut s.sim, &s.trackers.clone(), job_id);
    let total: i64 = out.values().sum();
    assert_eq!(total, 6_000, "no words lost or double-counted");
}
