//! Tier-1 gate: every shipped Overlog program group must be
//! diagnostic-clean at deny-warnings level — the same bar CI enforces via
//! `cargo run --bin olgcheck -- --deny-warnings`.

use boom::overlog::analysis::render;
use boom::shipped;

#[test]
fn shipped_programs_are_diagnostic_clean() {
    for group in shipped::groups() {
        let (diags, map) = group.analyze();
        let rendered: Vec<String> = diags.iter().map(|d| render(d, &map)).collect();
        assert!(
            diags.is_empty(),
            "group `{}` has {} diagnostic(s):\n{}",
            group.name,
            diags.len(),
            rendered.join("\n")
        );
    }
}

#[test]
fn shipped_groups_cover_every_composition() {
    let names: Vec<String> = shipped::groups().into_iter().map(|g| g.name).collect();
    for want in [
        "fs",
        "paxos",
        "mr-fifo-none",
        "mr-fifo-naive",
        "mr-fifo-late",
        "mr-locality-none",
        "mr-locality-naive",
        "mr-locality-late",
        "core",
    ] {
        assert!(names.iter().any(|n| n == want), "missing group `{want}`");
    }
}

#[test]
fn loaded_runtime_recheck_is_clean() {
    // `Runtime::check()` re-analyzes exactly what was loaded; a freshly
    // built replicated NameNode (the largest composition) must pass.
    let group = boom::paxos::PaxosGroup::new(&["nn0", "nn1", "nn2"], 3_000);
    let cfg = boom::fs::namenode::NameNodeConfig::default();
    let rt = boom::core::replicated::replicated_nn_runtime("nn0", &group, &cfg);
    let (diags, map) = rt.check_with_sources();
    let errors: Vec<String> = diags
        .iter()
        .filter(|d| d.is_error())
        .map(|d| render(d, &map))
        .collect();
    assert!(
        errors.is_empty(),
        "loaded runtime re-analysis found errors:\n{}",
        errors.join("\n")
    );
}

#[test]
fn precedence_graph_renders_for_every_group() {
    for group in shipped::groups() {
        let (ctx, _) = group.context();
        let dot = boom::overlog::analysis::dot(&ctx);
        assert!(dot.starts_with("digraph precedence {"), "{}", group.name);
        assert!(
            dot.contains("stratum"),
            "group `{}` graph lacks strata annotations",
            group.name
        );
    }
}
