//! Crash-recovery regression tests: the restart-storm scenario (staggered
//! crash/restart cycles over every NameNode replica, including a window
//! where the whole quorum is down) must keep every invariant with durable
//! disks on — and must be *flagged* by the same harness with them off,
//! pinning the blank-acceptor hazard the durability layer exists to fix.

use boom_bench::{run_restart_storm, RestartStormConfig};

#[test]
fn restart_storm_with_durability_keeps_every_invariant() {
    for seed in [1u64, 2, 3] {
        let rep = run_restart_storm(&RestartStormConfig {
            seed,
            durable: true,
            ..Default::default()
        });
        assert!(rep.all_green(), "seed {seed} went RED:\n{}", rep.render());
    }
}

#[test]
fn blank_acceptor_hazard_is_flagged_without_durability() {
    // Same storm, volatile replicas: the full-quorum outage wipes every
    // acceptor, so acked metadata and decided instances are gone. The
    // invariant harness must catch that, not paper over it.
    let rep = run_restart_storm(&RestartStormConfig {
        seed: 1,
        durable: false,
        ..Default::default()
    });
    assert!(
        !rep.all_green(),
        "volatile replicas survived a full-quorum restart storm — the \
         regression harness lost its teeth:\n{}",
        rep.render()
    );
    assert!(
        rep.checks
            .iter()
            .any(|c| c.name == "no-decided-lost" && !c.pass),
        "the decided-log check specifically must flag blank acceptors:\n{}",
        rep.render()
    );
}

#[test]
fn recovery_time_is_bounded_by_churn_not_history() {
    // Checkpointing bounds replay: with a fixed checkpoint interval, a
    // replica that lived through 4x the history must not replay 4x the
    // entries (that is what E12 measures at scale).
    let short = run_restart_storm(&RestartStormConfig {
        seed: 2,
        files: 4,
        checkpoint_every: 16,
        ..Default::default()
    });
    let long = run_restart_storm(&RestartStormConfig {
        seed: 2,
        files: 16,
        checkpoint_every: 16,
        ..Default::default()
    });
    assert!(short.all_green(), "{}", short.render());
    assert!(long.all_green(), "{}", long.render());
}
