//! Dynamic cross-check of the CALM analysis: a program the analyzer
//! certifies monotonic (no negation/aggregation/deletion anywhere in its
//! derivation closure, hence no points of order) must reach a
//! byte-identical fixpoint under *any* message ordering. We run the same
//! gossip program under different latency seeds — which permute delivery
//! order across the cluster — and compare the full materialized state.

use boom::overlog::analysis::{self, ProgramContext, SourceMap};
use boom::overlog::OverlogRuntime;
use boom::simnet::{overlog_state_fingerprint, OverlogActor, Sim, SimConfig};
use proptest::prelude::*;

const NODES: [&str; 3] = ["n0", "n1", "n2"];

/// A link-state gossip: every node floods its links to its peers and
/// computes transitive reachability. Pure joins and recursion — the
/// textbook monotonic distributed program.
fn gossip_src(links: &[(char, char)], peers: &[&str]) -> String {
    let mut src = String::from(
        "define(link, keys(0,1), {Str, Str});
         define(reach, keys(0,1), {Str, Str});
         define(peer, keys(0), {Addr});
         event share, {Addr, Str, Str};
         share(@P, X, Y) :- peer(P), link(X, Y);
         link(X, Y) :- share(_, X, Y);
         reach(X, Y) :- link(X, Y);
         reach(X, Z) :- link(X, Y), reach(Y, Z);\n",
    );
    for p in peers {
        src.push_str(&format!("peer(\"{p}\");\n"));
    }
    for (x, y) in links {
        src.push_str(&format!("link(\"{x}\", \"{y}\");\n"));
    }
    src
}

fn run_gossip(seed: u64, link_sets: &[Vec<(char, char)>]) -> String {
    let mut sim = Sim::new(SimConfig {
        seed,
        min_latency: 1,
        max_latency: 40,
        ..Default::default()
    });
    for (i, me) in NODES.iter().enumerate() {
        let peers: Vec<&str> = NODES.iter().filter(|n| *n != me).copied().collect();
        let mut rt = OverlogRuntime::new(me);
        rt.load(&gossip_src(&link_sets[i], &peers))
            .expect("gossip program loads");
        sim.add_node(me, Box::new(OverlogActor::new(rt, 10)));
    }
    sim.run_for(5_000);
    overlog_state_fingerprint(&mut sim)
}

fn link_strategy() -> impl Strategy<Value = Vec<(char, char)>> {
    prop::collection::vec(
        (
            prop::sample::select(vec!['a', 'b', 'c', 'd', 'e']),
            prop::sample::select(vec!['a', 'b', 'c', 'd', 'e']),
        ),
        0..6,
    )
}

#[test]
fn analyzer_certifies_the_gossip_program_monotonic() {
    let mut ctx = ProgramContext::new();
    for d in ProgramContext::runtime_ambient() {
        ctx.add_ambient(d);
    }
    let mut map = SourceMap::new();
    let src = gossip_src(&[('a', 'b')], &["n1", "n2"]);
    assert!(ctx.add_source("gossip.olg", &src, &mut map));
    let rep = analysis::report(&ctx);
    assert!(rep.mono.verdict("reach").unwrap().monotonic);
    assert!(rep.mono.verdict("link").unwrap().monotonic);
    assert!(
        rep.mono.points_of_order.is_empty(),
        "a pure-join gossip needs no coordination"
    );
    // The network input is detected (share is a message table), so the
    // certificate is about monotonicity, not about being sealed.
    assert!(rep
        .mono
        .network_inputs
        .iter()
        .any(|(t, why)| t == "share" && *why == "message"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The dynamic half of CALM: certified-monotonic programs converge to
    /// the same fixpoint regardless of message ordering.
    #[test]
    fn monotonic_gossip_fixpoint_is_order_independent(
        l0 in link_strategy(),
        l1 in link_strategy(),
        l2 in link_strategy(),
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
    ) {
        let sets = vec![l0, l1, l2];
        let fp_a = run_gossip(seed_a, &sets);
        let fp_b = run_gossip(seed_b, &sets);
        prop_assert_eq!(
            fp_a, fp_b,
            "certified-monotonic program diverged under reordering \
             (seeds {} vs {})", seed_a, seed_b
        );
    }
}
