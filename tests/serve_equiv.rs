//! Serving-tier determinism: "observe, never perturb".
//!
//! The serving tier rides the simulator's observed channel, which draws
//! nothing from the simulation RNG — so a cluster carrying standing
//! subscriptions must take the *byte-identical* schedule of the same
//! cluster carrying none. The first test pins that: every client-visible
//! output and every Overlog node's state fingerprint must match with zero
//! subscriptions and with dozens.
//!
//! The second test is the chaos half of the contract: a restart storm over
//! both the server and its subscribers must end with every subscriber's
//! mirror exactly equal to the server-side query view — reconnection is
//! automatic (re-subscribe on restart, counted resyncs on the host) and no
//! acked delta is silently missing, because a mirror that lost one could
//! not equal the view.

use boom::fs::cluster::{nn_name, FsCluster, FsClusterBuilder};
use boom::overlog::{PlanOptions, Value};
use boom::serve::{fs_queries, ServeConfig, ServeHost, SubscriberActor, SubscriptionSpec};
use boom::simnet::{overlog_state_fingerprint, set_plan_options_all, ChaosSchedule, OverlogActor};

fn attach_host(cluster: &mut FsCluster) {
    let nn = nn_name(0);
    cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        a.add_hook(Box::new(ServeHost::new(ServeConfig::default())));
    });
}

fn add_watcher(cluster: &mut FsCluster, name: &str, specs: Vec<(i64, SubscriptionSpec)>) {
    let nn = nn_name(0);
    cluster
        .sim
        .add_node(name, Box::new(SubscriberActor::new(&nn, specs, 200)));
}

fn mirror_of(cluster: &mut FsCluster, watcher: &str, tag: i64) -> Vec<Vec<Value>> {
    cluster.sim.with_actor::<SubscriberActor, _>(watcher, |w| {
        w.mirrors
            .get(&tag)
            .map(|m| m.iter().cloned().collect())
            .unwrap_or_default()
    })
}

fn server_rows(cluster: &mut FsCluster, table: &str) -> Vec<Vec<Value>> {
    let nn = nn_name(0);
    cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        a.runtime_ref()
            .table(table)
            .map(|t| t.sorted_rows().into_iter().map(|r| r.to_vec()).collect())
            .unwrap_or_default()
    })
}

/// The shared FS metadata workload, returning every client-visible output
/// plus the full-cluster state fingerprint. `maintenance` toggles the
/// incremental view maintainer; the serving tier feeds its subscription
/// streams from the same tap records either way, so the fingerprint (and
/// every mirror) must not depend on it.
fn run_workload(watchers: usize, maintenance: bool) -> String {
    let mut c = FsClusterBuilder::default().build();
    set_plan_options_all(
        &mut c.sim,
        PlanOptions {
            maintenance,
            ..Default::default()
        },
    );
    if watchers > 0 {
        attach_host(&mut c);
        for i in 0..watchers {
            add_watcher(
                &mut c,
                &format!("watch{i}"),
                vec![
                    (1, fs_queries::file_status()),
                    (2, fs_queries::replication_health()),
                    (3, fs_queries::chunk_placement()),
                ],
            );
        }
    }
    let cl = c.client.clone();
    cl.mkdir(&mut c.sim, "/a").unwrap();
    cl.mkdir(&mut c.sim, "/a/b").unwrap();
    for i in 0..4 {
        cl.create(&mut c.sim, &format!("/a/b/f{i}")).unwrap();
    }
    cl.write_file(&mut c.sim, "/a/data", "deterministic payload")
        .unwrap();
    cl.rename(&mut c.sim, "/a/b/f0", "/a/b/g0").unwrap();
    cl.rm(&mut c.sim, "/a/b/f1").unwrap();
    let mut listing = cl.ls(&mut c.sim, "/a/b").unwrap();
    listing.sort();
    let content = cl.read_file(&mut c.sim, "/a/data").unwrap();
    c.sim.run_for(3_000);
    format!(
        "ls={listing:?}\ncontent_len={}\n{}",
        content.len(),
        overlog_state_fingerprint(&mut c.sim)
    )
}

/// Zero subscriptions vs. a cluster-wide fleet of them: byte-identical
/// client outputs and state fingerprints. This is the load-bearing
/// guarantee that lets E13 attach tens of thousands of subscriptions to a
/// production scenario without changing what it computes.
#[test]
fn subscriptions_never_perturb_the_simulation() {
    let bare = run_workload(0, true);
    let bare2 = run_workload(0, true);
    assert_eq!(bare, bare2, "baseline run is not even self-stable");
    assert_eq!(
        bare,
        run_workload(0, false),
        "incremental view maintenance changed the bare cluster's bytes"
    );
    for watchers in [1, 8] {
        let watched = run_workload(watchers, true);
        assert_eq!(
            bare, watched,
            "{watchers} watcher node(s) perturbed the simulation schedule"
        );
        assert_eq!(
            bare,
            run_workload(watchers, false),
            "{watchers} watcher node(s) + full recompute diverged"
        );
    }
}

/// Retractions cross the wire with the right sign: after an `rm`, the
/// watcher's mirror must drop exactly the removed file's row — with zero
/// resyncs, proving the row left through an incremental `Delete` record
/// on the subscription stream rather than a compensating snapshot.
#[test]
fn retractions_stream_to_mirrors_with_correct_signs() {
    let mut c = FsClusterBuilder::default().build();
    attach_host(&mut c);
    add_watcher(&mut c, "watch0", vec![(1, fs_queries::file_status())]);
    let cl = c.client.clone();
    cl.mkdir(&mut c.sim, "/d").unwrap();
    for i in 0..4 {
        cl.create(&mut c.sim, &format!("/d/f{i}")).unwrap();
    }
    c.sim.run_for(2_000);
    let before = mirror_of(&mut c, "watch0", 1);
    assert!(
        before.iter().any(|r| r[0] == Value::str("/d/f2")),
        "mirror carries the file before the retraction: {before:?}"
    );
    // The initial subscribe lands as one visible reset (the snapshot);
    // everything after it must flow as signed deltas.
    let resets_before = c
        .sim
        .with_actor::<SubscriberActor, _>("watch0", |s| s.resets);

    cl.rm(&mut c.sim, "/d/f2").unwrap();
    cl.rename(&mut c.sim, "/d/f3", "/d/g3").unwrap();
    c.sim.run_for(2_000);

    let mirror = mirror_of(&mut c, "watch0", 1);
    let server = server_rows(&mut c, "srv_q0");
    assert_eq!(mirror, server, "mirror tracks the server view");
    assert!(
        !mirror.iter().any(|r| r[0] == Value::str("/d/f2")),
        "retracted file still present in the mirror: {mirror:?}"
    );
    assert!(
        !mirror.iter().any(|r| r[0] == Value::str("/d/f3"))
            && mirror.iter().any(|r| r[0] == Value::str("/d/g3")),
        "rename must retract the old path and insert the new: {mirror:?}"
    );
    let resets = c
        .sim
        .with_actor::<SubscriberActor, _>("watch0", |s| s.resets);
    assert_eq!(
        resets, resets_before,
        "retraction must arrive as a signed delta, not a resync"
    );
}

/// Restart storm over server and subscribers: crash the watchers while the
/// namespace churns (their acks and deltas die with them), then crash the
/// serving NameNode itself. Everyone reconnects on restart; at quiescence
/// every mirror equals the server view row for row, with the resyncs
/// counted — never silent.
#[test]
fn subscribers_survive_a_restart_storm_and_miss_nothing() {
    let mut c = FsClusterBuilder::default().build();
    let nn = nn_name(0);
    // Aggressive timeouts so presumed-lost windows resolve within the test.
    c.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        a.add_hook(Box::new(ServeHost::new(ServeConfig {
            ack_timeout: 1_000,
            resync_backoff: 300,
            ..Default::default()
        })));
    });
    add_watcher(&mut c, "watch0", vec![(1, fs_queries::file_status())]);
    add_watcher(&mut c, "watch1", vec![(1, fs_queries::file_status())]);
    c.sim.run_for(1_000);
    let cl = c.client.clone();
    cl.mkdir(&mut c.sim, "/d").unwrap();
    for i in 0..5 {
        cl.create(&mut c.sim, &format!("/d/pre{i}")).unwrap();
    }
    c.sim.run_for(1_000);

    // Staggered storm (times relative to install): both watchers flap
    // with overlapping windows, then the server itself.
    let storm = ChaosSchedule::new("serve-storm")
        .flap("watch0", 200, 2_200)
        .flap("watch1", 900, 2_900)
        .flap(&nn, 4_000, 4_800);
    c.sim.install_chaos(&storm);

    // Churn while the watchers are down: these deltas die on the floor.
    c.sim.run_for(400);
    for i in 0..8 {
        cl.create(&mut c.sim, &format!("/d/mid{i}")).unwrap();
    }
    // Ride out the watcher flaps and the server flap. The NameNode is the
    // paper's volatile single-node variant (`with_factory`, no durable
    // disk): its restart wipes the namespace, which is itself a delta
    // storm — every fqpath row retracts and the root reappears.
    c.sim.run_for(6_000);
    // Post-storm churn against the reborn namespace: the healed streams
    // must carry it incrementally.
    cl.mkdir(&mut c.sim, "/p").unwrap();
    for i in 0..3 {
        cl.create(&mut c.sim, &format!("/p/post{i}")).unwrap();
    }
    c.sim.run_for(10_000);

    let server = server_rows(&mut c, "srv_q0");
    let base = server_rows(&mut c, "fqpath");
    assert!(
        server.iter().any(|r| r[0] == Value::str("/p/post2")),
        "server view carries post-storm state: {server:?}\nfqpath: {base:?}"
    );
    for w in ["watch0", "watch1"] {
        let mirror = mirror_of(&mut c, w, 1);
        assert_eq!(
            mirror, server,
            "{w}: mirror must equal the server view after the storm"
        );
        let resets = c.sim.with_actor::<SubscriberActor, _>(w, |s| s.resets);
        assert!(resets > 0, "{w}: reconnection goes through a visible reset");
    }
    let resyncs = c
        .sim
        .with_actor::<OverlogActor, _>(&nn, |a| a.hook_mut::<ServeHost>().unwrap().total_resyncs);
    assert!(resyncs > 0, "host counted the compensating resyncs");
}
