//! Golden semantic-analysis reports (monotonicity/CALM, typed catalog,
//! cardinality, shard safety) for every shipped program group, plus
//! targeted assertions for the paper's two flagship claims: Paxos has
//! genuine points of order, and BOOM-FS path resolution is a certified
//! monotonic query — and for the shard-safety pass: every rule gets a
//! verdict, the FS heartbeat hot path shards, and stateful builtins pin
//! their rules serial.
//!
//! Regenerate the goldens with `UPDATE_GOLDEN=1 cargo test --test
//! analyze_golden` after an intentional analysis or program change.

use boom::overlog::analysis;
use boom::shipped;
use std::fs;
use std::path::PathBuf;

fn golden_path(group: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/analyze/{group}.txt"))
}

#[test]
fn analyze_reports_match_goldens() {
    for group in shipped::groups() {
        let (ctx, map) = group.context();
        let rep = analysis::report(&ctx);
        let got = rep.render_semantic(&map);
        let path = golden_path(&group.name);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, &got).unwrap();
            continue;
        }
        let want = fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden {} — regenerate with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        assert_eq!(
            got, want,
            "group `{}` semantic report drifted from its golden; \
             regenerate with UPDATE_GOLDEN=1 if the change is intentional",
            group.name
        );
    }
}

#[test]
fn every_shipped_rule_gets_a_shard_verdict() {
    for group in shipped::groups() {
        let (ctx, _) = group.context();
        let rep = analysis::report(&ctx);
        assert_eq!(
            rep.shard.rules.len(),
            ctx.rules.len(),
            "group `{}`: shard report must cover every rule",
            group.name
        );
        for r in &rep.shard.rules {
            assert!(
                !r.variants.is_empty(),
                "group `{}`: rule `{}` has no shard verdict (shipped \
                 programs have no broken rules)",
                group.name,
                r.label
            );
        }
        // Every shipped group must have at least one genuinely
        // hash-distributable rule — otherwise E11 measures nothing.
        assert!(
            rep.shard.rules.iter().any(|r| r
                .variants
                .iter()
                .any(|(_, v)| matches!(v, analysis::shard::ShardVerdict::Sharded { .. }))),
            "group `{}` has no sharded verdict at all",
            group.name
        );
    }
}

#[test]
fn fs_heartbeat_absorption_shards_and_newid_stays_serial() {
    use analysis::shard::ShardVerdict;
    let group = shipped::groups()
        .into_iter()
        .find(|g| g.name == "fs")
        .unwrap();
    let (ctx, _) = group.context();
    let rep = analysis::report(&ctx);
    // The heartbeat absorption rules — the NameNode's hot path under the
    // paper's E6 workload — must co-partition on the head key: they are
    // what intra-node sharding exists to speed up.
    for head in ["dn_hb", "hb_chunk", "hb_chunk_t"] {
        let sharded = rep.shard.rules.iter().filter(|r| r.head == head).any(|r| {
            r.variants
                .iter()
                .any(|(_, v)| matches!(v, ShardVerdict::Sharded { .. }))
        });
        assert!(sharded, "heartbeat rule for `{head}` must shard");
    }
    // File creation mints ids with `newid()`: a stateful builtin pins the
    // rule serial no matter the join structure.
    let newid_serial = rep.shard.rules.iter().any(|r| {
        r.variants.iter().all(
            |(_, v)| matches!(v, ShardVerdict::Serial { reason, .. } if reason.contains("newid")),
        ) && !r.variants.is_empty()
    });
    assert!(newid_serial, "a newid() rule must be a hard serial");
    // And the mkdir family distributes by broadcasting the small
    // metadata relations rather than re-partitioning them.
    let broadcasts = rep.shard.rules.iter().any(|r| {
        r.variants
            .iter()
            .any(|(_, v)| matches!(v, ShardVerdict::Broadcast { .. }))
    });
    assert!(broadcasts, "fs must have broadcast verdicts");
}

#[test]
fn paxos_has_genuine_points_of_order() {
    let group = shipped::groups()
        .into_iter()
        .find(|g| g.name == "paxos")
        .unwrap();
    let (ctx, _) = group.context();
    let rep = analysis::report(&ctx);
    assert!(
        !rep.mono.points_of_order.is_empty(),
        "Paxos must need coordination somewhere"
    );
    // The flagship one: the `promised(max<B>)` ballot aggregate consumes
    // ballots that arrived over the network — exactly where message
    // reordering can change the promise, i.e. why Paxos exists at all.
    assert!(
        rep.mono
            .points_of_order
            .iter()
            .any(|p| p.kind == "aggregation" && p.table == "promised"),
        "ballot aggregation into `promised` is a point of order"
    );
}

#[test]
fn fs_path_resolution_is_certified_monotonic() {
    let group = shipped::groups()
        .into_iter()
        .find(|g| g.name == "fs")
        .unwrap();
    let (ctx, _) = group.context();
    let rep = analysis::report(&ctx);
    // Path resolution (`fqpath`, and the `child` edges it recurses over)
    // is the paper's example of a monotonic computation: its own rules
    // are pure joins/recursion. The only taint is inherited from the
    // (necessarily non-monotonic) file-creation decision upstream.
    for t in ["fqpath", "child"] {
        let v = rep
            .mono
            .verdict(t)
            .unwrap_or_else(|| panic!("`{t}` declared"));
        assert!(
            v.locally_monotonic,
            "`{t}` must be a certified monotonic query"
        );
    }
    assert!(
        rep.mono.certified_queries().any(|t| t == "fqpath"),
        "fqpath appears in the certified list"
    );
    // And no network-facing non-monotonicity: the NameNode coordinates
    // through Paxos (the `core` group), not inside its own program.
    assert!(
        rep.mono.points_of_order.is_empty(),
        "fs alone has no points of order"
    );
}
