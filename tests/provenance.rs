//! Cross-crate tests of the `boom-trace` provenance and profiling layer:
//! a golden derivation tree from the shipped NameNode program, and
//! reproducibility properties — the same simulator seed must yield
//! byte-identical provenance, profile and metrics output on every run.

use boom_bench::observe::{run_observed_fs, ObserveConfig};
use boom_bench::ObservedRun;
use boom_trace::render_hot_rules;
use proptest::prelude::*;

/// Strip the `[tick N]` annotations: tick numbers are deterministic for
/// a fixed seed but shift whenever unrelated scheduling changes, which
/// would make the golden test churn for no semantic reason.
fn strip_ticks(tree: &str) -> String {
    tree.lines()
        .map(|l| l.split(" [tick ").next().expect("split is total"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn observed(seed: u64) -> ObservedRun {
    run_observed_fs(&ObserveConfig {
        seed,
        provenance: true,
        // Chrome spans carry wall-clock durations; keep the recorder off
        // wherever output is compared byte-for-byte.
        chrome: false,
    })
}

#[test]
fn golden_fqpath_derivation_tree() {
    // Why does `/obs` resolve? Because mkdir derived a `file` row under
    // the root, and the recursive `fqpath` view joined it with the
    // root's path — the shipped namenode.olg rules, witnessed end to end.
    let run = observed(42);
    let targets = run.prov.find("fqpath(\"/obs\", ");
    assert_eq!(targets.len(), 1, "{targets:?}");
    let (t, r) = &targets[0];
    let got = strip_ticks(&run.prov.derivation(t, r).render());
    let want = "\
fqpath(\"/obs\", 2)  <- rule#1(fqpath) @nn0
|- file(2, 1, \"obs\", true)  <- rule#9(file) @nn0
|  `- do_mkdir(\"/obs\", 1)  <- rule#8(do_mkdir) @nn0
|     |- request(@client0, 1, \"mkdir\", [\"/obs\"])  (base/external)
|     |- fqpath(\"/\", 1)  <- rule#0(fqpath) @nn0
|     |  `- file(1, 0, \"\", true)  (base/external)
|     `- file(1, 0, \"\", true)  (base/external)
`- fqpath(\"/\", 1)  <- rule#0(fqpath) @nn0
   `- file(1, 0, \"\", true)  (base/external)
";
    assert_eq!(got, want, "derivation tree drifted:\n{got}");
}

/// Render everything deterministic an observed run produces, in one
/// string: provenance trees for a fixed query, the hot-rules profile
/// (without the wall-clock column), and the metrics registry JSON.
fn deterministic_render(run: &ObservedRun) -> String {
    let mut out = String::new();
    for (t, r) in run.prov.find("fqpath(") {
        out.push_str(&run.prov.derivation(&t, &r).render());
        out.push('\n');
    }
    out.push_str(&render_hot_rules(&run.profile, usize::MAX, false));
    out.push_str(&run.registry.clone().to_json());
    out.push_str(&format!(
        "\ntrace_events={} trace_dropped={} prov_dropped={}",
        run.trace_events, run.trace_dropped, run.prov_dropped
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The reproducibility contract: identical seed, identical output —
    /// byte for byte — across independent runs of the whole cluster.
    #[test]
    fn provenance_and_profile_are_reproducible(seed in 0u64..1000) {
        let a = deterministic_render(&observed(seed));
        let b = deterministic_render(&observed(seed));
        prop_assert_eq!(a, b);
    }
}
