//! Property-based cross-crate tests.
//!
//! The strongest check in the repository: **differential testing** of the
//! two control planes. The Overlog NameNode and the imperative baseline
//! speak the same protocol and claim the same semantics — so any random
//! sequence of metadata operations must produce identical observable
//! results on both. A divergence is a bug in one of them (historically:
//! in whichever had the subtler update semantics).

use boom::fs::cluster::{ControlPlane, FsCluster, FsClusterBuilder};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Mkdir(String),
    Create(String),
    Rm(String),
    Exists(String),
    Ls(String),
    Rename(String, String),
}

fn path_strategy() -> impl Strategy<Value = String> {
    // A small closed path universe so collisions (exists/noparent/notempty)
    // actually happen.
    prop::sample::select(vec![
        "/a".to_string(),
        "/b".to_string(),
        "/a/x".to_string(),
        "/a/y".to_string(),
        "/b/z".to_string(),
        "/a/x/deep".to_string(),
        "/missing/child".to_string(),
    ])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        path_strategy().prop_map(Op::Mkdir),
        path_strategy().prop_map(Op::Create),
        path_strategy().prop_map(Op::Rm),
        path_strategy().prop_map(Op::Exists),
        path_strategy().prop_map(Op::Ls),
        (path_strategy(), path_strategy()).prop_map(|(a, b)| Op::Rename(a, b)),
    ]
}

/// Execute an op; normalize the observable outcome to a comparable string.
fn apply(c: &mut FsCluster, op: &Op) -> String {
    let cl = c.client.clone();
    let sim = &mut c.sim;
    match op {
        Op::Mkdir(p) => format!("mkdir {:?}", cl.mkdir(sim, p).err()),
        Op::Create(p) => format!("create {:?}", cl.create(sim, p).err()),
        Op::Rm(p) => format!("rm {:?}", cl.rm(sim, p).err()),
        Op::Exists(p) => format!("exists {:?}", cl.exists(sim, p)),
        Op::Ls(p) => format!("ls {:?}", cl.ls(sim, p)),
        Op::Rename(a, b) => format!("rename {:?}", cl.rename(sim, a, b).err()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential test: declarative vs baseline NameNode agree on every
    /// observable outcome of random op sequences.
    #[test]
    fn namenodes_agree_on_random_op_sequences(
        ops in proptest::collection::vec(op_strategy(), 1..25)
    ) {
        let mut decl = FsClusterBuilder {
            control: ControlPlane::Declarative,
            datanodes: 2,
            replication: 1,
            ..Default::default()
        }
        .build();
        let mut base = FsClusterBuilder {
            control: ControlPlane::Baseline,
            datanodes: 2,
            replication: 1,
            ..Default::default()
        }
        .build();
        for (i, op) in ops.iter().enumerate() {
            let a = apply(&mut decl, op);
            let b = apply(&mut base, op);
            prop_assert_eq!(a, b, "divergence at step {} on {:?}", i, op);
        }
    }

    /// The filesystem tree never corrupts: after any op sequence, every
    /// listed child exists, and removed paths do not.
    #[test]
    fn tree_invariants_hold(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        let mut c = FsClusterBuilder {
            control: ControlPlane::Declarative,
            datanodes: 2,
            replication: 1,
            ..Default::default()
        }
        .build();
        for op in &ops {
            let _ = apply(&mut c, op);
        }
        let cl = c.client.clone();
        // Walk the tree from the root; every child must report existing.
        let mut stack = vec!["/".to_string()];
        while let Some(dir) = stack.pop() {
            let Ok(children) = cl.ls(&mut c.sim, &dir) else { continue };
            for ch in children {
                let path = if dir == "/" {
                    format!("/{ch}")
                } else {
                    format!("{dir}/{ch}")
                };
                prop_assert!(
                    cl.exists(&mut c.sim, &path).unwrap(),
                    "listed child {} does not exist", path
                );
                stack.push(path);
            }
        }
    }
}
