//! Planner A/B byte-identity: the analysis-driven planner (cardinality
//! join reordering + CALM-scoped view recompute, the default) must be
//! observationally identical to the source-order baseline on every
//! shipped scenario. Each scenario runs three times — baseline planner,
//! baseline planner again (guards against pre-existing nondeterminism),
//! and the analysis-driven planner — and the full materialized state of
//! every Overlog node plus the client-visible outputs are compared as
//! strings.

use boom::core::FullStackBuilder;
use boom::fs::{ControlPlane, FsClusterBuilder};
use boom::mr::workload::synth_text;
use boom::mr::{MrClusterBuilder, MrDriver, MrJob, SpecPolicy};
use boom::overlog::PlanOptions;
use boom::simnet::{overlog_state_fingerprint, set_plan_options_all};

const BASELINE: PlanOptions = PlanOptions {
    reorder_joins: false,
    scoped_views: false,
    shards: 1,
    maintenance: false,
    kernels: false,
};

fn assert_ab_identical(name: &str, run: impl Fn(PlanOptions) -> String) {
    let a1 = run(BASELINE);
    let a2 = run(BASELINE);
    assert_eq!(a1, a2, "{name}: baseline planner is not even self-stable");
    let b = run(PlanOptions::default());
    assert_eq!(
        a1, b,
        "{name}: analysis-driven planner diverged from baseline"
    );
}

/// BOOM-FS metadata workload: directories, files, a real chunk write,
/// renames and deletions (deletions drive the scoped view recompute).
#[test]
fn fs_scenario_is_planner_independent() {
    assert_ab_identical("fs", |opts| {
        let mut c = FsClusterBuilder {
            control: ControlPlane::Declarative,
            datanodes: 3,
            replication: 2,
            ..Default::default()
        }
        .build();
        set_plan_options_all(&mut c.sim, opts);
        let cl = c.client.clone();
        cl.mkdir(&mut c.sim, "/a").unwrap();
        cl.mkdir(&mut c.sim, "/a/b").unwrap();
        for i in 0..4 {
            cl.create(&mut c.sim, &format!("/a/b/f{i}")).unwrap();
        }
        cl.write_file(&mut c.sim, "/a/data", &synth_text(7, 400))
            .unwrap();
        cl.rename(&mut c.sim, "/a/b/f0", "/a/b/g0").unwrap();
        cl.rm(&mut c.sim, "/a/b/f1").unwrap();
        let mut listing = cl.ls(&mut c.sim, "/a/b").unwrap();
        listing.sort();
        let content = cl.read_file(&mut c.sim, "/a/data").unwrap();
        c.sim.run_for(3_000);
        format!(
            "ls={listing:?}\ncontent_len={}\n{}",
            content.len(),
            overlog_state_fingerprint(&mut c.sim)
        )
    });
}

/// BOOM-MR wordcount under every shipped (assignment × speculation)
/// policy combination.
#[test]
fn mr_scenarios_are_planner_independent() {
    for (locality, lname) in [(false, "fifo"), (true, "locality")] {
        for (policy, sname) in [
            (SpecPolicy::None, "none"),
            (SpecPolicy::Naive, "naive"),
            (SpecPolicy::Late, "late"),
        ] {
            assert_ab_identical(&format!("mr-{lname}-{sname}"), move |opts| {
                let mut c = MrClusterBuilder {
                    policy,
                    locality,
                    workers: 3,
                    ..Default::default()
                }
                .build();
                set_plan_options_all(&mut c.sim, opts);
                let inputs = c.load_corpus(11, 2, 800).expect("corpus loads");
                let fs = c.fs.clone();
                let mut driver = c.driver.clone();
                let job = MrJob {
                    job_type: "wordcount".into(),
                    inputs,
                    nreduces: 2,
                    outdir: "/out".into(),
                };
                let deadline = c.sim.now() + 50_000_000;
                let (job_id, job_ms) = driver
                    .run(&mut c.sim, &fs, &job, deadline)
                    .expect("job completes");
                let out = MrDriver::collect_output(&mut c.sim, &c.trackers.clone(), job_id);
                format!(
                    "job_ms={job_ms} out={out:?}\n{}",
                    overlog_state_fingerprint(&mut c.sim)
                )
            });
        }
    }
}

/// The full replicated stack: MapReduce over a Paxos-replicated NameNode
/// (fs + paxos + glue + mr in one simulation).
#[test]
fn full_stack_scenario_is_planner_independent() {
    assert_ab_identical("full-stack", |opts| {
        let mut s = FullStackBuilder {
            workers: 3,
            ..Default::default()
        }
        .build();
        set_plan_options_all(&mut s.sim, opts);
        s.fs.mkdir(&mut s.sim, "/input").unwrap();
        for i in 0..2 {
            let text = synth_text(50 + i, 1_000);
            s.fs.write_file(&mut s.sim, &format!("/input/part{i}"), &text)
                .unwrap();
        }
        let job = MrJob {
            job_type: "wordcount".to_string(),
            inputs: vec!["/input/part0".into(), "/input/part1".into()],
            nreduces: 2,
            outdir: "/out".to_string(),
        };
        let fs = s.fs.clone();
        let deadline = s.sim.now() + 3_600_000;
        let (job_id, _) = s.driver.run(&mut s.sim, &fs, &job, deadline).unwrap();
        let out = MrDriver::collect_output(&mut s.sim, &s.trackers.clone(), job_id);
        let total: i64 = out.values().sum();
        format!(
            "total={total} out={out:?}\n{}",
            overlog_state_fingerprint(&mut s.sim)
        )
    });
}
