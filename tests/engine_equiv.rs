//! Engine byte-identity across evaluation modes: with the `parallel`
//! feature on, every shipped scenario must produce exactly the state the
//! serial engine produces — same virtual schedule, same RNG stream, same
//! fault log, same client-visible outputs, and the same
//! `overlog_state_fingerprint` byte for byte — under the parallel
//! simulator engine ([`Sim::set_parallel`]) AND under intra-node sharded
//! rule evaluation (`PlanOptions::shards > 1`).
//!
//! Each scenario runs four times — serial, serial again (guards against
//! pre-existing nondeterminism), parallel, and sharded — and the full
//! observable state is compared as strings. Property tests then sweep
//! randomized latency/drop/duplicate configs and chaos schedules through
//! a chatty cluster under both simulator engines, and randomized batched
//! workloads through a sharded runtime at random shard counts.
#![cfg(feature = "parallel")]

use boom::core::FullStackBuilder;
use boom::fs::{ControlPlane, FsClusterBuilder};
use boom::mr::workload::synth_text;
use boom::mr::{MrClusterBuilder, MrDriver, MrJob, SpecPolicy};
use boom::overlog::PlanOptions;
use boom::simnet::{
    overlog_state_fingerprint, set_plan_options_all, ChaosSchedule, Sim, SimConfig,
};

#[derive(Clone, Copy)]
enum Mode {
    Serial,
    /// Parallel same-instant node evaluation in the simulator.
    Parallel,
    /// Serial simulator, but every Overlog runtime evaluates shard-safe
    /// rule variants over N hash partitions on worker threads.
    Sharded(usize),
}

fn enable(sim: &mut Sim, mode: Mode) {
    match mode {
        Mode::Serial => {}
        Mode::Parallel => {
            assert!(
                sim.set_parallel(true),
                "the `parallel` feature must be compiled in for this suite"
            );
        }
        Mode::Sharded(n) => set_plan_options_all(
            sim,
            PlanOptions {
                shards: n,
                ..Default::default()
            },
        ),
    }
}

fn assert_engine_identical(name: &str, run: impl Fn(Mode) -> String) {
    let s1 = run(Mode::Serial);
    let s2 = run(Mode::Serial);
    assert_eq!(s1, s2, "{name}: serial engine is not even self-stable");
    let p = run(Mode::Parallel);
    assert_eq!(s1, p, "{name}: parallel engine diverged from serial");
    let sh = run(Mode::Sharded(4));
    assert_eq!(s1, sh, "{name}: sharded evaluation diverged from serial");
}

/// BOOM-FS metadata workload: directories, files, a real chunk write,
/// renames and deletions, fingerprinting every Overlog node at the end.
#[test]
fn fs_scenario_is_engine_independent() {
    assert_engine_identical("fs", |mode| {
        let mut c = FsClusterBuilder {
            control: ControlPlane::Declarative,
            datanodes: 3,
            replication: 2,
            ..Default::default()
        }
        .build();
        enable(&mut c.sim, mode);
        let cl = c.client.clone();
        cl.mkdir(&mut c.sim, "/a").unwrap();
        cl.mkdir(&mut c.sim, "/a/b").unwrap();
        for i in 0..4 {
            cl.create(&mut c.sim, &format!("/a/b/f{i}")).unwrap();
        }
        cl.write_file(&mut c.sim, "/a/data", &synth_text(7, 400))
            .unwrap();
        cl.rename(&mut c.sim, "/a/b/f0", "/a/b/g0").unwrap();
        cl.rm(&mut c.sim, "/a/b/f1").unwrap();
        let mut listing = cl.ls(&mut c.sim, "/a/b").unwrap();
        listing.sort();
        let content = cl.read_file(&mut c.sim, "/a/data").unwrap();
        c.sim.run_for(3_000);
        format!(
            "ls={listing:?}\ncontent_len={}\n{}",
            content.len(),
            overlog_state_fingerprint(&mut c.sim)
        )
    });
}

/// FS delete storm: build a directory tree, retract most of it (files
/// first, then the emptied directories), and rebuild part of it — the
/// heaviest retraction-propagation workload the NameNode program has.
/// Every derived view (fqpath, child, ls_dir, chunk placement) must land
/// on the same bytes whether views are maintained incrementally or the
/// tick path runs parallel/sharded.
#[test]
fn fs_delete_storm_is_engine_independent() {
    assert_engine_identical("fs-delete-storm", |mode| {
        let mut c = FsClusterBuilder {
            control: ControlPlane::Declarative,
            datanodes: 3,
            replication: 2,
            ..Default::default()
        }
        .build();
        enable(&mut c.sim, mode);
        let cl = c.client.clone();
        for d in ["/a", "/a/b", "/a/c", "/tmp"] {
            cl.mkdir(&mut c.sim, d).unwrap();
        }
        for dir in ["/a/b", "/a/c", "/tmp"] {
            for i in 0..5 {
                cl.create(&mut c.sim, &format!("{dir}/f{i}")).unwrap();
            }
        }
        cl.write_file(&mut c.sim, "/a/data", &synth_text(3, 600))
            .unwrap();
        // The storm: every file in /tmp and /a/c, then the dirs.
        for i in 0..5 {
            cl.rm(&mut c.sim, &format!("/tmp/f{i}")).unwrap();
            cl.rm(&mut c.sim, &format!("/a/c/f{i}")).unwrap();
        }
        cl.rm(&mut c.sim, "/tmp").unwrap();
        cl.rm(&mut c.sim, "/a/c").unwrap();
        // Overwrite-heavy coda: rename survivors onto fresh names and
        // rebuild a deleted subtree.
        cl.rename(&mut c.sim, "/a/b/f0", "/a/b/z0").unwrap();
        cl.mkdir(&mut c.sim, "/a/c").unwrap();
        cl.create(&mut c.sim, "/a/c/again").unwrap();
        cl.rm(&mut c.sim, "/a/data").unwrap();
        let mut listing = cl.ls(&mut c.sim, "/a/b").unwrap();
        listing.sort();
        c.sim.run_for(3_000);
        format!("ls={listing:?}\n{}", overlog_state_fingerprint(&mut c.sim))
    });
}

/// Multi-decree Paxos churn: every decided slot retracts its own
/// bookkeeping (`vote`, `prop_queue`, `pending_prep`, `inflight` all have
/// delete rules), so a burst of decrees is a retraction storm over the
/// acceptor state the decided log is derived from.
#[test]
fn paxos_decide_churn_is_engine_independent() {
    use boom::paxos::{decided_log, paxos_runtime, propose_row, PaxosGroup};
    use boom::simnet::OverlogActor;
    assert_engine_identical("paxos-churn", |mode| {
        let members = ["px0", "px1", "px2"];
        let group = PaxosGroup::new(&members, 4_000);
        let mut sim = Sim::new(SimConfig::default());
        for name in &group.members {
            let g = group.clone();
            sim.add_node(
                name,
                Box::new(OverlogActor::with_factory(
                    Box::new(move |n| paxos_runtime(n, &g)),
                    20,
                    name,
                )),
            );
        }
        enable(&mut sim, mode);
        for i in 0..12 {
            sim.inject(
                "px0",
                "propose",
                propose_row("client", i, &format!("cmd{i}"), vec![]),
            );
            sim.run_for(150);
        }
        sim.run_for(20_000);
        let log = sim.with_actor::<OverlogActor, _>("px0", |a| decided_log(a.runtime_ref()));
        format!("log={log:?}\n{}", overlog_state_fingerprint(&mut sim))
    });
}

/// BOOM-MR wordcount under every shipped (assignment × speculation)
/// policy combination.
#[test]
fn mr_scenarios_are_engine_independent() {
    for (locality, lname) in [(false, "fifo"), (true, "locality")] {
        for (policy, sname) in [
            (SpecPolicy::None, "none"),
            (SpecPolicy::Naive, "naive"),
            (SpecPolicy::Late, "late"),
        ] {
            assert_engine_identical(&format!("mr-{lname}-{sname}"), move |mode| {
                let mut c = MrClusterBuilder {
                    policy,
                    locality,
                    workers: 3,
                    ..Default::default()
                }
                .build();
                enable(&mut c.sim, mode);
                let inputs = c.load_corpus(11, 2, 800).expect("corpus loads");
                let fs = c.fs.clone();
                let mut driver = c.driver.clone();
                let job = MrJob {
                    job_type: "wordcount".into(),
                    inputs,
                    nreduces: 2,
                    outdir: "/out".into(),
                };
                let deadline = c.sim.now() + 50_000_000;
                let (job_id, job_ms) = driver
                    .run(&mut c.sim, &fs, &job, deadline)
                    .expect("job completes");
                let out = MrDriver::collect_output(&mut c.sim, &c.trackers.clone(), job_id);
                format!(
                    "job_ms={job_ms} out={out:?}\n{}",
                    overlog_state_fingerprint(&mut c.sim)
                )
            });
        }
    }
}

/// The full replicated stack — MapReduce over the Paxos-replicated
/// NameNode — under a chaos schedule (DataNode flap mid-write plus a
/// NameNode replica partition), across three seeds. Fault logs, job
/// output, and every node's fingerprint must match byte for byte.
#[test]
fn chaotic_full_stack_is_engine_independent() {
    for seed in [1u64, 7, 23] {
        assert_engine_identical(&format!("full-stack-chaos-seed{seed}"), move |mode| {
            let mut s = FullStackBuilder {
                sim: SimConfig {
                    seed,
                    ..Default::default()
                },
                workers: 3,
                ..Default::default()
            }
            .build();
            enable(&mut s.sim, mode);
            s.fs.mkdir(&mut s.sim, "/input").unwrap();
            let schedule = ChaosSchedule::new("equiv")
                .flap("dn1", 200, 40_000)
                .partition(
                    &["nn2"],
                    &["nn0", "nn1", "dn0", "dn1", "dn2", "client0"],
                    300,
                    12_000,
                );
            s.sim.install_chaos(&schedule);
            for i in 0..2u64 {
                let text = synth_text(50 + i, 800);
                s.fs.write_file(&mut s.sim, &format!("/input/part{i}"), &text)
                    .unwrap();
            }
            let job = MrJob {
                job_type: "wordcount".to_string(),
                inputs: vec!["/input/part0".into(), "/input/part1".into()],
                nreduces: 2,
                outdir: "/out".to_string(),
            };
            let fs = s.fs.clone();
            let deadline = s.sim.now() + 3_600_000;
            let (job_id, job_ms) = s
                .driver
                .run_robust(&mut s.sim, &fs, &job, deadline)
                .expect("job completes under chaos");
            let out = MrDriver::collect_output(&mut s.sim, &s.trackers.clone(), job_id);
            s.sim.run_for(60_000);
            let faults: Vec<String> = s
                .sim
                .fault_log()
                .iter()
                .map(|f| format!("{}:{}", f.at, f.action))
                .collect();
            format!(
                "job_ms={job_ms} out={out:?}\nfaults={faults:?}\n{}",
                overlog_state_fingerprint(&mut s.sim)
            )
        });
    }
}

/// Randomized schedules: chatty imperative actors under random latency
/// spreads, loss/duplication probabilities, and crash/partition/dup-burst
/// chaos. The two engines must agree on the complete delivery record.
mod random_schedules {
    use super::{enable, Mode};
    use boom::overlog::value::row;
    use boom::overlog::{NetTuple, Value};
    use boom::simnet::{Actor, ChaosSchedule, Ctx, Sim, SimConfig};
    use proptest::prelude::*;
    use std::any::Any;

    struct Counter {
        got: Vec<(u64, String)>,
    }
    impl Actor for Counter {
        fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple) {
            self.got.push((ctx.now(), format!("{:?}", tuple.row)));
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Pinger {
        target: String,
        period: u64,
    }
    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, _tuple: NetTuple) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            let target = self.target.clone();
            let t = ctx.now() as i64;
            ctx.send(&target, "ping", row(vec![Value::Int(t)]));
            ctx.set_timer(self.period, 0);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// One random scenario, run under the requested engine. Returns every
    /// observable: counters, per-sink delivery records, and fault log.
    fn run(
        parallel: bool,
        seed: u64,
        max_latency: u64,
        drop_pct: u64,
        dup_pct: u64,
        pingers: usize,
        chaos: &[(u64, u64, u64)],
    ) -> String {
        let mut sim = Sim::new(SimConfig {
            seed,
            min_latency: 1,
            max_latency: max_latency.max(1),
            drop_prob: drop_pct as f64 / 100.0,
            duplicate_prob: dup_pct as f64 / 100.0,
        });
        enable(
            &mut sim,
            if parallel {
                Mode::Parallel
            } else {
                Mode::Serial
            },
        );
        for i in 0..pingers {
            let name = format!("p{i}");
            sim.add_node(
                &name,
                Box::new(Pinger {
                    target: format!("c{}", i % 2),
                    period: 10 + (i as u64 % 3),
                }),
            );
        }
        sim.add_node("c0", Box::new(Counter { got: Vec::new() }));
        sim.add_node("c1", Box::new(Counter { got: Vec::new() }));
        let mut schedule = ChaosSchedule::new("random");
        for &(kind, at, dur) in chaos {
            let at = at % 2_000;
            let dur = 1 + dur % 1_500;
            schedule = match kind % 3 {
                0 => schedule.flap("c0", at, at + dur),
                1 => schedule.partition(&["p0"], &["c0", "c1"], at, at + dur),
                _ => schedule.dup_burst(at, dur, 0.5),
            };
        }
        sim.install_chaos(&schedule);
        sim.run_until(3_000);
        let mut sinks = String::new();
        for c in ["c0", "c1"] {
            let got = sim.with_actor::<Counter, _>(c, |a| a.got.clone());
            sinks.push_str(&format!("{c}: {got:?}\n"));
        }
        let faults: Vec<String> = sim
            .fault_log()
            .iter()
            .map(|f| format!("{}:{}", f.at, f.action))
            .collect();
        format!(
            "delivered={} dropped={} now={}\nfaults={faults:?}\n{sinks}",
            sim.delivered_count(),
            sim.dropped_count(),
            sim.now()
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_schedules_are_engine_independent(
            seed in 0u64..10_000,
            max_latency in 1u64..60,
            drop_pct in 0u64..30,
            dup_pct in 0u64..20,
            pingers in 1usize..6,
            chaos in prop::collection::vec((0u64..3, 0u64..2_000, 0u64..1_500), 0..4),
        ) {
            let serial = run(false, seed, max_latency, drop_pct, dup_pct, pingers, &chaos);
            let parallel = run(true, seed, max_latency, drop_pct, dup_pct, pingers, &chaos);
            prop_assert_eq!(serial, parallel);
        }
    }
}

/// Shard-count invariance: a single Overlog runtime fed randomized
/// same-instant batches (coalescing into one big delta per tick) must
/// produce a byte-identical state fingerprint at 1 shard and at any
/// shard count, across programs exercising every verdict class —
/// co-partitioned joins (sharded), event projections (sharded),
/// aggregates and recursion (serial fallbacks).
mod shard_invariance {
    use boom::overlog::value::row;
    use boom::overlog::{OverlogRuntime, PlanOptions, Value};
    use boom::simnet::{
        overlog_state_fingerprint, set_plan_options_all, OverlogActor, Sim, SimConfig,
    };
    use proptest::prelude::*;

    fn runtime(name: &str) -> OverlogRuntime {
        let mut rt = OverlogRuntime::new(name);
        rt.load(
            "event e, {Int, Int};
             define(idx, keys(0), {Int, Int});
             define(out, keys(0), {Int, Int});
             define(total, keys(), {Int});
             define(link, keys(0,1), {Int, Int});
             define(path, keys(0,1), {Int, Int});
             idx(X, Y) :- e(X, Y);
             out(X, Y + Z) :- e(X, Y), idx(X, Z);
             total(count<X>) :- out(X, _);
             link(X, Y) :- e(X, Y), X != Y;
             path(X, Y) :- link(X, Y);
             path(X, Z) :- link(X, Y), path(Y, Z);",
        )
        .expect("program loads");
        rt
    }

    /// Inject `vals` as one same-instant batch per tranche of 32 (fixed
    /// unit latency makes them coalesce into a single `on_tuples` call,
    /// i.e. one delta), run to quiescence, fingerprint.
    fn run(shards: usize, keyspace: i64, vals: &[i64]) -> String {
        let mut sim = Sim::new(SimConfig {
            seed: 5,
            min_latency: 1,
            max_latency: 1,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        });
        sim.add_node("n0", Box::new(OverlogActor::new(runtime("n0"), 50)));
        set_plan_options_all(
            &mut sim,
            PlanOptions {
                shards,
                ..Default::default()
            },
        );
        for (i, &v) in vals.iter().enumerate() {
            sim.inject(
                "n0",
                "e",
                row(vec![Value::Int(v % keyspace.max(1)), Value::Int(i as i64)]),
            );
        }
        sim.run_until(3_000);
        overlog_state_fingerprint(&mut sim)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn fingerprints_are_shard_count_invariant(
            shards in 2usize..=8,
            keyspace in 1i64..12,
            vals in prop::collection::vec(0i64..1_000, 16..64),
        ) {
            let serial = run(1, keyspace, &vals);
            let sharded = run(shards, keyspace, &vals);
            prop_assert_eq!(serial, sharded);
        }
    }
}

/// Maintenance invariance: a runtime whose views span every certified
/// maintenance strategy — Counting (filtered projection with a computed
/// head), GroupRecompute (keyed and global aggregates, including one over
/// a maintained view), KeyRederive (a join keyed entirely off one side),
/// and a recursive view that always falls back — must produce a
/// byte-identical state fingerprint with incremental maintenance on and
/// off, over arbitrary interleavings of batched inserts, key overwrites,
/// and delete storms.
mod maint_invariance {
    use boom::overlog::value::row;
    use boom::overlog::{OverlogRuntime, PlanOptions, Value};
    use boom::simnet::{
        overlog_state_fingerprint, set_plan_options_all, OverlogActor, Sim, SimConfig,
    };
    use proptest::prelude::*;

    fn runtime(name: &str) -> OverlogRuntime {
        let mut rt = OverlogRuntime::new(name);
        rt.load(
            "event e, {Int, Int};
             event d, {Int};
             define(base, keys(0,1), {Int, Int});
             define(slot, keys(0), {Int, Int});
             define(small, keys(0), {Int, Int});
             define(doubled, keys(0,1), {Int, Int});
             define(bysum, keys(0), {Int, Int});
             define(joined, keys(0,1), {Int, Int, Int});
             define(dtotal, keys(), {Int});
             define(reach, keys(0,1), {Int, Int});
             small(0, 10); small(1, 11); small(2, 12); small(3, 13);
             base(X, Y) :- e(X, Y);
             slot(X, Y) :- e(X, Y);
             delete base(X, Y) :- d(X), base(X, Y);
             delete slot(X, Y) :- d(X), slot(X, Y);
             doubled(X, Y * 2) :- base(X, Y), W := Y % 3, W != 0;
             bysum(X, sum<Y>) :- base(X, Y);
             joined(X, Y, Z) :- base(X, Y), M := X % 4, small(M, Z);
             dtotal(sum<Y>) :- doubled(_, Y);
             reach(X, Y) :- base(X, Y), X != Y;
             reach(X, Z) :- base(X, Y), X != Y, reach(Y, Z);",
        )
        .expect("program loads");
        rt
    }

    /// Replay `ops` against one node: positive values insert `e(k, v)`
    /// (`slot` makes low keys overwrite), negatives fire the delete rule
    /// for key `k`. Unit latency coalesces each tranche into one tick.
    fn run(maintenance: bool, keyspace: i64, ops: &[(bool, i64, i64)]) -> String {
        let mut sim = Sim::new(SimConfig {
            seed: 9,
            min_latency: 1,
            max_latency: 1,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        });
        sim.add_node("n0", Box::new(OverlogActor::new(runtime("n0"), 50)));
        set_plan_options_all(
            &mut sim,
            PlanOptions {
                maintenance,
                ..Default::default()
            },
        );
        let k = keyspace.max(1);
        for &(insert, x, y) in ops {
            if insert {
                sim.inject("n0", "e", row(vec![Value::Int(x % k), Value::Int(y)]));
            } else {
                sim.inject("n0", "d", row(vec![Value::Int(x % k)]));
            }
        }
        sim.run_until(3_000);
        overlog_state_fingerprint(&mut sim)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn fingerprints_match_maintained_vs_recomputed(
            keyspace in 1i64..10,
            raw in prop::collection::vec((0u8..10, 0i64..1_000, 0i64..1_000), 8..96),
        ) {
            // ~70% inserts, ~30% delete storms.
            let ops: Vec<(bool, i64, i64)> =
                raw.iter().map(|&(w, x, y)| (w < 7, x, y)).collect();
            let maintained = run(true, keyspace, &ops);
            let recomputed = run(false, keyspace, &ops);
            prop_assert_eq!(maintained, recomputed);
        }
    }

    /// The worst case for support counting and group re-folds: every
    /// insert is eventually retracted, across several waves.
    #[test]
    fn delete_everything_waves_match() {
        let mut ops = Vec::new();
        for wave in 0..4i64 {
            for i in 0..24i64 {
                ops.push((true, i, wave * 100 + i));
            }
            for i in 0..24i64 {
                ops.push((false, i, 0));
            }
        }
        assert_eq!(run(true, 6, &ops), run(false, 6, &ops));
    }
}
