//! Cross-crate tests of the monitoring revision (the paper's third
//! rewrite): tracing hooks added to a running system without touching its
//! rules, plus the code-size accounting behind the paper's Table of LoC.

use boom::fs::cluster::{ControlPlane, FsClusterBuilder};
use boom::overlog::{source_stats, TraceOp};
use boom::simnet::OverlogActor;

#[test]
fn watch_traces_namenode_metadata_flow() {
    let mut c = FsClusterBuilder {
        control: ControlPlane::Declarative,
        datanodes: 2,
        replication: 1,
        ..Default::default()
    }
    .build();
    // Install watchpoints at runtime — the metaprogrammed monitoring hook.
    c.sim.with_actor::<OverlogActor, _>("nn0", |nn| {
        nn.runtime().watch("file");
        nn.runtime().watch("fchunk");
    });
    let cl = c.client.clone();
    cl.mkdir(&mut c.sim, "/traced").unwrap();
    cl.write_file(&mut c.sim, "/traced/f", "payload").unwrap();
    cl.rm(&mut c.sim, "/traced/f").unwrap();
    let trace = c
        .sim
        .with_actor::<OverlogActor, _>("nn0", |nn| nn.runtime().take_trace());
    let file_inserts = trace
        .iter()
        .filter(|e| e.table == "file" && e.op == TraceOp::Insert)
        .count();
    let file_deletes = trace
        .iter()
        .filter(|e| e.table == "file" && e.op == TraceOp::Delete)
        .count();
    assert!(
        file_inserts >= 2,
        "mkdir + create traced, got {file_inserts}"
    );
    assert!(file_deletes >= 1, "rm traced");
    assert!(trace.iter().any(|e| e.table == "fchunk"));
}

#[test]
fn trace_all_counts_every_derivation() {
    let mut c = FsClusterBuilder {
        control: ControlPlane::Declarative,
        datanodes: 2,
        replication: 1,
        ..Default::default()
    }
    .build();
    c.sim
        .with_actor::<OverlogActor, _>("nn0", |nn| nn.runtime().set_trace_all(true));
    let cl = c.client.clone();
    cl.mkdir(&mut c.sim, "/d").unwrap();
    let trace = c
        .sim
        .with_actor::<OverlogActor, _>("nn0", |nn| nn.runtime().take_trace());
    // With trace-all on, many internal tables show up, not just watched
    // ones (fqpath maintenance, heartbeat bookkeeping, ...).
    let tables: std::collections::HashSet<&str> = trace.iter().map(|e| e.table.as_str()).collect();
    assert!(tables.len() >= 4, "saw only {tables:?}");
    assert!(tables.contains("fqpath"));
}

#[test]
fn rule_fire_counters_attribute_work() {
    let mut c = FsClusterBuilder {
        control: ControlPlane::Declarative,
        datanodes: 2,
        replication: 1,
        ..Default::default()
    }
    .build();
    let cl = c.client.clone();
    for i in 0..5 {
        cl.create(&mut c.sim, &format!("/f{i}")).unwrap();
    }
    let fires = c
        .sim
        .with_actor::<OverlogActor, _>("nn0", |nn| nn.runtime().rule_fire_counts());
    let total: u64 = fires.iter().map(|(_, n)| n).sum();
    assert!(total > 20, "expected plenty of rule firings, got {total}");
    // The fqpath view rule must have fired once per created file at least.
    let fq: u64 = fires
        .iter()
        .filter(|(label, _)| label.contains("fqpath"))
        .map(|(_, n)| *n)
        .sum();
    assert!(fq >= 5, "fqpath rule fired {fq} times");
}

#[test]
fn code_size_accounting_matches_paper_scale() {
    // Experiment E1's data source: rule/line counts of every Overlog
    // program in the repository. The paper reports BOOM-FS at 85 rules /
    // 469 lines and Paxos at ~300 lines; ours are the same order of
    // magnitude with the identical counting method.
    let programs = [
        ("namenode", boom::fs::NAMENODE_OLG),
        ("paxos", boom::paxos::PAXOS_OLG),
        ("replication glue", boom::core::REPLICATED_GLUE_OLG),
        ("jobtracker", boom::mr::JOBTRACKER_OLG),
        ("late", boom::mr::LATE_OLG),
        ("naive", boom::mr::NAIVE_OLG),
    ];
    let mut total_rules = 0;
    for (name, src) in programs {
        let (rules, lines) = source_stats(src);
        assert!(rules > 0, "{name} has no rules?");
        assert!(lines >= rules, "{name}: {lines} lines < {rules} rules");
        total_rules += rules;
    }
    assert!(
        (100..400).contains(&total_rules),
        "whole stack is ~paper-scale: {total_rules} rules"
    );
}
