//! The BOOM-FS DataNode: the imperative data plane, as in the paper (chunk
//! storage and transfer stayed Java there; here it is a Rust actor).

use crate::proto;
use boom_overlog::{NetTuple, Value};
use boom_simnet::{Actor, Ctx};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// DataNode configuration.
#[derive(Debug, Clone)]
pub struct DataNodeConfig {
    /// NameNodes to heartbeat to (several under the partitioned revision).
    pub namenodes: Vec<String>,
    /// Heartbeat interval in ms (the paper used 3 s).
    pub hb_interval: u64,
}

impl Default for DataNodeConfig {
    fn default() -> Self {
        DataNodeConfig {
            namenodes: vec!["nn".to_string()],
            hb_interval: 3_000,
        }
    }
}

/// A DataNode actor: stores chunks (simulated disk — survives restarts),
/// serves reads/writes with pipelined replication, heartbeats chunk
/// reports, and executes re-replication copies on the NameNode's behalf.
pub struct DataNode {
    cfg: DataNodeConfig,
    /// Chunk store: id → content. Persistent across crash/restart.
    chunks: HashMap<i64, Arc<str>>,
    /// Total writes served (instrumentation).
    pub writes: u64,
    /// Total reads served (instrumentation).
    pub reads: u64,
}

impl DataNode {
    /// Create an empty DataNode.
    pub fn new(cfg: DataNodeConfig) -> Self {
        DataNode {
            cfg,
            chunks: HashMap::new(),
            writes: 0,
            reads: 0,
        }
    }

    /// Number of chunks held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Does this node hold the chunk?
    pub fn has_chunk(&self, id: i64) -> bool {
        self.chunks.contains_key(&id)
    }

    fn heartbeat(&self, ctx: &mut Ctx<'_>) {
        let me = ctx.me().to_string();
        let now = ctx.now() as i64;
        for nn in &self.cfg.namenodes.clone() {
            // Each replica report carries its own timestamp, so the
            // NameNode's staleness rules tolerate arbitrary interleaving
            // and loss of individual heartbeat messages.
            for (id, content) in &self.chunks {
                ctx.send(
                    nn,
                    proto::HB_CHUNK_REPORT,
                    Arc::new(vec![
                        Value::addr(&me),
                        Value::Int(*id),
                        Value::Int(content.len() as i64),
                        Value::Int(now),
                    ]),
                );
            }
            ctx.send(
                nn,
                proto::HB_REPORT,
                Arc::new(vec![Value::addr(&me), Value::Int(now)]),
            );
        }
    }
}

impl Actor for DataNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.heartbeat(ctx);
        ctx.set_timer(self.cfg.hb_interval, 0);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // Chunks are on disk; only announce ourselves again.
        self.heartbeat(ctx);
        ctx.set_timer(self.cfg.hb_interval, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        self.heartbeat(ctx);
        ctx.set_timer(self.cfg.hb_interval, 0);
    }

    fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple) {
        match tuple.table.as_str() {
            proto::DN_WRITE => {
                // (Src, ReqId, ChunkId, Content, Pipeline)
                let row = &tuple.row;
                let (Some(src), Some(req), Some(chunk), Some(content), Some(pipeline)) = (
                    row.first().and_then(|v| v.as_str()),
                    row.get(1).and_then(|v| v.as_int()),
                    row.get(2).and_then(|v| v.as_int()),
                    row.get(3).and_then(|v| v.as_str()),
                    row.get(4).and_then(|v| v.as_list()),
                ) else {
                    return;
                };
                self.chunks.insert(chunk, Arc::from(content));
                self.writes += 1;
                let me = ctx.me().to_string();
                // Immediate incremental block report (HDFS's blockReceived):
                // the NameNode learns replica locations at write time rather
                // than on the next full heartbeat.
                let now = ctx.now() as i64;
                for nn in self.cfg.namenodes.clone() {
                    ctx.send(
                        &nn,
                        proto::HB_CHUNK_REPORT,
                        Arc::new(vec![
                            Value::addr(&me),
                            Value::Int(chunk),
                            Value::Int(content.len() as i64),
                            Value::Int(now),
                        ]),
                    );
                }
                ctx.send(
                    src,
                    proto::DN_ACK,
                    Arc::new(vec![Value::addr(src), Value::Int(req), Value::addr(&me)]),
                );
                // Pipelined replication: forward to the next node.
                if let Some(next) = pipeline.first().and_then(|v| v.as_str()) {
                    let rest: Vec<Value> = pipeline[1..].to_vec();
                    let next = next.to_string();
                    ctx.send(
                        &next,
                        proto::DN_WRITE,
                        Arc::new(vec![
                            Value::addr(src),
                            Value::Int(req),
                            Value::Int(chunk),
                            Value::str(content),
                            Value::list(rest),
                        ]),
                    );
                }
            }
            proto::DN_READ => {
                // (Src, ReqId, ChunkId)
                let row = &tuple.row;
                let (Some(src), Some(req), Some(chunk)) = (
                    row.first().and_then(|v| v.as_str()),
                    row.get(1).and_then(|v| v.as_int()),
                    row.get(2).and_then(|v| v.as_int()),
                ) else {
                    return;
                };
                match self.chunks.get(&chunk) {
                    Some(content) => {
                        self.reads += 1;
                        ctx.send(
                            src,
                            proto::DN_DATA,
                            Arc::new(vec![
                                Value::addr(src),
                                Value::Int(req),
                                Value::Int(chunk),
                                Value::Str(content.clone()),
                            ]),
                        );
                    }
                    None => {
                        ctx.send(
                            src,
                            proto::DN_ERR,
                            Arc::new(vec![Value::addr(src), Value::Int(req), Value::Int(chunk)]),
                        );
                    }
                }
            }
            proto::DN_COPY => {
                // (Holder, ChunkId, Target) — replicate chunk to target.
                let row = &tuple.row;
                let (Some(chunk), Some(target)) = (
                    row.get(1).and_then(|v| v.as_int()),
                    row.get(2).and_then(|v| v.as_str()),
                ) else {
                    return;
                };
                if let Some(content) = self.chunks.get(&chunk) {
                    let me = ctx.me().to_string();
                    let target = target.to_string();
                    let content = content.clone();
                    ctx.send(
                        &target,
                        proto::DN_WRITE,
                        Arc::new(vec![
                            Value::addr(&me), // acks come back to us; ignored
                            Value::Int(0),
                            Value::Int(chunk),
                            Value::Str(content),
                            Value::list(vec![]),
                        ]),
                    );
                }
            }
            proto::DN_DELETE => {
                // (Holder, ChunkId) — garbage collection after rm.
                if let Some(chunk) = tuple.row.get(1).and_then(|v| v.as_int()) {
                    self.chunks.remove(&chunk);
                }
            }
            // Acks from dn_copy-initiated writes land here; nothing to do.
            proto::DN_ACK => {}
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boom_simnet::{Sim, SimConfig};

    struct Sink {
        rows: Vec<NetTuple>,
    }
    impl Actor for Sink {
        fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, t: NetTuple) {
            self.rows.push(t);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn write_row(
        src: &str,
        req: i64,
        chunk: i64,
        content: &str,
        pipeline: Vec<&str>,
    ) -> boom_overlog::Row {
        Arc::new(vec![
            Value::addr(src),
            Value::Int(req),
            Value::Int(chunk),
            Value::str(content),
            Value::list(pipeline.into_iter().map(Value::addr).collect()),
        ])
    }

    #[test]
    fn write_pipeline_replicates_and_acks() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("d1", Box::new(DataNode::new(DataNodeConfig::default())));
        sim.add_node("d2", Box::new(DataNode::new(DataNodeConfig::default())));
        sim.add_node("c", Box::new(Sink { rows: vec![] }));
        sim.inject(
            "d1",
            proto::DN_WRITE,
            write_row("c", 1, 7, "hello", vec!["d2"]),
        );
        sim.run_for(1_000);
        let acks = sim.with_actor::<Sink, _>("c", |s| {
            s.rows.iter().filter(|t| t.table == proto::DN_ACK).count()
        });
        assert_eq!(acks, 2, "one ack per replica");
        sim.with_actor::<DataNode, _>("d2", |d| assert!(d.has_chunk(7)));
    }

    #[test]
    fn read_returns_data_or_error() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("d1", Box::new(DataNode::new(DataNodeConfig::default())));
        sim.add_node("c", Box::new(Sink { rows: vec![] }));
        sim.inject("d1", proto::DN_WRITE, write_row("c", 1, 7, "hello", vec![]));
        sim.run_for(100);
        sim.inject(
            "d1",
            proto::DN_READ,
            Arc::new(vec![Value::addr("c"), Value::Int(2), Value::Int(7)]),
        );
        sim.inject(
            "d1",
            proto::DN_READ,
            Arc::new(vec![Value::addr("c"), Value::Int(3), Value::Int(99)]),
        );
        sim.run_for(1_000);
        sim.with_actor::<Sink, _>("c", |s| {
            assert!(s
                .rows
                .iter()
                .any(|t| t.table == proto::DN_DATA && t.row[3] == Value::str("hello")));
            assert!(s.rows.iter().any(|t| t.table == proto::DN_ERR));
        });
    }

    #[test]
    fn heartbeats_report_chunks() {
        let mut sim = Sim::new(SimConfig::default());
        let cfg = DataNodeConfig {
            namenodes: vec!["nn".into()],
            hb_interval: 500,
        };
        sim.add_node("d1", Box::new(DataNode::new(cfg)));
        sim.add_node("nn", Box::new(Sink { rows: vec![] }));
        sim.inject("d1", proto::DN_WRITE, write_row("x", 1, 42, "data", vec![]));
        sim.run_for(1_200);
        sim.with_actor::<Sink, _>("nn", |s| {
            assert!(s.rows.iter().any(|t| t.table == proto::HB_REPORT));
            assert!(s
                .rows
                .iter()
                .any(|t| t.table == proto::HB_CHUNK_REPORT && t.row[1] == Value::Int(42)));
        });
    }

    #[test]
    fn copy_replicates_to_target() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("d1", Box::new(DataNode::new(DataNodeConfig::default())));
        sim.add_node("d2", Box::new(DataNode::new(DataNodeConfig::default())));
        sim.inject(
            "d1",
            proto::DN_WRITE,
            write_row("x", 1, 5, "payload", vec![]),
        );
        sim.run_for(100);
        sim.inject(
            "d1",
            proto::DN_COPY,
            Arc::new(vec![Value::addr("d1"), Value::Int(5), Value::addr("d2")]),
        );
        sim.run_for(1_000);
        sim.with_actor::<DataNode, _>("d2", |d| assert!(d.has_chunk(5)));
    }

    #[test]
    fn chunks_survive_restart() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("d1", Box::new(DataNode::new(DataNodeConfig::default())));
        sim.inject(
            "d1",
            proto::DN_WRITE,
            write_row("x", 1, 5, "persist", vec![]),
        );
        sim.run_for(100);
        sim.schedule_crash("d1", sim.now() + 10);
        sim.schedule_restart("d1", sim.now() + 200);
        sim.run_for(1_000);
        sim.with_actor::<DataNode, _>("d1", |d| assert!(d.has_chunk(5)));
    }
}
