//! Convenience builder assembling a complete BOOM-FS cluster inside the
//! simulator: NameNode(s) (declarative, baseline, or partitioned),
//! DataNodes, and a client node.

use crate::baseline::{BaselineConfig, BaselineNameNode};
use crate::client::{ClientActor, FsClient, FsConfig, NameNodeMode, RetryPolicy};
use crate::datanode::{DataNode, DataNodeConfig};
use crate::namenode::{namenode_actor, NameNodeConfig};
use boom_simnet::{Sim, SimConfig};

/// Which control plane to deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlPlane {
    /// The Overlog NameNode (BOOM-FS proper).
    Declarative,
    /// The imperative Rust NameNode (stock-HDFS stand-in).
    Baseline,
}

/// Cluster recipe.
#[derive(Debug, Clone)]
pub struct FsClusterBuilder {
    /// Simulator settings.
    pub sim: SimConfig,
    /// Control-plane implementation.
    pub control: ControlPlane,
    /// Number of NameNode partitions (1 = single NameNode).
    pub partitions: usize,
    /// Number of DataNodes.
    pub datanodes: usize,
    /// Chunk replication factor.
    pub replication: usize,
    /// DataNode heartbeat interval (ms).
    pub hb_interval: u64,
    /// NameNode heartbeat timeout (ms).
    pub hb_timeout: u64,
    /// Client chunk size (bytes).
    pub chunk_size: usize,
}

impl Default for FsClusterBuilder {
    fn default() -> Self {
        FsClusterBuilder {
            sim: SimConfig::default(),
            control: ControlPlane::Declarative,
            partitions: 1,
            datanodes: 3,
            replication: 2,
            hb_interval: 3_000,
            hb_timeout: 15_000,
            chunk_size: 4096,
        }
    }
}

/// A running cluster plus its client driver.
pub struct FsCluster {
    /// The simulator.
    pub sim: Sim,
    /// A client driver bound to node `"client0"`.
    pub client: FsClient,
    /// NameNode node names.
    pub namenodes: Vec<String>,
    /// DataNode node names.
    pub datanodes: Vec<String>,
}

/// NameNode node name for partition `i`.
pub fn nn_name(i: usize) -> String {
    format!("nn{i}")
}

/// DataNode node name `i`.
pub fn dn_name(i: usize) -> String {
    format!("dn{i}")
}

impl FsClusterBuilder {
    /// Build the cluster and let heartbeats register the DataNodes.
    pub fn build(&self) -> FsCluster {
        let mut sim = Sim::new(self.sim.clone());
        let namenodes: Vec<String> = (0..self.partitions.max(1)).map(nn_name).collect();
        let datanodes: Vec<String> = (0..self.datanodes).map(dn_name).collect();

        for (i, nn) in namenodes.iter().enumerate() {
            match self.control {
                ControlPlane::Declarative => {
                    let cfg = NameNodeConfig {
                        replication: self.replication as i64,
                        hb_timeout: self.hb_timeout,
                        id_stride: namenodes.len() as i64,
                        id_offset: i as i64,
                    };
                    sim.add_node(nn, Box::new(namenode_actor(nn, cfg)));
                }
                ControlPlane::Baseline => {
                    let cfg = BaselineConfig {
                        replication: self.replication,
                        hb_timeout: self.hb_timeout,
                        failcheck_interval: 2_000,
                    };
                    sim.add_node(nn, Box::new(BaselineNameNode::new(cfg)));
                }
            }
        }
        for dn in &datanodes {
            sim.add_node(
                dn,
                Box::new(DataNode::new(DataNodeConfig {
                    namenodes: namenodes.clone(),
                    hb_interval: self.hb_interval,
                })),
            );
        }
        sim.add_node("client0", Box::new(ClientActor::new()));

        // Let first heartbeats land so placement has live nodes.
        sim.run_for(self.hb_interval.min(500) + 200);

        let mode = if namenodes.len() > 1 {
            NameNodeMode::Partitioned
        } else {
            NameNodeMode::Single
        };
        let client = FsClient::new(
            "client0",
            FsConfig {
                namenodes: namenodes.clone(),
                mode,
                chunk_size: self.chunk_size,
                rpc_timeout: 10_000,
                write_acks: 1,
                retry: RetryPolicy::default(),
            },
        );
        FsCluster {
            sim,
            client,
            namenodes,
            datanodes,
        }
    }
}
