//! Construction of the declarative (Overlog) NameNode.

use boom_overlog::{OverlogError, OverlogRuntime, Value};
use boom_simnet::OverlogActor;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// The NameNode's Overlog program (embedded source, like JOL's `.olg`
/// files on the classpath).
pub const NAMENODE_OLG: &str = include_str!("olg/namenode.olg");

/// The NameNode's base (stored, non-derived) tables — what a durable
/// deployment persists and a snapshot transfer ships. Views (`fqpath`,
/// `chunk_locs`, `live_nodes`, …) are recomputed from these on restore.
pub const NAMENODE_BASE_TABLES: &[&str] = &[
    "file",
    "fchunk",
    "datanode",
    "dn_hb",
    "hb_chunk",
    "hb_chunk_t",
    "repfactor",
    "hb_timeout",
];

/// Options for a NameNode instance.
#[derive(Debug, Clone)]
pub struct NameNodeConfig {
    /// Replication factor for new chunks.
    pub replication: i64,
    /// Heartbeat timeout (ms) before a DataNode is declared dead.
    pub hb_timeout: u64,
    /// Id-allocation stride: with `p` partitioned NameNodes, each uses
    /// stride `p` and a distinct offset so ids never collide.
    pub id_stride: i64,
    /// Id-allocation offset (the partition index).
    pub id_offset: i64,
}

impl Default for NameNodeConfig {
    fn default() -> Self {
        NameNodeConfig {
            replication: 3,
            hb_timeout: 15_000,
            id_stride: 1,
            id_offset: 0,
        }
    }
}

/// Build a NameNode runtime: loads the Overlog program and registers the
/// `newid()` builtin (the counterpart of BOOM-FS's small Java helper for id
/// allocation).
pub fn namenode_runtime(addr: &str, cfg: &NameNodeConfig) -> OverlogRuntime {
    let mut rt = OverlogRuntime::new(addr);
    // Ids 0 (root parent sentinel) and 1 (root) are reserved; allocation
    // starts at 2+offset and steps by the stride.
    let counter = Arc::new(AtomicI64::new(0));
    let (stride, offset) = (cfg.id_stride.max(1), cfg.id_offset);
    rt.register_builtin("newid", move |args| {
        if !args.is_empty() {
            return Err(OverlogError::Eval("newid takes no arguments".into()));
        }
        let n = counter.fetch_add(1, Ordering::Relaxed);
        Ok(Value::Int(2 + offset + n * stride))
    });
    rt.load(NAMENODE_OLG)
        .expect("embedded namenode.olg must compile");
    // Override tunables: delete the default facts, insert configured ones.
    rt.delete("repfactor", Arc::new(vec![Value::Int(3)]))
        .expect("repfactor is declared");
    rt.insert("repfactor", Arc::new(vec![Value::Int(cfg.replication)]))
        .expect("repfactor row is well-typed");
    rt.delete("hb_timeout", Arc::new(vec![Value::Int(15_000)]))
        .expect("hb_timeout is declared");
    rt.insert(
        "hb_timeout",
        Arc::new(vec![Value::Int(cfg.hb_timeout as i64)]),
    )
    .expect("hb_timeout row is well-typed");
    rt
}

/// Build the NameNode as a simulator actor. A crash-restart rebuilds the
/// runtime from scratch — all metadata is volatile, which is precisely the
/// availability problem the paper's Paxos revision addresses.
pub fn namenode_actor(addr: &str, cfg: NameNodeConfig) -> OverlogActor {
    OverlogActor::with_factory(Box::new(move |name| namenode_runtime(name, &cfg)), 25, addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boom_overlog::source_stats;

    #[test]
    fn namenode_program_loads() {
        let rt = namenode_runtime("nn", &NameNodeConfig::default());
        assert!(rt.rule_count() > 30, "got {} rules", rt.rule_count());
        assert_eq!(rt.count("file"), 0, "facts apply on first tick");
    }

    #[test]
    fn root_exists_after_first_tick() {
        let mut rt = namenode_runtime("nn", &NameNodeConfig::default());
        rt.settle(0).unwrap();
        assert_eq!(rt.count("file"), 1);
        let fq = rt.rows("fqpath");
        assert_eq!(fq.len(), 1);
        assert_eq!(fq[0][0], Value::str("/"));
    }

    #[test]
    fn newid_respects_stride_and_offset() {
        let cfg = NameNodeConfig {
            id_stride: 4,
            id_offset: 1,
            ..Default::default()
        };
        let rt = namenode_runtime("nn", &cfg);
        // Reach the builtin through a tiny program instead of poking
        // internals.
        let mut rt = rt;
        rt.load(
            "event go, {Int};
             define(ids, keys(0), {Int});
             ids(I) :- go(_), I := newid();",
        )
        .unwrap();
        rt.insert("go", Arc::new(vec![Value::Int(0)])).unwrap();
        rt.settle(0).unwrap();
        let ids = rt.rows("ids");
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0][0], Value::Int(3)); // 2 + offset 1 + 0*4
    }

    #[test]
    fn program_source_stats_are_paper_scale() {
        let (rules, lines) = source_stats(NAMENODE_OLG);
        // The paper reports ~85 rules / 469 lines for all of BOOM-FS; the
        // core NameNode program here is the same order of magnitude.
        assert!(rules >= 30, "rules = {rules}");
        assert!(lines >= 60, "lines = {lines}");
    }
}
