//! # boom-fs — BOOM-FS, the declarative HDFS
//!
//! An API-equivalent reimplementation of the paper's BOOM-FS: the entire
//! NameNode metadata plane is an Overlog program
//! ([`namenode::NAMENODE_OLG`], see `src/olg/namenode.olg`) executed by
//! `boom-overlog`; the data plane ([`datanode::DataNode`]) and client
//! library ([`client::FsClient`]) are ordinary Rust, mirroring the paper's
//! Java data plane.
//!
//! Also included, for the paper's evaluation matrix:
//!
//! * [`baseline::BaselineNameNode`] — an imperative NameNode with the same
//!   wire protocol (the stock-HDFS stand-in),
//! * partitioned deployment (the scalability revision) via
//!   [`cluster::FsClusterBuilder`] with `partitions > 1`,
//! * Paxos-replicated deployment (the availability revision) lives in
//!   `boom-paxos`/`boom-core`, reusing this crate's NameNode program.
//!
//! ```no_run
//! use boom_fs::cluster::FsClusterBuilder;
//!
//! let mut cluster = FsClusterBuilder::default().build();
//! let client = cluster.client.clone();
//! client.mkdir(&mut cluster.sim, "/data").unwrap();
//! client.write_file(&mut cluster.sim, "/data/f", "hello BOOM").unwrap();
//! assert_eq!(client.read_file(&mut cluster.sim, "/data/f").unwrap(), "hello BOOM");
//! ```

pub mod baseline;
pub mod client;
pub mod cluster;
pub mod datanode;
pub mod namenode;
pub mod proto;

pub use baseline::{BaselineConfig, BaselineNameNode};
pub use client::{ClientActor, FsClient, FsConfig, FsError, NameNodeMode};
pub use cluster::{ControlPlane, FsCluster, FsClusterBuilder};
pub use datanode::{DataNode, DataNodeConfig};
pub use namenode::{
    namenode_actor, namenode_runtime, NameNodeConfig, NAMENODE_BASE_TABLES, NAMENODE_OLG,
};
