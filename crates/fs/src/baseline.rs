//! The imperative baseline NameNode.
//!
//! Functionally equivalent to the Overlog NameNode and speaking the exact
//! same tuple protocol, but written in conventional imperative style with
//! hash maps — the stand-in for stock HDFS in the paper's "Hadoop vs BOOM"
//! comparisons. Running both through the identical simulator, DataNodes,
//! and clients isolates the declarative-vs-imperative control-plane
//! difference.

use crate::proto;
use boom_overlog::{NetTuple, Value};
use boom_simnet::{Actor, Ctx};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Baseline NameNode configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Replication factor for new chunks.
    pub replication: usize,
    /// Heartbeat timeout before declaring a DataNode dead (ms).
    pub hb_timeout: u64,
    /// Failure-detector sweep interval (ms).
    pub failcheck_interval: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            replication: 3,
            hb_timeout: 15_000,
            failcheck_interval: 2_000,
        }
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    parent: i64,
    name: String,
    is_dir: bool,
}

/// The imperative NameNode actor. All metadata is volatile: a restart
/// loses the namespace, exactly like the Overlog NameNode without Paxos.
pub struct BaselineNameNode {
    cfg: BaselineConfig,
    next_id: i64,
    files: HashMap<i64, FileMeta>,
    by_path: HashMap<String, i64>,
    children: HashMap<i64, BTreeSet<String>>,
    fchunks: HashMap<i64, Vec<i64>>, // fileid -> ordered chunk ids
    chunk_file: HashMap<i64, i64>,
    datanodes: BTreeMap<String, u64>, // node -> last hb
    chunk_locs: HashMap<i64, BTreeMap<String, u64>>, // chunk -> node -> last report
    /// Served request count (instrumentation).
    pub requests_served: u64,
}

impl BaselineNameNode {
    /// Fresh baseline NameNode.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut nn = BaselineNameNode {
            cfg,
            next_id: 2,
            files: HashMap::new(),
            by_path: HashMap::new(),
            children: HashMap::new(),
            fchunks: HashMap::new(),
            chunk_file: HashMap::new(),
            datanodes: BTreeMap::new(),
            chunk_locs: HashMap::new(),
            requests_served: 0,
        };
        nn.reset();
        nn
    }

    fn reset(&mut self) {
        self.next_id = 2;
        self.files.clear();
        self.by_path.clear();
        self.children.clear();
        self.fchunks.clear();
        self.chunk_file.clear();
        self.datanodes.clear();
        self.chunk_locs.clear();
        self.files.insert(
            1,
            FileMeta {
                parent: 0,
                name: String::new(),
                is_dir: true,
            },
        );
        self.by_path.insert("/".to_string(), 1);
    }

    fn dirname(path: &str) -> &str {
        match path.rfind('/') {
            Some(0) | None => "/",
            Some(i) => &path[..i],
        }
    }

    fn basename(path: &str) -> &str {
        match path.rfind('/') {
            Some(i) => &path[i + 1..],
            None => path,
        }
    }

    fn add_entry(&mut self, path: &str, is_dir: bool) -> Result<(), &'static str> {
        if self.by_path.contains_key(path) {
            return Err("exists");
        }
        let parent_path = Self::dirname(path);
        let Some(&parent) = self.by_path.get(parent_path) else {
            return Err("noparent");
        };
        if !self.files[&parent].is_dir {
            return Err("noparent");
        }
        let id = self.next_id;
        self.next_id += 1;
        let name = Self::basename(path).to_string();
        self.files.insert(
            id,
            FileMeta {
                parent,
                name: name.clone(),
                is_dir,
            },
        );
        self.by_path.insert(path.to_string(), id);
        self.children.entry(parent).or_default().insert(name);
        Ok(())
    }

    fn respond(&self, ctx: &mut Ctx<'_>, src: &str, req: i64, ok: bool, payload: Value) {
        ctx.send(
            src,
            proto::RESPONSE,
            proto::response_row(src, req, ok, payload),
        );
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, row: &boom_overlog::Row) {
        let Some((src, req, cmd, args)) = proto::parse_request(row) else {
            return;
        };
        self.requests_served += 1;
        let path_arg = args.first().and_then(|v| v.as_str()).map(str::to_string);
        match cmd.as_str() {
            "mkdir" | "create" => {
                let Some(path) = path_arg else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                match self.add_entry(&path, cmd == "mkdir") {
                    Ok(()) => self.respond(ctx, &src, req, true, Value::str(&path)),
                    Err(e) => self.respond(ctx, &src, req, false, Value::str(e)),
                }
            }
            "exists" => {
                let Some(path) = path_arg else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                match self.by_path.get(&path) {
                    Some(&id) => self.respond(ctx, &src, req, true, Value::Int(id)),
                    None => self.respond(ctx, &src, req, false, Value::Null),
                }
            }
            "ls" => {
                let Some(path) = path_arg else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                match self.by_path.get(&path) {
                    Some(&id) if self.files[&id].is_dir => {
                        let names: Vec<Value> = self
                            .children
                            .get(&id)
                            .map(|c| c.iter().map(Value::str).collect())
                            .unwrap_or_default();
                        self.respond(ctx, &src, req, true, Value::list(names));
                    }
                    Some(_) => self.respond(ctx, &src, req, false, Value::str("notdir")),
                    None => self.respond(ctx, &src, req, false, Value::str("notfound")),
                }
            }
            "rm" => {
                let Some(path) = path_arg else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                let Some(&id) = self.by_path.get(&path) else {
                    return self.respond(ctx, &src, req, false, Value::str("notfound"));
                };
                if id == 1 {
                    return self.respond(ctx, &src, req, false, Value::str("notempty"));
                }
                if self
                    .children
                    .get(&id)
                    .map(|c| !c.is_empty())
                    .unwrap_or(false)
                {
                    return self.respond(ctx, &src, req, false, Value::str("notempty"));
                }
                let meta = self.files.remove(&id).expect("indexed by by_path");
                self.by_path.remove(&path);
                if let Some(siblings) = self.children.get_mut(&meta.parent) {
                    siblings.remove(&meta.name);
                }
                for chunk in self.fchunks.remove(&id).unwrap_or_default() {
                    self.chunk_file.remove(&chunk);
                }
                self.respond(ctx, &src, req, true, Value::str(&path));
            }
            "rename" => {
                let (Some(old), Some(new)) = (
                    args.first().and_then(|v| v.as_str()).map(str::to_string),
                    args.get(1).and_then(|v| v.as_str()).map(str::to_string),
                ) else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                let Some(&id) = self.by_path.get(&old) else {
                    return self.respond(ctx, &src, req, false, Value::str("notfound"));
                };
                if id == 1 {
                    return self.respond(ctx, &src, req, false, Value::str("notfound"));
                }
                if self.by_path.contains_key(&new) {
                    return self.respond(ctx, &src, req, false, Value::str("exists"));
                }
                if new.starts_with(&format!("{old}/")) {
                    return self.respond(ctx, &src, req, false, Value::str("intoself"));
                }
                let parent_path = Self::dirname(&new);
                let Some(&np) = self.by_path.get(parent_path) else {
                    return self.respond(ctx, &src, req, false, Value::str("noparent"));
                };
                if !self.files[&np].is_dir {
                    return self.respond(ctx, &src, req, false, Value::str("noparent"));
                }
                // Re-link the node; recompute the path index for the moved
                // subtree (the imperative chore the Overlog version gets
                // for free from view maintenance).
                let meta = self.files.get_mut(&id).expect("indexed by by_path");
                let old_parent = meta.parent;
                let old_name = meta.name.clone();
                meta.parent = np;
                meta.name = Self::basename(&new).to_string();
                let new_name = meta.name.clone();
                if let Some(sib) = self.children.get_mut(&old_parent) {
                    sib.remove(&old_name);
                }
                self.children.entry(np).or_default().insert(new_name);
                let moved: Vec<(String, i64)> = self
                    .by_path
                    .iter()
                    .filter(|(p, _)| **p == old || p.starts_with(&format!("{old}/")))
                    .map(|(p, i)| (p.clone(), *i))
                    .collect();
                for (p, i) in moved {
                    self.by_path.remove(&p);
                    let suffix = &p[old.len()..];
                    self.by_path.insert(format!("{new}{suffix}"), i);
                }
                self.respond(ctx, &src, req, true, Value::str(&new));
            }
            "newchunk" => {
                let Some(path) = path_arg else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                let Some(&id) = self.by_path.get(&path) else {
                    return self.respond(ctx, &src, req, false, Value::str("nofile"));
                };
                if self.files[&id].is_dir {
                    return self.respond(ctx, &src, req, false, Value::str("nofile"));
                }
                if self.datanodes.is_empty() {
                    return self.respond(ctx, &src, req, false, Value::str("nonodes"));
                }
                let chunk = self.next_id;
                self.next_id += 1;
                self.fchunks.entry(id).or_default().push(chunk);
                self.chunk_file.insert(chunk, id);
                // Same deterministic placement policy as the Overlog rules.
                let live: Vec<Value> = self.datanodes.keys().map(Value::addr).collect();
                let picked = boom_overlog::Builtins::standard()
                    .call(
                        "pick",
                        &[
                            Value::list(live),
                            Value::Int(self.cfg.replication as i64),
                            Value::Int(chunk),
                        ],
                    )
                    .expect("pick on a non-empty list");
                let mut out = vec![Value::Int(chunk)];
                if let Some(nodes) = picked.as_list() {
                    out.extend(nodes.iter().cloned());
                }
                self.respond(ctx, &src, req, true, Value::list(out));
            }
            "chunks" => {
                let Some(path) = path_arg else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                let Some(&id) = self.by_path.get(&path) else {
                    return self.respond(ctx, &src, req, false, Value::str("notfound"));
                };
                let chunks: Vec<Value> = self
                    .fchunks
                    .get(&id)
                    .map(|c| c.iter().map(|&x| Value::Int(x)).collect())
                    .unwrap_or_default();
                self.respond(ctx, &src, req, true, Value::list(chunks));
            }
            "locations" => {
                let Some(chunk) = args.first().and_then(|v| v.as_int()) else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                match self.chunk_locs.get(&chunk) {
                    Some(locs) if !locs.is_empty() => {
                        let nodes: Vec<Value> = locs.keys().map(Value::addr).collect();
                        self.respond(ctx, &src, req, true, Value::list(nodes));
                    }
                    _ => self.respond(ctx, &src, req, false, Value::str("nolocations")),
                }
            }
            "abandon" => {
                let Some(chunk) = args.first().and_then(|v| v.as_int()) else {
                    return self.respond(ctx, &src, req, false, Value::str("badargs"));
                };
                if let Some(fid) = self.chunk_file.remove(&chunk) {
                    if let Some(list) = self.fchunks.get_mut(&fid) {
                        list.retain(|&c| c != chunk);
                    }
                }
                self.respond(ctx, &src, req, true, Value::Int(chunk));
            }
            _ => self.respond(ctx, &src, req, false, Value::str("badcmd")),
        }
    }

    fn sweep_failures(&mut self, now: u64) {
        let timeout = self.cfg.hb_timeout;
        let dead: Vec<String> = self
            .datanodes
            .iter()
            .filter(|(_, &last)| now.saturating_sub(last) > timeout)
            .map(|(n, _)| n.clone())
            .collect();
        for node in dead {
            self.datanodes.remove(&node);
            for locs in self.chunk_locs.values_mut() {
                locs.remove(&node);
            }
        }
        for locs in self.chunk_locs.values_mut() {
            locs.retain(|_, &mut last| now.saturating_sub(last) <= timeout);
        }
        self.chunk_locs.retain(|_, locs| !locs.is_empty());
    }
}

impl Actor for BaselineNameNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.failcheck_interval, 0);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // Volatile metadata: a restart loses the namespace, like stock HDFS
        // without a secondary NameNode image.
        self.reset();
        ctx.set_timer(self.cfg.failcheck_interval, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        self.sweep_failures(ctx.now());
        // Garbage-collect replicas of chunks no file owns.
        let orphans: Vec<(i64, Vec<String>)> = self
            .chunk_locs
            .iter()
            .filter(|(c, _)| !self.chunk_file.contains_key(c))
            .map(|(c, locs)| (*c, locs.keys().cloned().collect()))
            .collect();
        for (chunk, holders) in orphans {
            for dn in holders {
                ctx.send(
                    &dn,
                    proto::DN_DELETE,
                    Arc::new(vec![Value::addr(&dn), Value::Int(chunk)]),
                );
            }
        }
        ctx.set_timer(self.cfg.failcheck_interval, 0);
    }

    fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple) {
        match tuple.table.as_str() {
            proto::REQUEST => self.handle_request(ctx, &tuple.row),
            proto::HB_REPORT => {
                let row = &tuple.row;
                if let (Some(dn), Some(t)) = (
                    row.first().and_then(|v| v.as_str()),
                    row.get(1).and_then(|v| v.as_int()),
                ) {
                    self.datanodes.insert(dn.to_string(), t as u64);
                }
            }
            proto::HB_CHUNK_REPORT => {
                let row = &tuple.row;
                if let (Some(dn), Some(chunk), Some(t)) = (
                    row.first().and_then(|v| v.as_str()),
                    row.get(1).and_then(|v| v.as_int()),
                    row.get(3).and_then(|v| v.as_int()),
                ) {
                    self.chunk_locs
                        .entry(chunk)
                        .or_default()
                        .insert(dn.to_string(), t as u64);
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_helpers() {
        assert_eq!(BaselineNameNode::dirname("/a/b"), "/a");
        assert_eq!(BaselineNameNode::dirname("/a"), "/");
        assert_eq!(BaselineNameNode::basename("/a/b"), "b");
    }

    #[test]
    fn add_entry_validates() {
        let mut nn = BaselineNameNode::new(BaselineConfig::default());
        assert_eq!(nn.add_entry("/a", true), Ok(()));
        assert_eq!(nn.add_entry("/a", true), Err("exists"));
        assert_eq!(nn.add_entry("/x/y", false), Err("noparent"));
        assert_eq!(nn.add_entry("/a/f", false), Ok(()));
    }

    #[test]
    fn failure_sweep_expires_nodes_and_replicas() {
        let mut nn = BaselineNameNode::new(BaselineConfig {
            hb_timeout: 100,
            ..Default::default()
        });
        nn.datanodes.insert("d1".into(), 0);
        nn.chunk_locs.entry(7).or_default().insert("d1".into(), 0);
        nn.sweep_failures(50);
        assert_eq!(nn.datanodes.len(), 1);
        nn.sweep_failures(200);
        assert!(nn.datanodes.is_empty());
        assert!(nn.chunk_locs.is_empty());
    }
}
