//! The BOOM-FS wire protocol: table names and row layouts shared by the
//! Overlog NameNode, the imperative baseline NameNode, DataNodes, and
//! clients. Every message on the simulated network is a tuple into one of
//! these tables.

use boom_overlog::{Row, Value};
use std::sync::Arc;

/// Client → NameNode: `request(Src, ReqId, Cmd, Args)`.
pub const REQUEST: &str = "request";
/// NameNode → client: `response(Src, ReqId, Ok, Payload)`.
pub const RESPONSE: &str = "response";
/// DataNode → NameNode: `hb_report(DN, Time)`.
pub const HB_REPORT: &str = "hb_report";
/// DataNode → NameNode: `hb_chunk_report(DN, ChunkId, Len)`.
pub const HB_CHUNK_REPORT: &str = "hb_chunk_report";
/// Client → DataNode: `dn_write(Src, ReqId, ChunkId, Content, Pipeline)`.
pub const DN_WRITE: &str = "dn_write";
/// DataNode → client: `dn_ack(Src, ReqId, DN)`.
pub const DN_ACK: &str = "dn_ack";
/// Client → DataNode: `dn_read(Src, ReqId, ChunkId)`.
pub const DN_READ: &str = "dn_read";
/// DataNode → client: `dn_data(Src, ReqId, ChunkId, Content)`.
pub const DN_DATA: &str = "dn_data";
/// DataNode → client: `dn_err(Src, ReqId, ChunkId)`.
pub const DN_ERR: &str = "dn_err";
/// NameNode → DataNode: `dn_copy(Holder, ChunkId, Target)` (re-replication).
pub const DN_COPY: &str = "dn_copy";
/// NameNode → DataNode: `dn_delete(Holder, ChunkId)` (garbage collection).
pub const DN_DELETE: &str = "dn_delete";

/// Build a client request row.
pub fn request_row(src: &str, req_id: i64, cmd: &str, args: Vec<Value>) -> Row {
    Arc::new(vec![
        Value::addr(src),
        Value::Int(req_id),
        Value::str(cmd),
        Value::list(args),
    ])
}

/// Build a response row (used by the imperative baseline; the Overlog
/// NameNode derives responses from rules).
pub fn response_row(src: &str, req_id: i64, ok: bool, payload: Value) -> Row {
    Arc::new(vec![
        Value::addr(src),
        Value::Int(req_id),
        Value::Bool(ok),
        payload,
    ])
}

/// A parsed FS response.
#[derive(Debug, Clone, PartialEq)]
pub struct FsResponse {
    /// Success flag.
    pub ok: bool,
    /// Command-specific payload.
    pub payload: Value,
}

/// Parse a `response` row (None when malformed).
pub fn parse_response(row: &Row) -> Option<(i64, FsResponse)> {
    if row.len() != 4 {
        return None;
    }
    let req_id = row[1].as_int()?;
    let ok = matches!(row[2], Value::Bool(true));
    Some((
        req_id,
        FsResponse {
            ok,
            payload: row[3].clone(),
        },
    ))
}

/// Parse a `request` row: `(src, req_id, cmd, args)`.
pub fn parse_request(row: &Row) -> Option<(String, i64, String, Vec<Value>)> {
    if row.len() != 4 {
        return None;
    }
    Some((
        row[0].as_str()?.to_string(),
        row[1].as_int()?,
        row[2].as_str()?.to_string(),
        row[3].as_list()?.to_vec(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let r = request_row("c1", 9, "mkdir", vec![Value::str("/a")]);
        let (src, id, cmd, args) = parse_request(&r).unwrap();
        assert_eq!(src, "c1");
        assert_eq!(id, 9);
        assert_eq!(cmd, "mkdir");
        assert_eq!(args, vec![Value::str("/a")]);
    }

    #[test]
    fn response_round_trip() {
        let r = response_row("c1", 9, true, Value::Int(5));
        let (id, resp) = parse_response(&r).unwrap();
        assert_eq!(id, 9);
        assert!(resp.ok);
        assert_eq!(resp.payload, Value::Int(5));
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(parse_response(&Arc::new(vec![Value::Int(1)])).is_none());
        assert!(parse_request(&Arc::new(vec![Value::Int(1)])).is_none());
    }
}
