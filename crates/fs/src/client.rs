//! BOOM-FS client: a response-collecting actor plus a synchronous driver
//! that issues metadata RPCs and chunk I/O against the simulated cluster.
//!
//! The driver understands all three NameNode deployments from the paper:
//! a single NameNode, the hash-partitioned revision (route file ops by
//! path, broadcast directory ops), and the Paxos-replicated revision
//! (retry against every replica until the current leader answers).

use crate::proto::{self, FsResponse};
use boom_overlog::{stable_hash, NetTuple, Value};
use boom_simnet::{Actor, Ctx, Sim};
use std::any::Any;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No response within the RPC timeout (node down or partitioned).
    Timeout(String),
    /// The NameNode answered with a failure payload.
    Failed(String),
    /// A chunk could not be read from any replica.
    ChunkUnavailable(i64),
    /// The response payload had an unexpected shape.
    BadPayload(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Timeout(op) => write!(f, "timeout waiting for {op}"),
            FsError::Failed(why) => write!(f, "operation failed: {why}"),
            FsError::ChunkUnavailable(c) => write!(f, "chunk {c} unavailable on all replicas"),
            FsError::BadPayload(what) => write!(f, "malformed payload in {what}"),
        }
    }
}

impl std::error::Error for FsError {}

/// How the client reaches NameNode(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameNodeMode {
    /// One NameNode.
    Single,
    /// Hash-partitioned namespace: file ops routed by path, directory ops
    /// broadcast (the paper's scalability revision).
    Partitioned,
    /// Paxos-replicated group: try replicas until the leader answers (the
    /// paper's availability revision).
    Replicated,
}

/// Retry discipline for client operations: exponential backoff with
/// deterministic jitter (drawn from the simulation RNG, so retry traces
/// replay from the seed).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per logical operation (per replica round in
    /// Replicated mode). At least 1.
    pub max_attempts: usize,
    /// Backoff before the first retry (ms); doubles each retry.
    pub base_backoff: u64,
    /// Backoff ceiling (ms).
    pub max_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 200,
            max_backoff: 5_000,
        }
    }
}

impl RetryPolicy {
    /// Sleep length before retry number `attempt` (1-based): exponential
    /// growth capped at `max_backoff`, with the upper half jittered to
    /// decorrelate clients that failed together.
    pub fn backoff(&self, sim: &mut Sim, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        let ceil = self
            .base_backoff
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff)
            .max(1);
        ceil / 2 + sim.rand_jitter(ceil.div_ceil(2))
    }
}

/// Client-side filesystem configuration.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// NameNode node names.
    pub namenodes: Vec<String>,
    /// Deployment mode.
    pub mode: NameNodeMode,
    /// Bytes per chunk when writing.
    pub chunk_size: usize,
    /// Per-RPC timeout in virtual ms.
    pub rpc_timeout: u64,
    /// Write acknowledgements to wait for (capped by the actual replica
    /// count the NameNode returns).
    pub write_acks: usize,
    /// Retry discipline for timeouts and transient failures.
    pub retry: RetryPolicy,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            namenodes: vec!["nn".to_string()],
            mode: NameNodeMode::Single,
            chunk_size: 4096,
            rpc_timeout: 10_000,
            write_acks: 1,
            retry: RetryPolicy::default(),
        }
    }
}

/// The actor living on a client node: correlates responses, chunk data and
/// write acks by request id.
#[derive(Default)]
pub struct ClientActor {
    next_req: i64,
    responses: HashMap<i64, FsResponse>,
    chunk_data: HashMap<i64, Option<String>>,
    acks: HashMap<i64, HashSet<String>>,
    /// Tuples for tables this actor does not interpret (e.g. MapReduce job
    /// notifications); higher-level drivers scan these.
    pub other: Vec<NetTuple>,
}

impl ClientActor {
    /// Fresh client actor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of responses received and not yet consumed (used by
    /// throughput harnesses that inject raw request batches).
    pub fn response_count(&self) -> usize {
        self.responses.len()
    }

    /// Drain all buffered responses as `(req_id, response)` pairs.
    pub fn drain_responses(&mut self) -> Vec<(i64, FsResponse)> {
        self.responses.drain().collect()
    }
}

impl Actor for ClientActor {
    fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, tuple: NetTuple) {
        match tuple.table.as_str() {
            proto::RESPONSE => {
                if let Some((req, resp)) = proto::parse_response(&tuple.row) {
                    // First response wins (replicas may answer duplicates).
                    self.responses.entry(req).or_insert(resp);
                }
            }
            proto::DN_DATA => {
                let row = &tuple.row;
                if let (Some(req), Some(content)) = (
                    row.get(1).and_then(|v| v.as_int()),
                    row.get(3).and_then(|v| v.as_str()),
                ) {
                    self.chunk_data
                        .entry(req)
                        .or_insert_with(|| Some(content.to_string()));
                }
            }
            proto::DN_ERR => {
                if let Some(req) = tuple.row.get(1).and_then(|v| v.as_int()) {
                    self.chunk_data.entry(req).or_insert(None);
                }
            }
            proto::DN_ACK => {
                let row = &tuple.row;
                if let (Some(req), Some(dn)) = (
                    row.get(1).and_then(|v| v.as_int()),
                    row.get(2).and_then(|v| v.as_str()),
                ) {
                    self.acks.entry(req).or_default().insert(dn.to_string());
                }
            }
            _ => self.other.push(tuple),
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Synchronous driver for one client node. Each call advances the
/// simulation until the operation completes or times out.
#[derive(Debug, Clone)]
pub struct FsClient {
    /// The simulator node hosting this client's [`ClientActor`].
    pub node: String,
    /// Routing configuration.
    pub cfg: FsConfig,
    /// Index of the replica that last answered (Replicated mode): retries
    /// start here and rotate, instead of re-probing dead replicas in a
    /// fixed order. Shared across clones so drivers holding copies of the
    /// client converge on the same leader.
    leader_hint: Arc<AtomicUsize>,
}

impl FsClient {
    /// Create a driver for `node` with the given configuration.
    pub fn new(node: &str, cfg: FsConfig) -> Self {
        FsClient {
            node: node.to_string(),
            cfg,
            leader_hint: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn fresh_req(&self, sim: &mut Sim) -> i64 {
        sim.with_actor::<ClientActor, _>(&self.node, |c| {
            c.next_req += 1;
            c.next_req
        })
    }

    /// Which partition owns a path (Partitioned mode).
    pub fn partition_for(&self, path: &str) -> usize {
        (stable_hash(&Value::str(path)) % self.cfg.namenodes.len() as u64) as usize
    }

    fn take_response(&self, sim: &mut Sim, req: i64) -> Option<FsResponse> {
        sim.with_actor::<ClientActor, _>(&self.node, |c| c.responses.remove(&req))
    }

    /// One metadata RPC against one NameNode.
    pub fn rpc_to(
        &self,
        sim: &mut Sim,
        nn: &str,
        cmd: &str,
        args: Vec<Value>,
    ) -> Result<FsResponse, FsError> {
        let req = self.fresh_req(sim);
        // Replicated NameNodes take requests through the consensus glue's
        // `fsreq` table; plain NameNodes react to `request` directly.
        let table = if self.cfg.mode == NameNodeMode::Replicated {
            "fsreq"
        } else {
            proto::REQUEST
        };
        sim.inject(nn, table, proto::request_row(&self.node, req, cmd, args));
        let deadline = sim.now() + self.cfg.rpc_timeout;
        let node = self.node.clone();
        let got = sim.run_while(deadline, |s| {
            s.with_actor::<ClientActor, _>(&node, |c| c.responses.contains_key(&req))
        });
        if !got {
            return Err(FsError::Timeout(format!("{cmd} @ {nn}")));
        }
        Ok(self
            .take_response(sim, req)
            .expect("run_while guaranteed presence"))
    }

    /// A metadata RPC routed according to the deployment mode. Timeouts
    /// are retried with exponential backoff and jitter up to the retry
    /// cap; real (non-timeout) errors surface immediately.
    pub fn rpc(
        &self,
        sim: &mut Sim,
        path: &str,
        cmd: &str,
        args: Vec<Value>,
    ) -> Result<FsResponse, FsError> {
        match self.cfg.mode {
            NameNodeMode::Single | NameNodeMode::Partitioned => {
                let nn = match self.cfg.mode {
                    NameNodeMode::Single => self.cfg.namenodes[0].clone(),
                    _ => self.cfg.namenodes[self.partition_for(path)].clone(),
                };
                let max = self.cfg.retry.max_attempts.max(1);
                let mut attempt = 0;
                loop {
                    match self.rpc_to(sim, &nn, cmd, args.clone()) {
                        Ok(resp) => return Ok(resp),
                        Err(e @ FsError::Timeout(_)) => {
                            attempt += 1;
                            if attempt >= max {
                                return Err(e);
                            }
                            let sleep = self.cfg.retry.backoff(sim, attempt as u32);
                            sim.run_for(sleep);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            NameNodeMode::Replicated => {
                // Rotate through the group starting at the last replica
                // known to answer (the leaseholder): followers stay silent
                // and dead nodes time out, so starting anywhere else just
                // burns timeouts. Total attempts are capped; the first
                // *real* error is preserved rather than each replica's
                // timeout overwriting it.
                let n = self.cfg.namenodes.len();
                let start = self.leader_hint.load(Ordering::Relaxed) % n.max(1);
                let total = self.cfg.retry.max_attempts.max(1) * n;
                let mut first_real: Option<FsError> = None;
                for attempt in 0..total {
                    let idx = (start + attempt) % n;
                    let nn = self.cfg.namenodes[idx].clone();
                    match self.rpc_to(sim, &nn, cmd, args.clone()) {
                        Ok(resp) => {
                            self.leader_hint.store(idx, Ordering::Relaxed);
                            return Ok(resp);
                        }
                        Err(FsError::Timeout(_)) => {}
                        Err(e) => {
                            if first_real.is_none() {
                                first_real = Some(e);
                            }
                        }
                    }
                    // Back off after each full rotation: the group may be
                    // mid-election, so hammering it helps nobody.
                    if (attempt + 1) % n == 0 && attempt + 1 < total {
                        let round = ((attempt + 1) / n) as u32;
                        let sleep = self.cfg.retry.backoff(sim, round);
                        sim.run_for(sleep);
                    }
                }
                Err(first_real.unwrap_or_else(|| FsError::Timeout(cmd.to_string())))
            }
        }
    }

    fn expect_ok(resp: FsResponse) -> Result<Value, FsError> {
        if resp.ok {
            Ok(resp.payload)
        } else {
            Err(FsError::Failed(
                resp.payload
                    .as_str()
                    .map(str::to_string)
                    .unwrap_or_else(|| resp.payload.to_string()),
            ))
        }
    }

    /// Create a directory. Broadcast to every partition in Partitioned
    /// mode (directories are replicated across partitions).
    pub fn mkdir(&self, sim: &mut Sim, path: &str) -> Result<(), FsError> {
        match self.cfg.mode {
            NameNodeMode::Partitioned => {
                for nn in self.cfg.namenodes.clone() {
                    Self::expect_ok(self.rpc_to(sim, &nn, "mkdir", vec![Value::str(path)])?)?;
                }
                Ok(())
            }
            _ => Self::expect_ok(self.rpc(sim, path, "mkdir", vec![Value::str(path)])?).map(|_| ()),
        }
    }

    /// Create an empty file.
    pub fn create(&self, sim: &mut Sim, path: &str) -> Result<(), FsError> {
        Self::expect_ok(self.rpc(sim, path, "create", vec![Value::str(path)])?).map(|_| ())
    }

    /// Does the path exist?
    pub fn exists(&self, sim: &mut Sim, path: &str) -> Result<bool, FsError> {
        Ok(self.rpc(sim, path, "exists", vec![Value::str(path)])?.ok)
    }

    /// List a directory. Merges listings across partitions.
    pub fn ls(&self, sim: &mut Sim, path: &str) -> Result<Vec<String>, FsError> {
        let targets: Vec<String> = match self.cfg.mode {
            NameNodeMode::Partitioned => self.cfg.namenodes.clone(),
            _ => vec![],
        };
        let mut names: BTreeSet<String> = BTreeSet::new();
        let mut any_ok = false;
        let mut last_err = String::new();
        let listings: Vec<Result<FsResponse, FsError>> = if targets.is_empty() {
            vec![self.rpc(sim, path, "ls", vec![Value::str(path)])]
        } else {
            targets
                .iter()
                .map(|nn| self.rpc_to(sim, nn, "ls", vec![Value::str(path)]))
                .collect()
        };
        for resp in listings {
            let resp = resp?;
            if resp.ok {
                any_ok = true;
                let list = resp
                    .payload
                    .as_list()
                    .ok_or_else(|| FsError::BadPayload("ls".into()))?;
                for v in list {
                    if let Some(s) = v.as_str() {
                        names.insert(s.to_string());
                    }
                }
            } else if let Some(s) = resp.payload.as_str() {
                last_err = s.to_string();
            }
        }
        if any_ok {
            Ok(names.into_iter().collect())
        } else {
            Err(FsError::Failed(last_err))
        }
    }

    /// Remove a file (or an empty directory). Directory removal under
    /// partitioning checks emptiness everywhere first, then broadcasts.
    pub fn rm(&self, sim: &mut Sim, path: &str) -> Result<(), FsError> {
        if self.cfg.mode == NameNodeMode::Partitioned {
            // A path can be a dir (on all partitions) or a file (on its
            // home partition). Try the home partition first; if the path is
            // a directory, coordinate the broadcast.
            let home = self.cfg.namenodes[self.partition_for(path)].clone();
            let resp = self.rpc_to(sim, &home, "rm", vec![Value::str(path)])?;
            if resp.ok {
                // If it was a directory it exists on other partitions too.
                for nn in self.cfg.namenodes.clone() {
                    if nn != home {
                        let r = self.rpc_to(sim, &nn, "rm", vec![Value::str(path)])?;
                        // "notfound" is fine: it was a file local to `home`.
                        if !r.ok {
                            if let Some("notfound") = r.payload.as_str() {
                                continue;
                            }
                            return Err(FsError::Failed(
                                r.payload.as_str().unwrap_or("rm").to_string(),
                            ));
                        }
                    }
                }
                return Ok(());
            }
            return Err(FsError::Failed(
                resp.payload.as_str().unwrap_or("rm").to_string(),
            ));
        }
        Self::expect_ok(self.rpc(sim, path, "rm", vec![Value::str(path)])?).map(|_| ())
    }

    /// Rename a file or directory. Under partitioning only same-partition
    /// renames are supported (cross-partition moves need a transaction the
    /// paper likewise did not implement).
    pub fn rename(&self, sim: &mut Sim, old: &str, new: &str) -> Result<(), FsError> {
        if self.cfg.mode == NameNodeMode::Partitioned
            && self.partition_for(old) != self.partition_for(new)
        {
            return Err(FsError::Failed("cross-partition rename".into()));
        }
        Self::expect_ok(self.rpc(sim, old, "rename", vec![Value::str(old), Value::str(new)])?)
            .map(|_| ())
    }

    /// Allocate a chunk for `path`; returns `(chunk_id, replica targets)`.
    pub fn new_chunk(&self, sim: &mut Sim, path: &str) -> Result<(i64, Vec<String>), FsError> {
        let payload = Self::expect_ok(self.rpc(sim, path, "newchunk", vec![Value::str(path)])?)?;
        let list = payload
            .as_list()
            .ok_or_else(|| FsError::BadPayload("newchunk".into()))?;
        let chunk = list
            .first()
            .and_then(|v| v.as_int())
            .ok_or_else(|| FsError::BadPayload("newchunk id".into()))?;
        let nodes: Vec<String> = list[1..]
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        Ok((chunk, nodes))
    }

    /// Detach a chunk from its file after a failed write. Reads then never
    /// see the half-written chunk, and the NameNode's GC sweep reclaims
    /// whatever replicas the aborted pipeline did reach. Idempotent.
    pub fn abandon(&self, sim: &mut Sim, path: &str, chunk: i64) -> Result<(), FsError> {
        Self::expect_ok(self.rpc(sim, path, "abandon", vec![Value::Int(chunk)])?).map(|_| ())
    }

    /// Ordered chunk ids of a file.
    pub fn chunks(&self, sim: &mut Sim, path: &str) -> Result<Vec<i64>, FsError> {
        let payload = Self::expect_ok(self.rpc(sim, path, "chunks", vec![Value::str(path)])?)?;
        payload
            .as_list()
            .map(|l| l.iter().filter_map(|v| v.as_int()).collect())
            .ok_or_else(|| FsError::BadPayload("chunks".into()))
    }

    /// Replica locations of a chunk.
    pub fn locations(&self, sim: &mut Sim, path: &str, chunk: i64) -> Result<Vec<String>, FsError> {
        let payload =
            Self::expect_ok(self.rpc(sim, path, "locations", vec![Value::Int(chunk)])?)?;
        payload
            .as_list()
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .ok_or_else(|| FsError::BadPayload("locations".into()))
    }

    /// Create a file and write `content`, chunking and replicating.
    pub fn write_file(&self, sim: &mut Sim, path: &str, content: &str) -> Result<(), FsError> {
        self.create(sim, path)?;
        self.append(sim, path, content)
    }

    /// Append content to an existing file, one pipelined chunk at a time.
    pub fn append(&self, sim: &mut Sim, path: &str, content: &str) -> Result<(), FsError> {
        let bytes = content.as_bytes();
        let mut start = 0usize;
        while start < bytes.len() {
            // Split on a char boundary at most chunk_size bytes ahead,
            // preferring the last whitespace so records never straddle
            // chunks (the role of Hadoop's record-aligned InputFormats:
            // each map task can process its chunk independently).
            let mut end = (start + self.cfg.chunk_size).min(bytes.len());
            while end < bytes.len() && !content.is_char_boundary(end) {
                end += 1;
            }
            if end < bytes.len() {
                if let Some(ws) = content[start..end].rfind(char::is_whitespace) {
                    if ws > 0 {
                        end = start + ws + 1;
                    }
                }
            }
            let piece = &content[start..end];
            start = end;
            self.write_chunk(sim, path, piece)?;
        }
        Ok(())
    }

    /// Write one chunk's content with retry: allocate, pipeline to the
    /// replicas, await the ack quorum. A write that misses its quorum is
    /// abandoned at the NameNode (so the file never references it) and
    /// retried after backoff against freshly chosen targets — the NameNode
    /// only places on currently-live DataNodes, so a retry routes around
    /// the nodes that just failed.
    fn write_chunk(&self, sim: &mut Sim, path: &str, piece: &str) -> Result<(), FsError> {
        let max = self.cfg.retry.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            let alloc = self.new_chunk(sim, path);
            let (chunk, nodes) = match alloc {
                Ok((chunk, nodes)) if !nodes.is_empty() => (chunk, nodes),
                // No live DataNodes right now (all crashed or partitioned
                // away): transient during chaos, so retry after backoff.
                Ok((chunk, _)) => {
                    let _ = self.abandon(sim, path, chunk);
                    attempt += 1;
                    if attempt >= max {
                        return Err(FsError::Failed("no datanodes for chunk".into()));
                    }
                    let sleep = self.cfg.retry.backoff(sim, attempt as u32);
                    sim.run_for(sleep);
                    continue;
                }
                Err(FsError::Failed(why)) if why == "nonodes" => {
                    attempt += 1;
                    if attempt >= max {
                        return Err(FsError::Failed(why));
                    }
                    let sleep = self.cfg.retry.backoff(sim, attempt as u32);
                    sim.run_for(sleep);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let req = self.fresh_req(sim);
            let pipeline: Vec<Value> = nodes[1..].iter().map(Value::addr).collect();
            sim.inject(
                &nodes[0],
                proto::DN_WRITE,
                Arc::new(vec![
                    Value::addr(&self.node),
                    Value::Int(req),
                    Value::Int(chunk),
                    Value::str(piece),
                    Value::list(pipeline),
                ]),
            );
            let need = self.cfg.write_acks.min(nodes.len());
            let deadline = sim.now() + self.cfg.rpc_timeout;
            let node = self.node.clone();
            let ok = sim.run_while(deadline, |s| {
                s.with_actor::<ClientActor, _>(&node, |c| {
                    c.acks.get(&req).map(|a| a.len()).unwrap_or(0) >= need
                })
            });
            if ok {
                return Ok(());
            }
            let _ = self.abandon(sim, path, chunk);
            attempt += 1;
            if attempt >= max {
                return Err(FsError::Timeout(format!("write chunk {chunk}")));
            }
            let sleep = self.cfg.retry.backoff(sim, attempt as u32);
            sim.run_for(sleep);
        }
    }

    /// Read a whole file back. Each chunk's location list is refreshed and
    /// the read retried with backoff when every replica fails — the
    /// NameNode may be mid-re-replication after a DataNode death, in which
    /// case the next round lists the freshly copied replica.
    pub fn read_file(&self, sim: &mut Sim, path: &str) -> Result<String, FsError> {
        let chunks = self.chunks(sim, path)?;
        let max = self.cfg.retry.max_attempts.max(1);
        let mut out = String::new();
        for chunk in chunks {
            let mut got = None;
            let mut attempt = 0;
            loop {
                let locs = match self.locations(sim, path, chunk) {
                    Ok(locs) => locs,
                    // "nolocations" while the failure detector and
                    // re-replication catch up is transient; retry.
                    Err(FsError::Failed(_)) | Err(FsError::Timeout(_)) if attempt + 1 < max => {
                        Vec::new()
                    }
                    Err(e) => return Err(e),
                };
                // Rotate the starting replica by attempt so a stuck first
                // replica doesn't eat a full timeout every round.
                for i in 0..locs.len() {
                    let dn = &locs[(i + attempt) % locs.len()];
                    let req = self.fresh_req(sim);
                    sim.inject(
                        dn,
                        proto::DN_READ,
                        Arc::new(vec![
                            Value::addr(&self.node),
                            Value::Int(req),
                            Value::Int(chunk),
                        ]),
                    );
                    let deadline = sim.now() + self.cfg.rpc_timeout;
                    let node = self.node.clone();
                    let answered = sim.run_while(deadline, |s| {
                        s.with_actor::<ClientActor, _>(&node, |c| c.chunk_data.contains_key(&req))
                    });
                    if answered {
                        let data = sim.with_actor::<ClientActor, _>(&self.node, |c| {
                            c.chunk_data.remove(&req)
                        });
                        if let Some(Some(content)) = data {
                            got = Some(content);
                            break;
                        }
                    }
                }
                if got.is_some() {
                    break;
                }
                attempt += 1;
                if attempt >= max {
                    break;
                }
                let sleep = self.cfg.retry.backoff(sim, attempt as u32);
                sim.run_for(sleep);
            }
            match got {
                Some(content) => out.push_str(&content),
                None => return Err(FsError::ChunkUnavailable(chunk)),
            }
        }
        Ok(out)
    }
}
