//! Self-healing BOOM-FS: heartbeat-driven failure detection,
//! re-replication of under-replicated chunks, client retry with backoff
//! across NameNode outages, and the abandon protocol for failed writes.

use boom_fs::cluster::{ControlPlane, FsCluster, FsClusterBuilder};
use boom_fs::FsError;
use boom_simnet::OverlogActor;

fn cluster() -> FsCluster {
    FsClusterBuilder {
        control: ControlPlane::Declarative,
        datanodes: 4,
        replication: 2,
        chunk_size: 64,
        hb_interval: 1_000,
        hb_timeout: 6_000,
        ..Default::default()
    }
    .build()
}

#[test]
fn datanode_crash_triggers_rereplication() {
    let mut c = cluster();
    let cl = c.client.clone();
    let sim = &mut c.sim;
    let content = "the quick brown fox jumps over the lazy dog ".repeat(8);
    cl.write_file(sim, "/f", &content).unwrap();
    let chunks = cl.chunks(sim, "/f").unwrap();
    assert!(!chunks.is_empty());
    // Crash a DataNode holding the first chunk.
    let victim = cl.locations(sim, "/f", chunks[0]).unwrap()[0].clone();
    let at = sim.now() + 10;
    sim.schedule_crash(&victim, at);
    // Heartbeats stop; after hb_timeout the failure detector reaps the
    // node and repcheck copies every affected chunk to a live node.
    sim.run_for(30_000);
    for &chunk in &chunks {
        let locs = cl.locations(sim, "/f", chunk).unwrap();
        assert!(
            locs.len() >= 2,
            "chunk {chunk} still under-replicated: {locs:?}"
        );
        assert!(!locs.contains(&victim), "dead node still listed");
    }
    // The NameNode's own bookkeeping view agrees.
    sim.with_actor::<OverlogActor, _>("nn0", |a| {
        assert_eq!(a.runtime().count("underrep"), 0);
    });
    // And no acked byte was lost.
    assert_eq!(cl.read_file(sim, "/f").unwrap(), content);
}

#[test]
fn rpc_retries_across_namenode_flap() {
    let mut c = cluster();
    let cl = c.client.clone();
    let sim = &mut c.sim;
    // Crash the NameNode and bring it back during the client's backoff
    // window: the first attempt times out, the retry succeeds. (The
    // restarted NameNode loses its soft state, but "/" always exists.)
    let at = sim.now() + 10;
    sim.schedule_crash("nn0", at);
    sim.schedule_restart("nn0", at + 11_000); // rpc_timeout is 10s
    let ok = cl.exists(sim, "/");
    assert!(ok.unwrap(), "retry must ride out the flap");
}

#[test]
fn rpc_timeout_respects_attempt_cap() {
    let mut c = cluster();
    let cl = c.client.clone();
    let sim = &mut c.sim;
    let at = sim.now() + 10;
    sim.schedule_crash("nn0", at);
    sim.run_for(20);
    let t0 = sim.now();
    let err = cl.exists(sim, "/").unwrap_err();
    assert!(matches!(err, FsError::Timeout(_)));
    let elapsed = sim.now() - t0;
    // Default policy: 4 attempts × 10s timeout + 3 backoffs (≤ 5s each).
    assert!(elapsed >= 40_000, "all attempts used: {elapsed}ms");
    assert!(elapsed <= 60_000, "attempt cap respected: {elapsed}ms");
}

#[test]
fn abandon_detaches_chunk_and_gc_reclaims_replicas() {
    let mut c = cluster();
    let cl = c.client.clone();
    let sim = &mut c.sim;
    cl.write_file(sim, "/f", "hello world").unwrap();
    let chunks = cl.chunks(sim, "/f").unwrap();
    assert_eq!(chunks.len(), 1);
    cl.abandon(sim, "/f", chunks[0]).unwrap();
    assert_eq!(cl.chunks(sim, "/f").unwrap(), vec![]);
    // Abandoning again is a no-op, not an error.
    cl.abandon(sim, "/f", chunks[0]).unwrap();
    // The replicas are garbage-collected off the DataNodes: once the next
    // gcsweep (10s) plus a heartbeat round trip pass, nobody reports the
    // chunk any more.
    sim.run_for(25_000);
    assert!(matches!(
        cl.locations(sim, "/f", chunks[0]),
        Err(FsError::Failed(ref m)) if m == "nolocations"
    ));
    // The file itself is intact and writable again.
    cl.append(sim, "/f", "fresh content").unwrap();
    assert_eq!(cl.read_file(sim, "/f").unwrap(), "fresh content");
}

#[test]
fn newchunk_with_no_datanodes_fails_clean_then_recovers() {
    let mut c = FsClusterBuilder {
        control: ControlPlane::Declarative,
        datanodes: 1,
        replication: 1,
        chunk_size: 64,
        hb_interval: 1_000,
        hb_timeout: 4_000,
        ..Default::default()
    }
    .build();
    let cl = c.client.clone();
    let sim = &mut c.sim;
    cl.create(sim, "/f").unwrap();
    // Kill the only DataNode and let the failure detector notice.
    let at = sim.now() + 10;
    sim.schedule_crash("dn0", at);
    sim.run_for(10_000);
    // Writes cannot succeed, but they fail cleanly (no orphan chunk rows)
    // after exhausting retries...
    let err = cl.append(sim, "/f", "doomed").unwrap_err();
    assert!(
        matches!(err, FsError::Failed(ref m) if m == "nonodes"),
        "{err:?}"
    );
    assert_eq!(cl.chunks(sim, "/f").unwrap(), vec![]);
    // ...and once the DataNode returns (its disk intact), writes succeed.
    let at = sim.now() + 10;
    sim.schedule_restart("dn0", at);
    sim.run_for(3_000);
    cl.append(sim, "/f", "alive again").unwrap();
    assert_eq!(cl.read_file(sim, "/f").unwrap(), "alive again");
}
