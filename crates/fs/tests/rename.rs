//! Rename semantics: the declarative payoff case — one key overwrite of a
//! `file` tuple moves an entire subtree, and every descendant's `fqpath`
//! re-derives via view maintenance.

use boom_fs::cluster::{ControlPlane, FsCluster, FsClusterBuilder};
use boom_fs::FsError;

fn cluster(control: ControlPlane) -> FsCluster {
    FsClusterBuilder {
        control,
        datanodes: 3,
        replication: 2,
        chunk_size: 64,
        ..Default::default()
    }
    .build()
}

fn both(test: impl Fn(FsCluster)) {
    test(cluster(ControlPlane::Declarative));
    test(cluster(ControlPlane::Baseline));
}

#[test]
fn rename_file_keeps_contents() {
    both(|mut c| {
        let cl = c.client.clone();
        let sim = &mut c.sim;
        cl.write_file(sim, "/old", "data survives renames").unwrap();
        cl.rename(sim, "/old", "/new").unwrap();
        assert!(!cl.exists(sim, "/old").unwrap());
        assert_eq!(cl.read_file(sim, "/new").unwrap(), "data survives renames");
    });
}

#[test]
fn rename_directory_moves_subtree() {
    both(|mut c| {
        let cl = c.client.clone();
        let sim = &mut c.sim;
        cl.mkdir(sim, "/a").unwrap();
        cl.mkdir(sim, "/a/b").unwrap();
        cl.create(sim, "/a/b/deep").unwrap();
        cl.create(sim, "/a/top").unwrap();
        cl.mkdir(sim, "/target").unwrap();
        cl.rename(sim, "/a", "/target/a2").unwrap();
        // The whole subtree is reachable at the new location...
        assert!(cl.exists(sim, "/target/a2/b/deep").unwrap());
        assert!(cl.exists(sim, "/target/a2/top").unwrap());
        assert_eq!(cl.ls(sim, "/target/a2").unwrap(), vec!["b", "top"]);
        // ...and gone from the old one.
        assert!(!cl.exists(sim, "/a").unwrap());
        assert!(!cl.exists(sim, "/a/b/deep").unwrap());
        assert_eq!(cl.ls(sim, "/").unwrap(), vec!["target"]);
    });
}

#[test]
fn rename_error_cases() {
    both(|mut c| {
        let cl = c.client.clone();
        let sim = &mut c.sim;
        cl.mkdir(sim, "/d").unwrap();
        cl.create(sim, "/d/f").unwrap();
        cl.create(sim, "/d/g").unwrap();
        assert!(matches!(
            cl.rename(sim, "/nope", "/x"),
            Err(FsError::Failed(ref m)) if m == "notfound"
        ));
        assert!(matches!(
            cl.rename(sim, "/d/f", "/d/g"),
            Err(FsError::Failed(ref m)) if m == "exists"
        ));
        assert!(matches!(
            cl.rename(sim, "/d", "/d/sub"),
            Err(FsError::Failed(ref m)) if m == "intoself"
        ));
        assert!(matches!(
            cl.rename(sim, "/d/f", "/missing/f"),
            Err(FsError::Failed(ref m)) if m == "noparent"
        ));
        assert!(matches!(
            cl.rename(sim, "/d/f", "/d/g/under-file"),
            Err(FsError::Failed(ref m)) if m == "noparent"
        ));
        assert!(matches!(
            cl.rename(sim, "/", "/root2"),
            Err(FsError::Failed(ref m)) if m == "notfound"
        ));
        // Nothing was disturbed.
        assert_eq!(cl.ls(sim, "/d").unwrap(), vec!["f", "g"]);
    });
}

#[test]
fn renamed_file_still_serves_chunk_reads_after_heartbeats() {
    both(|mut c| {
        let cl = c.client.clone();
        cl.write_file(&mut c.sim, "/before", &"x".repeat(300))
            .unwrap();
        cl.rename(&mut c.sim, "/before", "/after").unwrap();
        // Chunk ownership follows the file id, not the path.
        c.sim.run_for(5_000);
        let chunks = cl.chunks(&mut c.sim, "/after").unwrap();
        assert!(!chunks.is_empty());
        assert_eq!(cl.read_file(&mut c.sim, "/after").unwrap(), "x".repeat(300));
    });
}
