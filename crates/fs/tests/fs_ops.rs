//! End-to-end BOOM-FS tests: every metadata operation and the chunk data
//! path, against both the declarative (Overlog) NameNode and the
//! imperative baseline — the same assertions must hold for both, since
//! they speak the same protocol.

use boom_fs::cluster::{ControlPlane, FsCluster, FsClusterBuilder};
use boom_fs::{DataNode, FsError};

fn cluster(control: ControlPlane) -> FsCluster {
    FsClusterBuilder {
        control,
        datanodes: 4,
        replication: 2,
        chunk_size: 64,
        ..Default::default()
    }
    .build()
}

fn both(test: impl Fn(FsCluster)) {
    test(cluster(ControlPlane::Declarative));
    test(cluster(ControlPlane::Baseline));
}

#[test]
fn mkdir_create_exists_ls() {
    both(|mut c| {
        let cl = c.client.clone();
        let sim = &mut c.sim;
        cl.mkdir(sim, "/data").unwrap();
        cl.mkdir(sim, "/data/sub").unwrap();
        cl.create(sim, "/data/f1").unwrap();
        cl.create(sim, "/data/f2").unwrap();
        assert!(cl.exists(sim, "/data/f1").unwrap());
        assert!(!cl.exists(sim, "/data/zzz").unwrap());
        assert_eq!(cl.ls(sim, "/data").unwrap(), vec!["f1", "f2", "sub"]);
        assert_eq!(cl.ls(sim, "/").unwrap(), vec!["data"]);
    });
}

#[test]
fn duplicate_and_orphan_creates_fail() {
    both(|mut c| {
        let cl = c.client.clone();
        let sim = &mut c.sim;
        cl.mkdir(sim, "/a").unwrap();
        assert!(matches!(cl.mkdir(sim, "/a"), Err(FsError::Failed(ref m)) if m == "exists"));
        assert!(matches!(
            cl.create(sim, "/missing/f"),
            Err(FsError::Failed(ref m)) if m == "noparent"
        ));
        cl.create(sim, "/a/f").unwrap();
        assert!(matches!(cl.create(sim, "/a/f"), Err(FsError::Failed(ref m)) if m == "exists"));
    });
}

#[test]
fn ls_errors() {
    both(|mut c| {
        let cl = c.client.clone();
        let sim = &mut c.sim;
        cl.create(sim, "/f").unwrap();
        assert!(matches!(cl.ls(sim, "/f"), Err(FsError::Failed(ref m)) if m == "notdir"));
        assert!(matches!(cl.ls(sim, "/nope"), Err(FsError::Failed(ref m)) if m == "notfound"));
        // Empty directory lists as empty, not as an error.
        cl.mkdir(sim, "/empty").unwrap();
        assert!(cl.ls(sim, "/empty").unwrap().is_empty());
    });
}

#[test]
fn rm_semantics() {
    both(|mut c| {
        let cl = c.client.clone();
        let sim = &mut c.sim;
        cl.mkdir(sim, "/d").unwrap();
        cl.create(sim, "/d/f").unwrap();
        assert!(matches!(cl.rm(sim, "/d"), Err(FsError::Failed(ref m)) if m == "notempty"));
        cl.rm(sim, "/d/f").unwrap();
        assert!(!cl.exists(sim, "/d/f").unwrap());
        cl.rm(sim, "/d").unwrap();
        assert!(!cl.exists(sim, "/d").unwrap());
        assert!(matches!(cl.rm(sim, "/d"), Err(FsError::Failed(ref m)) if m == "notfound"));
    });
}

#[test]
fn write_and_read_multi_chunk_file() {
    both(|mut c| {
        let cl = c.client.clone();
        let sim = &mut c.sim;
        // 1000 bytes / 64-byte chunks → 16 chunks.
        let content: String = (0..100)
            .map(|i| format!("line-{i:04} "))
            .collect::<String>();
        cl.write_file(sim, "/big", &content).unwrap();
        let chunks = cl.chunks(sim, "/big").unwrap();
        assert!(
            chunks.len() >= 15,
            "expected many chunks, got {}",
            chunks.len()
        );
        let back = cl.read_file(sim, "/big").unwrap();
        assert_eq!(back, content);
    });
}

#[test]
fn chunks_are_replicated_to_k_nodes() {
    both(|mut c| {
        let cl = c.client.clone();
        cl.write_file(&mut c.sim, "/f", "somebytes").unwrap();
        // Let pipelined replication finish.
        c.sim.run_for(2_000);
        let chunk = cl.chunks(&mut c.sim, "/f").unwrap()[0];
        let holders: usize = c
            .datanodes
            .clone()
            .iter()
            .filter(|dn| c.sim.with_actor::<DataNode, _>(dn, |d| d.has_chunk(chunk)))
            .count();
        assert_eq!(holders, 2, "replication factor respected");
    });
}

#[test]
fn locations_follow_heartbeats() {
    both(|mut c| {
        let cl = c.client.clone();
        cl.write_file(&mut c.sim, "/f", "x").unwrap();
        let chunk = cl.chunks(&mut c.sim, "/f").unwrap()[0];
        // Locations appear once the holding nodes heartbeat.
        c.sim.run_for(4_000);
        let locs = cl.locations(&mut c.sim, "/f", chunk).unwrap();
        assert_eq!(locs.len(), 2);
    });
}

#[test]
fn read_survives_replica_failure() {
    both(|mut c| {
        let cl = c.client.clone();
        cl.write_file(&mut c.sim, "/f", "precious data").unwrap();
        c.sim.run_for(4_000);
        let chunk = cl.chunks(&mut c.sim, "/f").unwrap()[0];
        let locs = cl.locations(&mut c.sim, "/f", chunk).unwrap();
        // Kill the first-listed replica; the read should fall through to
        // the second.
        c.sim.schedule_crash(&locs[0], c.sim.now() + 10);
        c.sim.run_for(100);
        let back = cl.read_file(&mut c.sim, "/f").unwrap();
        assert_eq!(back, "precious data");
    });
}

#[test]
fn dead_datanode_disappears_from_locations() {
    both(|mut c| {
        let cl = c.client.clone();
        cl.write_file(&mut c.sim, "/f", "x").unwrap();
        c.sim.run_for(4_000);
        let chunk = cl.chunks(&mut c.sim, "/f").unwrap()[0];
        let locs = cl.locations(&mut c.sim, "/f", chunk).unwrap();
        assert_eq!(locs.len(), 2);
        c.sim.schedule_crash(&locs[0], c.sim.now() + 10);
        // Past the heartbeat timeout the NameNode forgets the dead node
        // (re-replication may have added a fresh holder by then, so only
        // the dead node's absence is asserted).
        c.sim.run_for(25_000);
        let locs_after = cl.locations(&mut c.sim, "/f", chunk).unwrap();
        assert!(!locs_after.is_empty());
        assert!(
            !locs_after.contains(&locs[0]),
            "dead node still listed: {locs_after:?}"
        );
        assert!(locs_after.contains(&locs[1]));
    });
}

#[test]
fn namenode_crash_loses_metadata_without_replication() {
    // The availability motivation for the Paxos revision: a bare NameNode
    // restart loses the namespace even though chunks survive on DataNodes.
    both(|mut c| {
        let cl = c.client.clone();
        cl.mkdir(&mut c.sim, "/will-vanish").unwrap();
        assert!(cl.exists(&mut c.sim, "/will-vanish").unwrap());
        let nn = c.namenodes[0].clone();
        c.sim.schedule_crash(&nn, c.sim.now() + 10);
        c.sim.schedule_restart(&nn, c.sim.now() + 500);
        c.sim.run_for(1_000);
        assert!(!cl.exists(&mut c.sim, "/will-vanish").unwrap());
    });
}

#[test]
fn re_replication_restores_replica_count() {
    // Declarative NameNode only: the dn_copy rules are the Overlog
    // re-replication extension.
    let mut c = cluster(ControlPlane::Declarative);
    let cl = c.client.clone();
    cl.write_file(&mut c.sim, "/f", "replicate me").unwrap();
    c.sim.run_for(4_000);
    let chunk = cl.chunks(&mut c.sim, "/f").unwrap()[0];
    let locs = cl.locations(&mut c.sim, "/f", chunk).unwrap();
    assert_eq!(locs.len(), 2);
    c.sim.schedule_crash(&locs[0], c.sim.now() + 10);
    // Heartbeat timeout (15 s) + repcheck sweep (5 s) + copy + next
    // heartbeat of the new holder.
    c.sim.run_for(40_000);
    let locs_after = cl.locations(&mut c.sim, "/f", chunk).unwrap();
    assert_eq!(
        locs_after.len(),
        2,
        "under-replicated chunk re-replicated to a fresh node"
    );
    assert!(locs_after.iter().any(|l| *l != locs[0] && *l != locs[1]));
}

#[test]
fn partitioned_namespace_spreads_files_and_merges_ls() {
    let mut c = FsClusterBuilder {
        control: ControlPlane::Declarative,
        partitions: 3,
        datanodes: 4,
        replication: 2,
        chunk_size: 64,
        ..Default::default()
    }
    .build();
    let cl = c.client.clone();
    let sim = &mut c.sim;
    cl.mkdir(sim, "/d").unwrap();
    let mut partitions_used = std::collections::HashSet::new();
    for i in 0..12 {
        let path = format!("/d/file{i}");
        cl.create(sim, &path).unwrap();
        partitions_used.insert(cl.partition_for(&path));
    }
    assert!(
        partitions_used.len() >= 2,
        "hashing should spread files across partitions"
    );
    let listing = cl.ls(sim, "/d").unwrap();
    assert_eq!(listing.len(), 12, "merged ls sees every partition's files");
    // Round-trip data through a routed file.
    cl.write_file(sim, "/d/file0-data", "partitioned payload")
        .unwrap();
    assert_eq!(
        cl.read_file(sim, "/d/file0-data").unwrap(),
        "partitioned payload"
    );
    // rm of a directory coordinates across partitions.
    assert!(matches!(cl.rm(sim, "/d"), Err(FsError::Failed(ref m)) if m == "notempty"));
}

#[test]
fn removed_files_chunks_are_garbage_collected() {
    // rm leaves chunk replicas orphaned on DataNodes; the GC sweep rules
    // reclaim them once the next heartbeats report them unowned.
    both(|mut c| {
        let cl = c.client.clone();
        cl.write_file(&mut c.sim, "/doomed", &"z".repeat(500))
            .unwrap();
        c.sim.run_for(4_000);
        let chunks = cl.chunks(&mut c.sim, "/doomed").unwrap();
        assert!(!chunks.is_empty());
        let held = |c: &mut FsCluster, chunk: i64| -> usize {
            c.datanodes
                .clone()
                .iter()
                .filter(|dn| c.sim.with_actor::<DataNode, _>(dn, |d| d.has_chunk(chunk)))
                .count()
        };
        assert!(held(&mut c, chunks[0]) >= 1);
        cl.rm(&mut c.sim, "/doomed").unwrap();
        // Heartbeat (3 s) reports the orphan, gc sweep (10 s) reclaims it.
        c.sim.run_for(30_000);
        for chunk in chunks {
            assert_eq!(held(&mut c, chunk), 0, "chunk {chunk} not reclaimed");
        }
    });
}
