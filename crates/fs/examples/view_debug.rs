//! Dump the NameNode plan's view structure (debug aid).
use boom_overlog::{parse_program, plan, Statement};
use std::collections::HashMap;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fs".into());
    let src = match which.as_str() {
        "fs" => boom_fs::NAMENODE_OLG.to_string(),
        other => panic!("unknown program `{other}`"),
    };
    let prog = parse_program(&src).unwrap();
    let mut decls = HashMap::new();
    let mut rules = Vec::new();
    for st in prog.statements {
        match st {
            Statement::Define(d) => {
                decls.insert(d.name.clone(), d);
            }
            Statement::Rule(r) => rules.push(r),
            Statement::Timer { name, span, .. } => {
                decls.insert(
                    name.clone(),
                    boom_overlog::TableDecl {
                        name,
                        keys: None,
                        types: vec![boom_overlog::value::TypeTag::Int],
                        kind: boom_overlog::TableKind::Event,
                        span,
                    },
                );
            }
            _ => {}
        }
    }
    for d in boom_overlog::analysis::ProgramContext::runtime_ambient() {
        decls.entry(d.name.clone()).or_insert(d);
    }
    let p = plan::compile(&decls, &rules).unwrap();
    let mut vt: Vec<_> = p.view_tables.iter().collect();
    vt.sort();
    println!("view_tables: {vt:?}");
    let mut vi: Vec<_> = p.view_inputs.iter().collect();
    vi.sort();
    println!("view_inputs: {vi:?}");
    let mut nv: Vec<_> = p.neg_view_inputs.iter().collect();
    nv.sort();
    println!("neg_view_inputs: {nv:?}");
    let mut mv: Vec<_> = p.monotonic_views.iter().collect();
    mv.sort();
    println!("monotonic_views: {mv:?}");
    let mut dv: Vec<_> = p.view_deps.iter().collect();
    dv.sort_by_key(|(k, _)| (*k).clone());
    for (v, deps) in dv {
        let mut d: Vec<_> = deps.iter().collect();
        d.sort();
        println!("deps {v}: {d:?}");
    }
}
