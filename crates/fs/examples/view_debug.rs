//! Dump the NameNode plan's view structure (debug aid).
use boom_overlog::{parse_program, plan, Statement};
use std::collections::HashMap;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fs".into());
    let src = match which.as_str() {
        "fs" => boom_fs::NAMENODE_OLG.to_string(),
        other => panic!("unknown program `{other}`"),
    };
    let prog = parse_program(&src).unwrap();
    let mut decls = HashMap::new();
    let mut rules = Vec::new();
    for st in prog.statements {
        match st {
            Statement::Define(d) => {
                decls.insert(d.name.clone(), d);
            }
            Statement::Rule(r) => rules.push(r),
            Statement::Timer { name, span, .. } => {
                decls.insert(
                    name.clone(),
                    boom_overlog::TableDecl {
                        name,
                        keys: None,
                        types: vec![boom_overlog::value::TypeTag::Int],
                        kind: boom_overlog::TableKind::Event,
                        span,
                    },
                );
            }
            _ => {}
        }
    }
    for d in boom_overlog::analysis::ProgramContext::runtime_ambient() {
        decls.entry(d.name.clone()).or_insert(d);
    }
    let p = plan::compile(&decls, &rules).unwrap();
    let names = |s: &boom_overlog::IdSet| -> Vec<String> {
        let mut v: Vec<String> = s.iter().map(|t| p.ids.name(t).to_string()).collect();
        v.sort();
        v
    };
    println!("view_tables: {:?}", names(&p.view_tables));
    println!("view_inputs: {:?}", names(&p.view_inputs));
    println!("neg_view_inputs: {:?}", names(&p.neg_view_inputs));
    println!("monotonic_views: {:?}", names(&p.monotonic_views));
    let mut dv: Vec<_> = p
        .view_deps
        .iter()
        .map(|(v, deps)| (p.ids.name(*v).to_string(), names(deps)))
        .collect();
    dv.sort();
    for (v, d) in dv {
        println!("deps {v}: {d:?}");
    }
}
