//! # boom-serve — a serving tier over live cluster state
//!
//! BOOM's thesis is that cluster state *is* relations; this crate serves
//! those relations. Simulated clients can
//!
//! * **subscribe** — register a standing Overlog query (an ordinary rule
//!   body over any loaded table), compiled through the existing
//!   analyzer/planner so illegal queries are rejected with olgcheck
//!   diagnostics, and receive a stream of incremental output deltas
//!   (insert/retract rows stamped with commit tick and virtual time); and
//! * **pull** — run a one-shot indexed read against current state with
//!   bounded staleness (the result carries its as-of virtual time; the
//!   bound is one observed-channel hop plus the host's tick period).
//!
//! Subscriptions are implemented by metaprogramming a view into the
//! running program (the same mechanism as `boom-trace`'s
//! `install_monitor`) and *tapping* the runtime's delta log at commit
//! points, so propagation cost is proportional to the churn each query
//! observes — never to state size. The tier supports subscribe and
//! unsubscribe at runtime, per-subscription backpressure (bounded queues
//! with counted-never-silent drops and snapshot resync), and fan-out
//! sharing: subscriptions with identical query text share one maintained
//! view.
//!
//! Everything rides the simulator's *observed* channel
//! ([`boom_simnet::Ctx::send_observed`]): deliveries are ordinary sim
//! events — chaos schedules, partitions and crash epochs apply — but the
//! channel draws nothing from the simulation RNG, so a run with 50 000
//! subscribers takes the byte-identical schedule of a run with zero
//! ("observe, never perturb"; the `engine_equiv` suite enforces it).

pub mod client;
pub mod host;
pub mod protocol;

pub use client::{Mirror, SubscriberActor};
pub use host::{ServeConfig, ServeHost};
pub use protocol::{
    SubscriptionSpec, ACK_TABLE, DELTA_TABLE, ERR_TABLE, OP_DELETE, OP_INSERT, OP_RESET, OP_SNAP,
    PULL_OK_TABLE, PULL_TABLE, QUERY_PREFIX, SUB_OK_TABLE, SUB_TABLE, UNSUB_TABLE,
};

/// Canned queries over the shipped BOOM-FS NameNode program — the watches
/// an HDFS operator would actually stand up.
pub mod fs_queries {
    use crate::SubscriptionSpec;

    /// Watch the full namespace: every `(path, file id)` pair, kept
    /// current as files are created, renamed and removed.
    pub fn file_status() -> SubscriptionSpec {
        SubscriptionSpec::new(
            "fs-file-status",
            "0,1",
            "String, Int",
            "Path, FId",
            "fqpath(Path, FId)",
        )
    }

    /// Replication health: chunks holding fewer replicas than the
    /// configured factor, with have/want counts — the feed a re-replication
    /// dashboard would sit on.
    pub fn replication_health() -> SubscriptionSpec {
        SubscriptionSpec::new(
            "fs-replication-health",
            "0",
            "Int, Int, Int",
            "Chunk, Have, Want",
            "underrep(Chunk, Have, Want)",
        )
    }

    /// Chunk placement: each chunk's current holder list.
    pub fn chunk_placement() -> SubscriptionSpec {
        SubscriptionSpec::new(
            "fs-chunk-placement",
            "0",
            "Int, List",
            "Chunk, Locs",
            "chunk_locs(Chunk, Locs)",
        )
    }
}

/// Canned queries over the shipped BOOM-MR JobTracker program.
pub mod mr_queries {
    use crate::SubscriptionSpec;

    /// Job progress: per job, tasks total vs tasks done.
    pub fn job_progress() -> SubscriptionSpec {
        SubscriptionSpec::new(
            "mr-job-progress",
            "0",
            "Int, Int, Int",
            "Job, Total, Done",
            "tasks_total(Job, Total), tasks_done_cnt(Job, Done)",
        )
    }

    /// Completed jobs.
    pub fn jobs_complete() -> SubscriptionSpec {
        SubscriptionSpec::new("mr-jobs-complete", "0", "Int", "Job", "job_complete(Job)")
    }

    /// TaskTracker slot pressure: free slots per live tracker.
    pub fn tracker_slots() -> SubscriptionSpec {
        SubscriptionSpec::new(
            "mr-tracker-slots",
            "0",
            "Addr, Int",
            "TT, Free",
            "freeslots(TT, Free)",
        )
    }
}
