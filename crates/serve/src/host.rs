//! Server side of the serving tier: a [`ServeHook`] attached to the node
//! that hosts the state of record (e.g. the BOOM-FS NameNode).
//!
//! Subscriptions are metaprogrammed: each unique query becomes an ordinary
//! Overlog view (`define` + one rule) loaded into the running program
//! through the analyzer/planner, so an illegal query is rejected with the
//! same diagnostics `olgcheck` would print. The query view is *tapped* at
//! commit points ([`OverlogRuntime::take_tap_delta`]), so propagation work
//! is proportional to the churn each query observes, never to state size.

use crate::protocol::*;
use boom_overlog::value::row;
use boom_overlog::{OverlogRuntime, Row, Value};
use boom_simnet::{Ctx, ServeHook};
use boom_trace::Registry;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Knobs for backpressure and recovery; defaults suit the simulator's
/// millisecond clock.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-subscription outbound queue bound. An overflowing queue drops
    /// (counted, never silent) and schedules a snapshot resync.
    pub queue_cap: usize,
    /// Max delta records in flight (sent, unacked) per subscription.
    pub window: usize,
    /// With records in flight and no ack for this long, assume the
    /// subscriber lost them (crash, partition) and schedule a resync.
    pub ack_timeout: u64,
    /// Minimum gap between consecutive resyncs of one subscription.
    pub resync_backoff: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 256,
            window: 128,
            ack_timeout: 2_000,
            resync_backoff: 1_000,
        }
    }
}

/// One installed query: many subscriptions with identical text share one
/// generated view (fan-out sharing), so the evaluator maintains each
/// distinct query exactly once.
struct QueryState {
    table: String,
    source: String,
    /// `(client node, tag)` of every subscription fed by this view.
    subs: BTreeSet<(String, i64)>,
    /// W0009-style analyzer warnings issued when the view was installed.
    warnings: u64,
}

/// A delta record queued for one subscription.
struct Rec {
    seq: u64,
    op: i64,
    tick: u64,
    time: u64,
    row: Row,
}

/// Per-subscription server state: the bounded queue, the ack window, and
/// the drop/resync counters the metrics report.
struct SubState {
    qkey: String,
    queue: VecDeque<Rec>,
    /// Next sequence number to assign to a queued record.
    next_seq: u64,
    /// Highest sequence number flushed to the network.
    sent_seq: u64,
    /// Highest sequence number the client acknowledged.
    acked: u64,
    dropped: u64,
    delivered: u64,
    resyncs: u64,
    needs_resync: bool,
    last_ack_at: u64,
    last_resync_at: u64,
}

impl SubState {
    fn inflight(&self) -> u64 {
        self.sent_seq.saturating_sub(self.acked)
    }

    /// Rough resident size: the struct plus queued rows (for the
    /// per-subscription memory figure E13 reports).
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.qkey.len()
            + self
                .queue
                .iter()
                .map(|r| std::mem::size_of::<Rec>() + r.row.len() * std::mem::size_of::<Value>())
                .sum::<usize>()
    }
}

/// The serving tier's server half: attach to an [`OverlogActor`] with
/// `add_hook`; drive with [`crate::SubscriberActor`] clients (or raw
/// protocol tuples).
///
/// [`OverlogActor`]: boom_simnet::OverlogActor
#[derive(Default)]
pub struct ServeHost {
    cfg: ServeConfig,
    /// Canonical query text → installed view.
    queries: BTreeMap<String, QueryState>,
    /// Generated view table name → canonical query text.
    by_table: BTreeMap<String, String>,
    subs: BTreeMap<(String, i64), SubState>,
    /// Subscriptions with something to do (queued records, resync due, or
    /// records in flight) — the only ones [`ServeHook::after_commit`]
    /// visits, so an idle subscription costs nothing per activation.
    active: BTreeSet<(String, i64)>,
    next_qid: u64,
    /// Drops accumulated over the host's lifetime, including retired
    /// subscriptions.
    pub total_dropped: u64,
    /// Resyncs over the host's lifetime, including retired subscriptions.
    pub total_resyncs: u64,
    /// Delta records flushed to subscribers over the host's lifetime.
    pub total_delivered: u64,
}

impl ServeHost {
    pub fn new(cfg: ServeConfig) -> Self {
        ServeHost {
            cfg,
            queries: BTreeMap::new(),
            by_table: BTreeMap::new(),
            subs: BTreeMap::new(),
            active: BTreeSet::new(),
            next_qid: 0,
            total_dropped: 0,
            total_resyncs: 0,
            total_delivered: 0,
        }
    }

    /// Number of live subscriptions.
    pub fn sub_count(&self) -> usize {
        self.subs.len()
    }

    /// Number of distinct installed queries (≤ subscriptions, thanks to
    /// fan-out sharing).
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The generated view table serving `spec`, if that query is
    /// installed.
    pub fn query_table(&self, spec: &SubscriptionSpec) -> Option<String> {
        self.queries
            .get(&spec.canonical_key())
            .map(|q| q.table.clone())
    }

    /// Total resident bytes of all subscription state, queues included.
    pub fn mem_bytes(&self) -> usize {
        let subs: usize = self.subs.values().map(|s| s.mem_bytes()).sum();
        let keys: usize = self.subs.keys().map(|(c, _)| c.len() + 8).sum();
        let queries: usize = self
            .queries
            .values()
            .map(|q| q.table.len() + q.source.len() + q.subs.len() * 24)
            .sum();
        subs + keys + queries
    }

    /// Export host-side metrics: totals as counters, per-subscription
    /// queue depth as a sample distribution.
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.count("srv.dropped", self.total_dropped);
        reg.count("srv.resyncs", self.total_resyncs);
        reg.count("srv.delivered", self.total_delivered);
        reg.gauge("srv.subs", self.subs.len() as f64);
        reg.gauge("srv.queries", self.queries.len() as f64);
        reg.gauge("srv.mem_bytes", self.mem_bytes() as f64);
        for s in self.subs.values() {
            reg.sample("srv.queue_depth", s.queue.len() as f64);
        }
    }

    fn mark_active(&mut self, key: &(String, i64)) {
        self.active.insert(key.clone());
    }

    fn subscribe(
        &mut self,
        rt: &mut OverlogRuntime,
        ctx: &mut Ctx<'_>,
        client: String,
        tag: i64,
        spec: &SubscriptionSpec,
    ) {
        let qkey = spec.canonical_key();
        let key = (client.clone(), tag);
        // Install the view on first use of this query text.
        if !self.queries.contains_key(&qkey) {
            let table = format!("{QUERY_PREFIX}{}", self.next_qid);
            let source = spec.view_source(&table);
            if let Err(e) = rt.load(&source) {
                ctx.send_observed(
                    &client,
                    ERR_TABLE,
                    row(vec![Value::Int(tag), Value::str(format!("{e}"))]),
                );
                return;
            }
            self.next_qid += 1;
            rt.add_tap(&table);
            // Seed the new view from pre-existing base state. The tapped
            // rebuild diff it produces is discarded below (the fresh
            // subscription starts from a snapshot anyway).
            if let Err(e) = rt.refresh_views() {
                ctx.send_observed(
                    &client,
                    ERR_TABLE,
                    row(vec![Value::Int(tag), Value::str(format!("{e}"))]),
                );
                let _ = rt.unload(&source);
                rt.remove_tap(&table);
                return;
            }
            // Surface analyzer warnings (W0009 serialized-watch et al.)
            // that mention the generated view or its rule.
            let warnings = rt
                .check()
                .iter()
                .filter(|d| d.code.starts_with('W') && d.message.contains(&table))
                .count() as u64;
            self.by_table.insert(table.clone(), qkey.clone());
            self.queries.insert(
                qkey.clone(),
                QueryState {
                    table,
                    source,
                    subs: BTreeSet::new(),
                    warnings,
                },
            );
        }
        // Re-subscribing an existing (client, tag) re-points it (and
        // resets its stream — the client asked to start over).
        if let Some(old) = self.subs.remove(&key) {
            self.retire_sub_from_query(&old.qkey, &key);
            self.total_dropped += old.dropped;
            self.total_resyncs += old.resyncs;
            self.total_delivered += old.delivered;
        }
        let q = self.queries.get_mut(&qkey).expect("installed above");
        q.subs.insert(key.clone());
        let (table, warnings) = (q.table.clone(), q.warnings);
        self.subs.insert(
            key.clone(),
            SubState {
                qkey,
                queue: VecDeque::new(),
                next_seq: 0,
                sent_seq: 0,
                acked: 0,
                dropped: 0,
                delivered: 0,
                resyncs: 0,
                needs_resync: true,
                last_ack_at: ctx.now(),
                last_resync_at: 0,
            },
        );
        self.mark_active(&key);
        ctx.send_observed(
            &client,
            SUB_OK_TABLE,
            row(vec![
                Value::Int(tag),
                Value::str(table),
                Value::Int(warnings as i64),
            ]),
        );
    }

    fn retire_sub_from_query(&mut self, qkey: &str, key: &(String, i64)) {
        if let Some(q) = self.queries.get_mut(qkey) {
            q.subs.remove(key);
        }
    }

    fn unsubscribe(&mut self, rt: &mut OverlogRuntime, client: &str, tag: i64) {
        let key = (client.to_string(), tag);
        let Some(sub) = self.subs.remove(&key) else {
            return;
        };
        self.active.remove(&key);
        self.total_dropped += sub.dropped;
        self.total_resyncs += sub.resyncs;
        self.total_delivered += sub.delivered;
        let qkey = sub.qkey;
        self.retire_sub_from_query(&qkey, &key);
        let retire = self
            .queries
            .get(&qkey)
            .map(|q| q.subs.is_empty())
            .unwrap_or(false);
        if retire {
            let q = self.queries.remove(&qkey).expect("checked above");
            self.by_table.remove(&q.table);
            // Uninstall the generated view: rules leave the plan (their
            // stats slots with them), the tap closes, the rows go.
            rt.remove_tap(&q.table);
            let _ = rt.unload(&q.source);
            let _ = rt.clear_table(&q.table);
        }
    }

    fn ack(&mut self, ctx: &Ctx<'_>, client: &str, entries: &[Value]) {
        for e in entries {
            let Some(pair) = e.as_list() else { continue };
            let (Some(tag), Some(seq)) = (
                pair.first().and_then(Value::as_int),
                pair.get(1).and_then(Value::as_int),
            ) else {
                continue;
            };
            let key = (client.to_string(), tag);
            if let Some(sub) = self.subs.get_mut(&key) {
                sub.acked = sub.acked.max(seq as u64);
                sub.last_ack_at = ctx.now();
                if !sub.queue.is_empty() || sub.needs_resync || sub.inflight() > 0 {
                    self.active.insert(key);
                }
            }
        }
    }

    fn pull(
        &mut self,
        rt: &mut OverlogRuntime,
        ctx: &mut Ctx<'_>,
        client: &str,
        req: i64,
        table: &str,
    ) {
        let ok = rt.table(table).map(|t| !t.is_event()).unwrap_or(false);
        if !ok {
            ctx.send_observed(
                client,
                ERR_TABLE,
                row(vec![
                    Value::Int(req),
                    Value::str(format!("pull: no materialized table `{table}`")),
                ]),
            );
            return;
        }
        let rows: Vec<Value> = rt
            .table(table)
            .expect("checked above")
            .sorted_rows()
            .into_iter()
            .map(|r| Value::list(r.to_vec()))
            .collect();
        // Staleness bound: the snapshot is as of the server's current
        // virtual time; the client sees it one observed-channel hop later.
        ctx.send_observed(
            client,
            PULL_OK_TABLE,
            row(vec![
                Value::Int(req),
                Value::Int(ctx.now() as i64),
                Value::list(rows),
            ]),
        );
    }

    /// Queue freshly committed tap records onto each subscription of the
    /// table's query.
    fn enqueue_taps(&mut self, rt: &mut OverlogRuntime) {
        let taps = rt.take_tap_delta();
        if taps.is_empty() {
            return;
        }
        for rec in taps {
            let Some(qkey) = self.by_table.get(&rec.table) else {
                continue;
            };
            let subs: Vec<(String, i64)> = self
                .queries
                .get(qkey)
                .map(|q| q.subs.iter().cloned().collect())
                .unwrap_or_default();
            let op = match rec.op {
                boom_overlog::CommitOp::Insert => OP_INSERT,
                boom_overlog::CommitOp::Delete => OP_DELETE,
            };
            for key in subs {
                let Some(sub) = self.subs.get_mut(&key) else {
                    continue;
                };
                if sub.needs_resync {
                    continue; // the snapshot will cover this record
                }
                if sub.queue.len() >= self.cfg.queue_cap {
                    // Counted, never silent: the stream is now incomplete,
                    // so the subscriber gets a snapshot instead.
                    sub.dropped += 1;
                    self.total_dropped += 1;
                    sub.needs_resync = true;
                    sub.queue.clear();
                    self.active.insert(key);
                    continue;
                }
                let seq = sub.next_seq;
                sub.next_seq += 1;
                sub.queue.push_back(Rec {
                    seq,
                    op,
                    tick: rec.tick,
                    time: rec.time,
                    row: rec.row.clone(),
                });
                self.active.insert(key);
            }
        }
    }

    /// Resync pass: replace a broken stream with a reset marker plus a
    /// full snapshot of the query view (bypasses the queue cap — a
    /// snapshot is bounded by result size, and re-dropping it would loop).
    fn resync_due(&mut self, rt: &OverlogRuntime, now: u64) {
        let due: Vec<(String, i64)> = self
            .active
            .iter()
            .filter(|k| {
                self.subs
                    .get(*k)
                    .map(|s| {
                        s.needs_resync
                            && now.saturating_sub(s.last_resync_at) >= self.cfg.resync_backoff
                    })
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        for key in due {
            let sub = self.subs.get_mut(&key).expect("filtered above");
            let table = self
                .queries
                .get(&sub.qkey)
                .map(|q| q.table.clone())
                .expect("sub points at a live query");
            sub.queue.clear();
            let seq = sub.next_seq;
            sub.next_seq += 1;
            sub.queue.push_back(Rec {
                seq,
                op: OP_RESET,
                tick: 0,
                time: now,
                row: row(vec![]),
            });
            if let Some(t) = rt.table(&table) {
                for r in t.sorted_rows() {
                    let seq = sub.next_seq;
                    sub.next_seq += 1;
                    sub.queue.push_back(Rec {
                        seq,
                        op: OP_SNAP,
                        tick: 0,
                        time: now,
                        row: r.clone(),
                    });
                }
            }
            // The snapshot supersedes everything in flight.
            sub.acked = sub.acked.max(sub.sent_seq);
            sub.needs_resync = false;
            sub.resyncs += 1;
            self.total_resyncs += 1;
            sub.last_resync_at = now;
        }
    }

    /// Flush queued records up to each subscription's window, batched into
    /// one `srv_delta` tuple per client node, and retire idle subs from
    /// the active set.
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        let mut batches: BTreeMap<String, Vec<Value>> = BTreeMap::new();
        let mut idle: Vec<(String, i64)> = Vec::new();
        let now = ctx.now();
        for key in self.active.iter().cloned().collect::<Vec<_>>() {
            let Some(sub) = self.subs.get_mut(&key) else {
                idle.push(key);
                continue;
            };
            while sub.inflight() < self.cfg.window as u64 {
                let Some(rec) = sub.queue.pop_front() else {
                    break;
                };
                sub.sent_seq = sub.sent_seq.max(rec.seq + 1);
                sub.delivered += 1;
                self.total_delivered += 1;
                batches
                    .entry(key.0.clone())
                    .or_default()
                    .push(Value::list(vec![
                        Value::Int(key.1),
                        Value::Int(rec.seq as i64),
                        Value::Int(rec.op),
                        Value::Int(rec.tick as i64),
                        Value::Int(rec.time as i64),
                        Value::list(rec.row.to_vec()),
                    ]));
            }
            // Ack-timeout: in-flight records unacknowledged for too long
            // are presumed lost (crashed or partitioned subscriber).
            if sub.inflight() > 0
                && now.saturating_sub(sub.last_ack_at.max(sub.last_resync_at))
                    >= self.cfg.ack_timeout
            {
                sub.needs_resync = true;
            }
            if sub.queue.is_empty() && !sub.needs_resync && sub.inflight() == 0 {
                idle.push(key);
            }
        }
        for key in idle {
            self.active.remove(&key);
        }
        for (client, entries) in batches {
            let n = entries.len() as i64;
            ctx.send_observed(
                &client,
                DELTA_TABLE,
                row(vec![Value::Int(n), Value::list(entries)]),
            );
        }
    }
}

impl ServeHook for ServeHost {
    fn on_tuple(
        &mut self,
        rt: &mut OverlogRuntime,
        ctx: &mut Ctx<'_>,
        tuple: &boom_overlog::NetTuple,
    ) -> bool {
        match tuple.table.as_str() {
            SUB_TABLE => {
                if let Some((client, tag, spec)) = SubscriptionSpec::from_row(&tuple.row) {
                    self.subscribe(rt, ctx, client, tag, &spec);
                }
                true
            }
            UNSUB_TABLE => {
                if let (Some(client), Some(tag)) = (
                    tuple.row.first().and_then(Value::as_str),
                    tuple.row.get(1).and_then(Value::as_int),
                ) {
                    let client = client.to_string();
                    self.unsubscribe(rt, &client, tag);
                }
                true
            }
            ACK_TABLE => {
                if let (Some(client), Some(entries)) = (
                    tuple.row.first().and_then(Value::as_str),
                    tuple.row.get(1).and_then(Value::as_list),
                ) {
                    let client = client.to_string();
                    let entries = entries.to_vec();
                    self.ack(ctx, &client, &entries);
                }
                true
            }
            PULL_TABLE => {
                if let (Some(client), Some(req), Some(table)) = (
                    tuple.row.first().and_then(Value::as_str),
                    tuple.row.get(1).and_then(Value::as_int),
                    tuple.row.get(2).and_then(Value::as_str),
                ) {
                    let (client, table) = (client.to_string(), table.to_string());
                    self.pull(rt, ctx, &client, req, &table);
                }
                true
            }
            _ => false,
        }
    }

    fn after_commit(&mut self, rt: &mut OverlogRuntime, ctx: &mut Ctx<'_>) {
        self.enqueue_taps(rt);
        self.resync_due(rt, ctx.now());
        self.flush(ctx);
    }

    fn after_restart(&mut self, rt: &mut OverlogRuntime, ctx: &mut Ctx<'_>) {
        // A factory-rebuilt runtime comes back without our generated
        // views (query tables are observation tables, excluded from the
        // WAL): reinstall every installed query and reopen its tap. A
        // runtime that survived in memory still has them — don't
        // double-install.
        for q in self.queries.values() {
            if rt.table(&q.table).is_none() && rt.load(&q.source).is_err() {
                continue;
            }
            rt.add_tap(&q.table);
        }
        let _ = rt.refresh_views();
        // The rebuild diff is stale (pre-crash seqs); drop it.
        let _ = rt.take_tap_delta();
        let keys: Vec<(String, i64)> = self.subs.keys().cloned().collect();
        for key in keys {
            if let Some(sub) = self.subs.get_mut(&key) {
                sub.queue.clear();
                sub.needs_resync = true;
                sub.last_resync_at = 0;
                sub.last_ack_at = ctx.now();
            }
            self.active.insert(key);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
