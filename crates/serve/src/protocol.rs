//! Wire protocol of the serving tier.
//!
//! All control-plane and data-plane traffic rides ordinary [`NetTuple`]s
//! on the simulator's *observed* channel ([`Ctx::send_observed`]): fixed
//! latency, zero RNG draws, so serving traffic never perturbs the
//! simulation schedule — but partitions and crash epochs still apply, so
//! chaos reaches subscribers like everyone else.
//!
//! The protocol tables are consumed by the [`ServeHost`] hook before the
//! hosted runtime sees them; they are never declared in any Overlog
//! program.
//!
//! [`NetTuple`]: boom_overlog::NetTuple
//! [`Ctx::send_observed`]: boom_simnet::Ctx::send_observed
//! [`ServeHost`]: crate::ServeHost

use boom_overlog::{Row, Value};

/// Client → server: register a standing query.
/// `[client, tag, name, keys, schema, head, body]`.
pub const SUB_TABLE: &str = "srv_sub";
/// Client → server: retire a subscription. `[client, tag]`.
pub const UNSUB_TABLE: &str = "srv_unsub";
/// Client → server: batched acknowledgments.
/// `[client, [[tag, seq], ..]]`.
pub const ACK_TABLE: &str = "srv_ack";
/// Client → server: one-shot indexed read. `[client, req, table]`.
pub const PULL_TABLE: &str = "srv_pull";
/// Server → client: batched delta records.
/// `[n, [[tag, seq, op, tick, time, [row..]], ..]]`.
pub const DELTA_TABLE: &str = "srv_delta";
/// Server → client: subscription accepted.
/// `[tag, query_table, warnings]`.
pub const SUB_OK_TABLE: &str = "srv_sub_ok";
/// Server → client: pull result. `[req, as_of, [[row..], ..]]`.
pub const PULL_OK_TABLE: &str = "srv_pull_ok";
/// Server → client: request rejected (analyzer diagnostics for an illegal
/// query, unknown pull table, ...). `[tag, message]`.
pub const ERR_TABLE: &str = "srv_err";

/// Name prefix of generated query view tables. Matches an
/// [`OBSERVATION_PREFIXES`] entry, so query views are excluded from state
/// fingerprints and durable logging — subscriptions observe, never
/// perturb.
///
/// [`OBSERVATION_PREFIXES`]: boom_overlog::OBSERVATION_PREFIXES
pub const QUERY_PREFIX: &str = "srv_q";

/// Delta record ops.
pub const OP_INSERT: i64 = 0;
pub const OP_DELETE: i64 = 1;
/// Stream reset: discard the mirror; snapshot rows follow.
pub const OP_RESET: i64 = 2;
/// A snapshot row following a reset (not counted toward propagation
/// latency — it reflects resync time, not update churn).
pub const OP_SNAP: i64 = 3;

/// A standing query, in the shape the server compiles into a view:
///
/// ```text
/// define(srv_qN, keys(<keys>), {<schema>});
/// watch(srv_qN);
/// srv_qN(<head>) :- <body>;
/// ```
///
/// The body is an ordinary Overlog rule body over any loaded table; the
/// whole thing goes through the analyzer/planner, so an illegal query is
/// rejected with olgcheck diagnostics instead of installing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SubscriptionSpec {
    /// Human-readable label (not part of the canonical identity).
    pub name: String,
    /// Key columns of the result view, e.g. `"0"` or `"0,1"`.
    pub keys: String,
    /// Column types of the result view, e.g. `"String, Int"`.
    pub schema: String,
    /// Head argument list, e.g. `"Path, FId"`.
    pub head: String,
    /// Rule body, e.g. `"fqpath(Path, FId)"`.
    pub body: String,
}

impl SubscriptionSpec {
    pub fn new(name: &str, keys: &str, schema: &str, head: &str, body: &str) -> Self {
        SubscriptionSpec {
            name: name.to_string(),
            keys: keys.to_string(),
            schema: schema.to_string(),
            head: head.to_string(),
            body: body.to_string(),
        }
    }

    /// Identity for fan-out sharing: subscriptions with equal canonical
    /// keys share one generated view.
    pub fn canonical_key(&self) -> String {
        format!("{}|{}|{}|{}", self.keys, self.schema, self.head, self.body)
    }

    /// The Overlog source installed for this query, deriving into `table`.
    /// The `watch` puts the view in the analyzer's watch list, which is
    /// what the W0009 serialized-watch lint inspects.
    pub fn view_source(&self, table: &str) -> String {
        format!(
            "define({table}, keys({}), {{{}}});\nwatch({table});\n{table}({}) :- {};\n",
            self.keys, self.schema, self.head, self.body
        )
    }

    /// Encode as a [`SUB_TABLE`] row.
    pub fn to_row(&self, client: &str, tag: i64) -> Vec<Value> {
        vec![
            Value::str(client),
            Value::Int(tag),
            Value::str(&self.name),
            Value::str(&self.keys),
            Value::str(&self.schema),
            Value::str(&self.head),
            Value::str(&self.body),
        ]
    }

    /// Decode a [`SUB_TABLE`] row.
    pub fn from_row(row: &Row) -> Option<(String, i64, SubscriptionSpec)> {
        let client = row.first()?.as_str()?.to_string();
        let tag = row.get(1)?.as_int()?;
        let s = |i: usize| row.get(i).and_then(Value::as_str).map(str::to_string);
        Some((
            client,
            tag,
            SubscriptionSpec {
                name: s(2)?,
                keys: s(3)?,
                schema: s(4)?,
                head: s(5)?,
                body: s(6)?,
            },
        ))
    }
}
