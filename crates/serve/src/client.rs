//! Client side of the serving tier: a simulator actor that holds many
//! subscriptions against one server, maintains a full-row mirror of each
//! query's result set from the delta stream, and measures
//! update-propagation latency in virtual time.
//!
//! One actor multiplexes thousands of subscriptions (distinguished by
//! integer *tags*), which is how E13 reaches ≥ 50k concurrent
//! subscriptions over a few dozen simulated nodes.

use crate::protocol::*;
use boom_overlog::value::row;
use boom_overlog::{NetTuple, Value};
use boom_simnet::{Actor, Ctx};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// The mirror a subscriber maintains per tag: exactly the rows the server's
/// query view holds, reconstructed from inserts/retracts (and snapshots
/// after a resync).
pub type Mirror = BTreeSet<Vec<Value>>;

/// A simulated subscriber node.
pub struct SubscriberActor {
    server: String,
    specs: BTreeMap<i64, SubscriptionSpec>,
    /// Per-tag replica of the query result set.
    pub mirrors: BTreeMap<i64, Mirror>,
    /// Histogram of update-propagation latency in virtual ms
    /// (`arrival time − commit time`), over incremental records only.
    pub latency_hist: BTreeMap<u64, u64>,
    /// Incremental delta records applied.
    pub applied: u64,
    /// Snapshot rows applied (resyncs).
    pub snap_rows: u64,
    /// Stream resets observed (each one means the server dropped or
    /// presumed-lost records for us and compensated with a snapshot).
    pub resets: u64,
    /// Analyzer warnings reported with our `srv_sub_ok` acks, summed.
    pub warnings: u64,
    /// Errors the server sent back (illegal queries, bad pulls).
    pub errors: Vec<(i64, String)>,
    /// Completed pulls: request id → (as-of virtual time, rows).
    pub pulls: BTreeMap<i64, (u64, Vec<Vec<Value>>)>,
    heartbeat: u64,
}

impl SubscriberActor {
    /// Subscribe to `specs` (one tag each) on `server`. `heartbeat` is the
    /// keepalive timer period in virtual ms.
    pub fn new(server: &str, specs: Vec<(i64, SubscriptionSpec)>, heartbeat: u64) -> Self {
        SubscriberActor {
            server: server.to_string(),
            specs: specs.into_iter().collect(),
            mirrors: BTreeMap::new(),
            latency_hist: BTreeMap::new(),
            applied: 0,
            snap_rows: 0,
            resets: 0,
            warnings: 0,
            errors: Vec::new(),
            pulls: BTreeMap::new(),
            heartbeat: heartbeat.max(1),
        }
    }

    /// Fire a one-shot pull of `table`; the reply lands in
    /// [`SubscriberActor::pulls`] under `req`.
    pub fn pull(&mut self, ctx: &mut Ctx<'_>, req: i64, table: &str) {
        ctx.send_observed(
            &self.server,
            PULL_TABLE,
            row(vec![
                Value::str(ctx.me()),
                Value::Int(req),
                Value::str(table),
            ]),
        );
    }

    /// Retire one subscription.
    pub fn unsubscribe(&mut self, ctx: &mut Ctx<'_>, tag: i64) {
        self.specs.remove(&tag);
        self.mirrors.remove(&tag);
        ctx.send_observed(
            &self.server,
            UNSUB_TABLE,
            row(vec![Value::str(ctx.me()), Value::Int(tag)]),
        );
    }

    /// Number of live subscriptions on this actor.
    pub fn sub_count(&self) -> usize {
        self.specs.len()
    }

    /// Merge this subscriber's latency histogram into `hist`.
    pub fn merge_latencies(&self, hist: &mut BTreeMap<u64, u64>) {
        for (&lat, &n) in &self.latency_hist {
            *hist.entry(lat).or_default() += n;
        }
    }

    fn send_subs(&self, ctx: &mut Ctx<'_>) {
        for (&tag, spec) in &self.specs {
            ctx.send_observed(&self.server, SUB_TABLE, row(spec.to_row(ctx.me(), tag)));
        }
    }

    fn apply_delta(&mut self, ctx: &mut Ctx<'_>, tuple: &NetTuple) {
        let Some(entries) = tuple.row.get(1).and_then(Value::as_list) else {
            return;
        };
        // Highest seq applied per tag this batch → one batched ack.
        let mut acks: BTreeMap<i64, i64> = BTreeMap::new();
        for e in entries {
            let Some(rec) = e.as_list() else { continue };
            let (Some(tag), Some(seq), Some(op), Some(time), Some(rowvals)) = (
                rec.first().and_then(Value::as_int),
                rec.get(1).and_then(Value::as_int),
                rec.get(2).and_then(Value::as_int),
                rec.get(4).and_then(Value::as_int),
                rec.get(5).and_then(Value::as_list),
            ) else {
                continue;
            };
            let mirror = self.mirrors.entry(tag).or_default();
            match op {
                OP_INSERT => {
                    mirror.insert(rowvals.to_vec());
                    self.applied += 1;
                    let lat = ctx.now().saturating_sub(time as u64);
                    *self.latency_hist.entry(lat).or_default() += 1;
                }
                OP_DELETE => {
                    mirror.remove(rowvals);
                    self.applied += 1;
                    let lat = ctx.now().saturating_sub(time as u64);
                    *self.latency_hist.entry(lat).or_default() += 1;
                }
                OP_RESET => {
                    mirror.clear();
                    self.resets += 1;
                }
                OP_SNAP => {
                    mirror.insert(rowvals.to_vec());
                    self.snap_rows += 1;
                }
                _ => {}
            }
            let a = acks.entry(tag).or_insert(0);
            *a = (*a).max(seq + 1);
        }
        if !acks.is_empty() {
            let entries: Vec<Value> = acks
                .into_iter()
                .map(|(tag, seq)| Value::list(vec![Value::Int(tag), Value::Int(seq)]))
                .collect();
            ctx.send_observed(
                &self.server,
                ACK_TABLE,
                row(vec![Value::str(ctx.me()), Value::list(entries)]),
            );
        }
    }
}

impl Actor for SubscriberActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.send_subs(ctx);
        ctx.set_timer(self.heartbeat, 0);
    }

    fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple) {
        match tuple.table.as_str() {
            DELTA_TABLE => self.apply_delta(ctx, &tuple),
            SUB_OK_TABLE => {
                if let Some(w) = tuple.row.get(2).and_then(Value::as_int) {
                    self.warnings += w as u64;
                }
            }
            PULL_OK_TABLE => {
                if let (Some(req), Some(as_of), Some(rows)) = (
                    tuple.row.first().and_then(Value::as_int),
                    tuple.row.get(1).and_then(Value::as_int),
                    tuple.row.get(2).and_then(Value::as_list),
                ) {
                    let rows = rows
                        .iter()
                        .filter_map(|r| r.as_list().map(<[Value]>::to_vec))
                        .collect();
                    self.pulls.insert(req, (as_of as u64, rows));
                }
            }
            ERR_TABLE => {
                if let (Some(tag), Some(msg)) = (
                    tuple.row.first().and_then(Value::as_int),
                    tuple.row.get(1).and_then(Value::as_str),
                ) {
                    self.errors.push((tag, msg.to_string()));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        ctx.set_timer(self.heartbeat, 0);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // Volatile mirrors are gone; re-subscribing resets every stream,
        // so the server replies with fresh snapshots.
        self.mirrors.clear();
        self.send_subs(ctx);
        ctx.set_timer(self.heartbeat, 0);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
