//! End-to-end serving-tier tests over a real BOOM-FS cluster: subscribe,
//! incremental deltas, unsubscribe, fan-out sharing, pull, backpressure,
//! and rejection of illegal queries with analyzer diagnostics.

use boom_fs::cluster::{nn_name, FsClusterBuilder};
use boom_overlog::Value;
use boom_serve::{fs_queries, ServeConfig, ServeHost, SubscriberActor, SubscriptionSpec};
use boom_simnet::OverlogActor;

fn attach_host(cluster: &mut boom_fs::cluster::FsCluster) {
    let nn = nn_name(0);
    cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        a.add_hook(Box::new(ServeHost::new(ServeConfig::default())));
    });
}

fn add_watcher(
    cluster: &mut boom_fs::cluster::FsCluster,
    name: &str,
    specs: Vec<(i64, SubscriptionSpec)>,
) {
    let nn = nn_name(0);
    cluster
        .sim
        .add_node(name, Box::new(SubscriberActor::new(&nn, specs, 200)));
}

/// The mirror a subscriber converges to must equal the server-side query
/// view, row for row.
fn server_rows(cluster: &mut boom_fs::cluster::FsCluster, table: &str) -> Vec<Vec<Value>> {
    let nn = nn_name(0);
    cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        a.runtime_ref()
            .table(table)
            .map(|t| t.sorted_rows().into_iter().map(|r| r.to_vec()).collect())
            .unwrap_or_default()
    })
}

#[test]
fn subscribe_streams_namespace_churn() {
    let mut cluster = FsClusterBuilder::default().build();
    attach_host(&mut cluster);
    add_watcher(&mut cluster, "watch0", vec![(1, fs_queries::file_status())]);
    cluster.sim.run_for(1_000);

    cluster.client.mkdir(&mut cluster.sim, "/a").unwrap();
    cluster.client.create(&mut cluster.sim, "/a/x").unwrap();
    cluster.client.create(&mut cluster.sim, "/a/y").unwrap();
    cluster.sim.run_for(2_000);

    let (mirror, applied) = cluster.sim.with_actor::<SubscriberActor, _>("watch0", |w| {
        (w.mirrors.get(&1).cloned().unwrap_or_default(), w.applied)
    });
    let paths: Vec<String> = mirror
        .iter()
        .filter_map(|r| r.first().and_then(Value::as_str).map(str::to_string))
        .collect();
    assert!(paths.contains(&"/a/x".to_string()), "mirror: {paths:?}");
    assert!(paths.contains(&"/a/y".to_string()), "mirror: {paths:?}");
    assert!(applied > 0, "deltas flowed incrementally");

    // Retract flows too: removing a file removes its fqpath rows.
    cluster.client.rm(&mut cluster.sim, "/a/y").unwrap();
    cluster.sim.run_for(2_000);
    let mirror = cluster
        .sim
        .with_actor::<SubscriberActor, _>("watch0", |w| w.mirrors.get(&1).cloned().unwrap());
    let paths: Vec<String> = mirror
        .iter()
        .filter_map(|r| r.first().and_then(Value::as_str).map(str::to_string))
        .collect();
    assert!(!paths.contains(&"/a/y".to_string()), "mirror: {paths:?}");

    // And the mirror is exactly the server-side view.
    let nn_table = cluster.sim.with_actor::<OverlogActor, _>(&nn_name(0), |a| {
        a.hook_mut::<ServeHost>().unwrap();
        "srv_q0".to_string()
    });
    let server = server_rows(&mut cluster, &nn_table);
    assert_eq!(mirror.into_iter().collect::<Vec<_>>(), server);
}

#[test]
fn late_subscriber_gets_snapshot_of_preexisting_state() {
    let mut cluster = FsClusterBuilder::default().build();
    attach_host(&mut cluster);
    cluster.sim.run_for(500);
    cluster.client.mkdir(&mut cluster.sim, "/pre").unwrap();
    cluster.client.create(&mut cluster.sim, "/pre/x").unwrap();
    cluster.sim.run_for(1_000);

    // Subscribe *after* the namespace exists: the stream must open with a
    // snapshot of the current result set.
    add_watcher(&mut cluster, "late0", vec![(7, fs_queries::file_status())]);
    cluster.sim.run_for(2_000);
    let (mirror, snap_rows) = cluster.sim.with_actor::<SubscriberActor, _>("late0", |w| {
        (w.mirrors.get(&7).cloned().unwrap_or_default(), w.snap_rows)
    });
    let paths: Vec<String> = mirror
        .iter()
        .filter_map(|r| r.first().and_then(Value::as_str).map(str::to_string))
        .collect();
    assert!(paths.contains(&"/pre/x".to_string()), "mirror: {paths:?}");
    assert!(snap_rows > 0, "opened with a snapshot");
}

#[test]
fn fanout_sharing_and_unsubscribe_retire_views() {
    let mut cluster = FsClusterBuilder::default().build();
    attach_host(&mut cluster);
    // Three subscriptions, two distinct queries → two installed views.
    add_watcher(
        &mut cluster,
        "watch0",
        vec![
            (1, fs_queries::file_status()),
            (2, fs_queries::replication_health()),
        ],
    );
    add_watcher(&mut cluster, "watch1", vec![(1, fs_queries::file_status())]);
    cluster.sim.run_for(1_000);
    let nn = nn_name(0);
    let (subs, queries, rules_now) = cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        let rules = a.runtime_ref().rule_count();
        let h = a.hook_mut::<ServeHost>().unwrap();
        (h.sub_count(), h.query_count(), rules)
    });
    assert_eq!(subs, 3);
    assert_eq!(queries, 2, "identical queries share one view");

    // Unsubscribing the last subscriber of a query uninstalls its view
    // (rule count drops back). Inject the unsubscribe directly — the same
    // wire format SubscriberActor::unsubscribe sends.
    cluster.sim.inject(
        &nn,
        boom_serve::UNSUB_TABLE,
        boom_overlog::value::row(vec![Value::str("watch0"), Value::Int(2)]),
    );
    cluster.sim.run_for(1_000);
    let (subs, queries, rules_after) = cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        let rules = a.runtime_ref().rule_count();
        let h = a.hook_mut::<ServeHost>().unwrap();
        (h.sub_count(), h.query_count(), rules)
    });
    assert_eq!(subs, 2);
    assert_eq!(queries, 1, "orphaned query view retired");
    assert!(rules_after < rules_now, "its rule left the plan");
}

#[test]
fn illegal_query_is_rejected_with_diagnostics() {
    let mut cluster = FsClusterBuilder::default().build();
    attach_host(&mut cluster);
    // Unknown table in the body → analyzer rejects, subscriber gets the
    // diagnostic, nothing is installed.
    add_watcher(
        &mut cluster,
        "bad0",
        vec![(
            1,
            SubscriptionSpec::new("bogus", "0", "Int", "X", "no_such_table(X)"),
        )],
    );
    cluster.sim.run_for(1_000);
    let errors = cluster
        .sim
        .with_actor::<SubscriberActor, _>("bad0", |w| w.errors.clone());
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].1.contains("no_such_table"), "{errors:?}");
    let nn = nn_name(0);
    let queries = cluster
        .sim
        .with_actor::<OverlogActor, _>(&nn, |a| a.hook_mut::<ServeHost>().unwrap().query_count());
    assert_eq!(queries, 0);
}

#[test]
fn pull_returns_bounded_stale_snapshot() {
    let mut cluster = FsClusterBuilder::default().build();
    attach_host(&mut cluster);
    add_watcher(&mut cluster, "watch0", vec![(1, fs_queries::file_status())]);
    cluster.sim.run_for(500);
    cluster.client.mkdir(&mut cluster.sim, "/d").unwrap();
    cluster.sim.run_for(1_000);

    // Fire a pull from inside the subscriber actor.
    let nn = nn_name(0);
    let t_req = cluster.sim.now();
    cluster.sim.inject(
        &nn,
        boom_serve::PULL_TABLE,
        boom_overlog::value::row(vec![
            Value::str("watch0"),
            Value::Int(99),
            Value::str("fqpath"),
        ]),
    );
    cluster.sim.run_for(1_000);
    let pulls = cluster
        .sim
        .with_actor::<SubscriberActor, _>("watch0", |w| w.pulls.clone());
    let (as_of, rows) = pulls.get(&99).expect("pull completed");
    assert!(*as_of >= t_req, "snapshot is no older than the request");
    let paths: Vec<&str> = rows.iter().filter_map(|r| r[0].as_str()).collect();
    assert!(paths.contains(&"/d"), "{paths:?}");

    // Pulling an unknown table errors instead of hanging.
    cluster.sim.inject(
        &nn,
        boom_serve::PULL_TABLE,
        boom_overlog::value::row(vec![
            Value::str("watch0"),
            Value::Int(100),
            Value::str("nope"),
        ]),
    );
    cluster.sim.run_for(1_000);
    let errors = cluster
        .sim
        .with_actor::<SubscriberActor, _>("watch0", |w| w.errors.clone());
    assert!(errors.iter().any(|(t, m)| *t == 100 && m.contains("nope")));
}

#[test]
fn backpressure_drops_are_counted_and_resynced() {
    let mut cluster = FsClusterBuilder::default().build();
    let nn = nn_name(0);
    // A pathologically small queue with a long ack timeout: churn must
    // overflow it, and every overflow must be counted + resynced.
    cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        a.add_hook(Box::new(ServeHost::new(ServeConfig {
            queue_cap: 2,
            window: 1,
            ack_timeout: 1_000,
            resync_backoff: 200,
        })));
    });
    add_watcher(&mut cluster, "watch0", vec![(1, fs_queries::file_status())]);
    cluster.sim.run_for(500);
    // Cut the delta path: no deliveries → no acks → the 1-record window
    // stalls and churn piles into the 2-slot queue.
    cluster.sim.set_link_blocked(&nn, "watch0", true);
    for i in 0..40 {
        cluster
            .client
            .create(&mut cluster.sim, &format!("/f{i}"))
            .unwrap();
    }
    cluster.sim.set_link_blocked(&nn, "watch0", false);
    cluster.sim.run_for(20_000);
    let (dropped, resyncs) = cluster.sim.with_actor::<OverlogActor, _>(&nn, |a| {
        let h = a.hook_mut::<ServeHost>().unwrap();
        (h.total_dropped, h.total_resyncs)
    });
    assert!(dropped > 0, "tiny queue must overflow");
    assert!(resyncs > 0, "drops are compensated with snapshots");
    // Despite the drops, the subscriber converges to the exact view.
    let resets = cluster
        .sim
        .with_actor::<SubscriberActor, _>("watch0", |w| w.resets);
    assert!(resets > 0, "client saw the stream reset (never silent)");
    let mirror = cluster.sim.with_actor::<SubscriberActor, _>("watch0", |w| {
        w.mirrors.get(&1).cloned().unwrap_or_default()
    });
    let server = server_rows(&mut cluster, "srv_q0");
    assert_eq!(mirror.into_iter().collect::<Vec<_>>(), server);
}
