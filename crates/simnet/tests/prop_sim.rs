//! Property tests for the simulator itself: bit-determinism under
//! arbitrary configurations, conservation of messages, and crash/epoch
//! bookkeeping — the foundations every experiment's reproducibility rests
//! on.

use boom_overlog::{value::row, NetTuple, Value};
use boom_simnet::{Actor, Ctx, Sim, SimConfig};
use proptest::prelude::*;
use std::any::Any;

/// A chatty actor: forwards each received tuple to a derived target with a
/// hop counter, so traffic patterns depend sensitively on delivery order.
struct Forwarder {
    peers: Vec<String>,
    received: Vec<(u64, i64)>, // (arrival time, hop)
}

impl Actor for Forwarder {
    fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple) {
        let hop = tuple.row[0].as_int().unwrap_or(0);
        self.received.push((ctx.now(), hop));
        if hop < 12 {
            let next = self.peers[(hop as usize + ctx.now() as usize) % self.peers.len()].clone();
            ctx.send(&next, "hop", row(vec![Value::Int(hop + 1)]));
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn run_trace(cfg: SimConfig, crash_at: Option<u64>) -> Vec<(String, Vec<(u64, i64)>)> {
    let peers: Vec<String> = (0..4).map(|i| format!("n{i}")).collect();
    let mut sim = Sim::new(cfg);
    for p in &peers {
        sim.add_node(
            p,
            Box::new(Forwarder {
                peers: peers.clone(),
                received: Vec::new(),
            }),
        );
    }
    for i in 0..3 {
        sim.inject(&peers[i % 4], "hop", row(vec![Value::Int(0)]));
    }
    if let Some(at) = crash_at {
        sim.schedule_crash("n1", at);
        sim.schedule_restart("n1", at + 500);
    }
    sim.run_until(20_000);
    peers
        .iter()
        .map(|p| {
            let r = sim.with_actor::<Forwarder, _>(p, |f| f.received.clone());
            (p.clone(), r)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical config → identical full message trace, including drops,
    /// duplicates, and crash interactions.
    #[test]
    fn same_seed_same_trace(
        seed in 0u64..10_000,
        drop in prop_oneof![Just(0.0), Just(0.1)],
        dup in prop_oneof![Just(0.0), Just(0.1)],
        max_lat in 1u64..50,
        crash_at in proptest::option::of(100u64..5_000),
    ) {
        let cfg = SimConfig {
            seed,
            min_latency: 1,
            max_latency: max_lat,
            drop_prob: drop,
            duplicate_prob: dup,
        };
        let a = run_trace(cfg.clone(), crash_at);
        let b = run_trace(cfg, crash_at);
        prop_assert_eq!(a, b);
    }

    /// With no loss and no crashes, every send is eventually delivered:
    /// delivered + still-queued-at-horizon accounts for everything.
    #[test]
    fn lossless_network_delivers_everything(seed in 0u64..10_000) {
        let cfg = SimConfig {
            seed,
            min_latency: 1,
            max_latency: 10,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        };
        let traces = run_trace(cfg, None);
        let total: usize = traces.iter().map(|(_, r)| r.len()).sum();
        // 3 seeds × 13 hops each (0..=12) = 39 deliveries.
        prop_assert_eq!(total, 39);
    }

    /// Crashing a node only loses messages addressed to it while down;
    /// the rest of the fleet's bookkeeping stays consistent.
    #[test]
    fn crash_only_affects_the_victim(seed in 0u64..10_000, at in 100u64..3_000) {
        let cfg = SimConfig {
            seed,
            min_latency: 1,
            max_latency: 10,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        };
        let traces = run_trace(cfg, Some(at));
        let total: usize = traces.iter().map(|(_, r)| r.len()).sum();
        prop_assert!(total <= 39, "crash cannot create messages: {total}");
        // Survivors never observe time going backwards.
        for (_, r) in &traces {
            for w in r.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
            }
        }
    }
}
