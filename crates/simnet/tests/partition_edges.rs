//! Edge-case coverage for `Sim::set_partition` and for `dropped_count`
//! accounting under message duplication — the corner cases a chaos
//! schedule leans on: cuts landing while messages are in flight, heals
//! mid-run, crashes during a partition, and duplicated deliveries racing a
//! crash.

use boom_overlog::value::row;
use boom_overlog::{NetTuple, Value};
use boom_simnet::{Actor, Ctx, Sim, SimConfig};
use std::any::Any;

struct Counter {
    got: Vec<NetTuple>,
}
impl Counter {
    fn new() -> Self {
        Counter { got: Vec::new() }
    }
}
impl Actor for Counter {
    fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, tuple: NetTuple) {
        self.got.push(tuple);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends one tuple to `target` every `period` ms, tagged with send time.
struct Pinger {
    target: String,
    period: u64,
}
impl Actor for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.period, 0);
    }
    fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, _tuple: NetTuple) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        let target = self.target.clone();
        let t = ctx.now() as i64;
        ctx.send(&target, "ping", row(vec![Value::Int(t)]));
        ctx.set_timer(self.period, 0);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn slow_pair(latency: u64) -> Sim {
    let mut sim = Sim::new(SimConfig {
        min_latency: latency,
        max_latency: latency,
        ..Default::default()
    });
    sim.add_node(
        "p",
        Box::new(Pinger {
            target: "c".into(),
            period: 100,
        }),
    );
    sim.add_node("c", Box::new(Counter::new()));
    sim
}

#[test]
fn message_in_flight_survives_partition_cut() {
    // 50ms latency: the ping sent at t=100 is in flight when the cut lands
    // at t=120. Partitions block *sends*, not messages already queued —
    // matching a real network where a cut doesn't vaporize packets already
    // on the far side of the switch.
    let mut sim = slow_pair(50);
    sim.run_until(120);
    sim.set_partition(&["p"], &["c"], true);
    sim.run_until(1_000);
    let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
    assert_eq!(got, 1, "the in-flight ping lands; everything after is cut");
    assert!(sim.dropped_count() >= 8, "pings at 200..900 all blocked");
}

#[test]
fn asymmetric_partition_blocks_one_direction_only() {
    // Two pingers aimed at each other; cut only p→c.
    let mut sim = Sim::new(SimConfig {
        min_latency: 1,
        max_latency: 1,
        ..Default::default()
    });
    sim.add_node(
        "p",
        Box::new(Pinger {
            target: "c".into(),
            period: 100,
        }),
    );
    sim.add_node(
        "c",
        Box::new(Pinger {
            target: "p".into(),
            period: 100,
        }),
    );
    sim.add_node("watch_p", Box::new(Counter::new()));
    sim.set_link_blocked("p", "c", true);
    sim.run_until(1_049);
    // c→p still flows: p's deliveries count; p→c all dropped.
    assert_eq!(sim.dropped_count(), 10, "10 pings p→c blocked");
    assert_eq!(sim.delivered_count(), 10, "10 pings c→p delivered");
}

#[test]
fn heal_mid_run_resumes_traffic_without_replay() {
    let mut sim = slow_pair(1);
    sim.run_until(250);
    sim.set_partition(&["p"], &["c"], true);
    sim.run_until(650);
    sim.set_partition(&["p"], &["c"], false);
    sim.run_until(1_049);
    let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
    // 100,200 before the cut; 300..600 lost for good (no replay); 700..1000
    // after the heal.
    assert_eq!(got, 2 + 4);
    assert_eq!(
        sim.dropped_count(),
        4,
        "blocked sends are dropped, not queued"
    );
}

#[test]
fn crash_during_partition_and_heal_after_restart() {
    // Cut p|c, crash c inside the window, restart it, then heal. The node
    // must come back cleanly and receive only post-heal traffic.
    let mut sim = slow_pair(1);
    sim.run_until(150);
    sim.set_partition(&["p"], &["c"], true);
    sim.schedule_crash("c", 300);
    sim.schedule_restart("c", 500);
    sim.run_until(750);
    sim.set_partition(&["p"], &["c"], false);
    sim.run_until(1_049);
    let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
    assert_eq!(got, 1 + 3, "ping at 100 pre-cut; 800,900,1000 post-heal");
    // Pings at 200..700 were blocked by the partition (the crash is
    // invisible behind the cut — blocked links drop first).
    assert_eq!(sim.dropped_count(), 6);
    let log = sim.fault_log();
    assert_eq!(log.len(), 2);
    assert_eq!((log[0].at, log[0].action.as_str()), (300, "crash c"));
    assert_eq!((log[1].at, log[1].action.as_str()), (500, "restart c"));
}

#[test]
fn partition_blocks_duplicates_too() {
    // With duplicate_prob = 1.0 every surviving message arrives twice, but
    // blocked sends are counted dropped exactly once (the duplicate draw
    // happens after the block check — a blocked send never forks).
    let mut sim = Sim::new(SimConfig {
        min_latency: 1,
        max_latency: 1,
        duplicate_prob: 1.0,
        ..Default::default()
    });
    sim.add_node(
        "p",
        Box::new(Pinger {
            target: "c".into(),
            period: 100,
        }),
    );
    sim.add_node("c", Box::new(Counter::new()));
    sim.run_until(450);
    sim.set_partition(&["p"], &["c"], true);
    sim.run_until(1_049);
    let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
    assert_eq!(got, 8, "4 pre-cut pings × 2 copies");
    assert_eq!(sim.delivered_count(), 8);
    assert_eq!(sim.dropped_count(), 6, "6 blocked pings, one drop each");
}

#[test]
fn duplicated_message_racing_a_crash_counts_both_copies_dropped() {
    // Duplicate of every message, crash the receiver while copies are in
    // flight: both copies must be accounted as dropped (epoch mismatch),
    // keeping delivered + dropped == 2 × sends.
    let mut sim = Sim::new(SimConfig {
        min_latency: 5,
        max_latency: 5,
        duplicate_prob: 1.0,
        ..Default::default()
    });
    sim.add_node(
        "p",
        Box::new(Pinger {
            target: "c".into(),
            period: 100,
        }),
    );
    sim.add_node("c", Box::new(Counter::new()));
    // Pings sent at 100..1000; crash at 402 catches the t=400 ping (and its
    // duplicate) mid-flight. No restart: everything after is dropped too.
    sim.schedule_crash("c", 402);
    sim.run_until(1_049);
    let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
    assert_eq!(got, 6, "pings at 100,200,300 × 2 copies");
    assert_eq!(sim.delivered_count(), 6);
    assert_eq!(
        sim.dropped_count(),
        14,
        "7 pings (400..1000) × 2 copies dropped"
    );
}
