//! # boom-simnet — deterministic discrete-event cluster simulator
//!
//! The substrate every BOOM experiment runs on. The paper evaluated on
//! Amazon EC2 clusters of up to ~100 VMs; this crate substitutes a
//! deterministic simulator so the identical protocol and scheduling code
//! paths run under precisely controlled latency, stragglers, and failures —
//! and results reproduce bit-for-bit from a seed.
//!
//! A simulation is a set of named nodes, each hosting an [`Actor`]. All
//! inter-node communication is **tuples** ([`NetTuple`] from
//! `boom-overlog`): the data-centric discipline the paper advocates applies
//! to the imperative actors too. Messages incur configurable latency, may
//! be dropped or duplicated, and links can be partitioned; nodes can crash
//! and restart.
//!
//! ```
//! use boom_simnet::{Sim, SimConfig, Actor, Ctx};
//! use boom_overlog::{NetTuple, value::row, Value};
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple) {
//!         if tuple.table == "ping" {
//!             let from = tuple.row[0].as_str().unwrap().to_string();
//!             ctx.send(&from, "pong", row(vec![boom_overlog::Value::addr(ctx.me())]));
//!         }
//!     }
//!     fn as_any(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default());
//! sim.add_node("a", Box::new(Echo));
//! sim.add_node("b", Box::new(Echo));
//! sim.inject("a", "ping", row(vec![Value::addr("b")]));
//! sim.run_for(1_000);
//! assert!(sim.delivered_count() >= 2);
//! ```

pub mod chaos;
pub mod durable;
pub mod metrics;
pub mod overlog_actor;

use boom_overlog::{NetTuple, Row, Value};
use chaos::{ChaosAction, FaultRecord, LinkFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

pub use chaos::ChaosSchedule;
pub use durable::{DurableStore, Recovered, WalBatch};
pub use overlog_actor::{
    overlog_state_fingerprint, set_plan_options_all, CheckpointPolicy, OverlogActor, RecoveryStats,
    ServeHook,
};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; everything (latency, drops, workload helpers) derives from
    /// it.
    pub seed: u64,
    /// Minimum one-way message latency (ms).
    pub min_latency: u64,
    /// Maximum one-way message latency (ms, inclusive).
    pub max_latency: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is delivered twice.
    pub duplicate_prob: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            min_latency: 1,
            max_latency: 5,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }
}

/// A node-resident behavior. All hooks receive a [`Ctx`] for sending
/// tuples, arming timers, and reading the clock.
///
/// Actors must be `Send` so the parallel engine (the `parallel` cargo
/// feature) can evaluate nodes scheduled at the same virtual instant on
/// separate threads.
pub trait Actor: Send {
    /// Called once when the simulation starts (or the node is added to a
    /// running simulation).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    /// A tuple addressed to this node arrived.
    fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple);
    /// A batch of tuples with identical arrival time. The simulator
    /// coalesces same-instant deliveries; override to process a batch
    /// atomically (the Overlog adapter ticks once per batch instead of once
    /// per tuple).
    fn on_tuples(&mut self, ctx: &mut Ctx<'_>, tuples: Vec<NetTuple>) {
        for t in tuples {
            self.on_tuple(ctx, t);
        }
    }
    /// A timer armed with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}
    /// The node restarted after a crash. Volatile state should be reset
    /// here; "disk" state may survive at the actor's discretion.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {}
    /// Downcast support so tests and harnesses can reach into actors.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// What an actor may do during a callback.
pub struct Ctx<'a> {
    now: u64,
    me: &'a str,
    /// `None` during parallel callbacks: the simulation RNG is shared
    /// state, so actors may only draw from it on the serial path.
    rng: Option<&'a mut StdRng>,
    outbox: Vec<(String, NetTuple)>,
    /// Observer-channel sends ([`Ctx::send_observed`]): routed with fixed
    /// latency and zero RNG draws so attaching observers never perturbs the
    /// simulation's random stream.
    obs_outbox: Vec<(String, NetTuple)>,
    timers: Vec<(u64, u64)>, // (fire_at, tag)
}

impl Ctx<'_> {
    /// Current virtual time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This node's name.
    pub fn me(&self) -> &str {
        self.me
    }

    /// Deterministic per-simulation randomness.
    ///
    /// # Panics
    ///
    /// Panics during parallel evaluation (see [`Sim::set_parallel`]): the
    /// RNG is simulator-global, so an actor that draws from it inside a
    /// callback cannot be evaluated concurrently. Such actors must run
    /// with the parallel flag off.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
            .as_deref_mut()
            .expect("Ctx::rng is unavailable during parallel evaluation")
    }

    /// Send a tuple to `dest` (latency, drops and duplication applied by the
    /// simulator).
    pub fn send(&mut self, dest: &str, table: &str, row: Row) {
        self.outbox.push((
            dest.to_string(),
            NetTuple {
                dest: Arc::from(dest),
                table: table.to_string(),
                row,
            },
        ));
    }

    /// Forward an already-built [`NetTuple`].
    pub fn send_tuple(&mut self, tuple: NetTuple) {
        self.outbox.push((tuple.dest.to_string(), tuple));
    }

    /// Send a tuple on the *observer* channel: delivered as an ordinary sim
    /// event, but with fixed latency (`min_latency`, floored at 1) and **no
    /// RNG draws** — no random latency, loss, or duplication. Partitions
    /// ([`Sim::set_link_blocked`]) and crash epochs still apply, so chaos
    /// schedules affect observers too. This keeps the simulation's random
    /// stream byte-identical whether or not observers are attached — the
    /// serving tier's "observe, never perturb" guarantee.
    pub fn send_observed(&mut self, dest: &str, table: &str, row: Row) {
        self.obs_outbox.push((
            dest.to_string(),
            NetTuple {
                dest: Arc::from(dest),
                table: table.to_string(),
                row,
            },
        ));
    }

    /// Arm a timer that fires `delay` ms from now with the given tag.
    pub fn set_timer(&mut self, delay: u64, tag: u64) {
        self.timers.push((self.now + delay, tag));
    }
}

enum EventKind {
    /// Delivery of a tuple, with the Chrome-trace flow id assigned at send
    /// time (None when no recorder was attached or for duplicates).
    Deliver(String, NetTuple, Option<u64>),
    Timer(String, u64),
    Crash(String),
    Restart(String),
    Fault(ChaosAction),
}

struct Node {
    actor: Box<dyn Actor>,
    up: bool,
    /// Incremented on every crash; timers and in-flight deliveries armed
    /// before the crash are invalidated.
    epoch: u64,
}

/// Epoch marker for events that must survive crashes (crash/restart ops).
const ANY_EPOCH: u64 = u64::MAX;

/// The discrete-event simulator.
pub struct Sim {
    cfg: SimConfig,
    rng: StdRng,
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    events: HashMap<usize, (EventKind, u64)>,
    nodes: HashMap<String, Node>,
    blocked_links: HashSet<(String, String)>,
    /// Per-link quality overrides installed by chaos schedules (or
    /// directly); consulted on top of the global config in `route`.
    link_faults: HashMap<(String, String), LinkFault>,
    /// Active duplication burst: `(until, prob)`. Lazily expires.
    dup_burst: Option<(u64, f64)>,
    /// Every fault actually applied, in application order.
    fault_log: Vec<FaultRecord>,
    /// Per-node durable storage, surviving crash/restart (see
    /// [`durable::DurableStore`]); disk-fault chaos actions route here.
    durable: Option<durable::DurableStore>,
    delivered: u64,
    dropped: u64,
    /// Optional Chrome trace-event recorder (`boom-trace`). When attached,
    /// message flows, delivery spans and fault markers are recorded; the
    /// RNG stream is never touched, so recorded and bare runs take
    /// identical schedules.
    recorder: Option<boom_trace::ChromeRecorder>,
    /// Evaluate same-instant node callbacks concurrently (only effective
    /// when the `parallel` cargo feature is compiled in).
    parallel: bool,
    /// Instants actually evaluated by the parallel engine.
    parallel_rounds: u64,
    /// Instants handed back to the serial engine because only one event
    /// was scheduled (no parallelism to extract).
    par_fallback_single: u64,
    /// Instants handed back to the serial engine because they mixed in a
    /// crash, restart, or chaos event.
    par_fallback_mixed: u64,
}

/// Why (and how often) same-instant evaluation ran in parallel — see
/// [`Sim::parallelism_report`]. Benches print this so a run that silently
/// fell back to the serial engine can explain itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelismReport {
    /// The `parallel` cargo feature is compiled in.
    pub feature_compiled: bool,
    /// [`Sim::set_parallel`] was called with `true` (and stuck).
    pub enabled: bool,
    /// A recorder is attached: every instant takes the serial path to
    /// keep span order stable.
    pub recorder_attached: bool,
    /// `SimConfig::min_latency == 0`: every instant takes the serial path
    /// because a callback could extend the very instant being evaluated.
    pub zero_latency: bool,
    /// Instants evaluated by the parallel engine.
    pub parallel_rounds: u64,
    /// Single-event instants handed back to the serial engine.
    pub serial_fallback_single: u64,
    /// Instants containing crash/restart/chaos events handed back to the
    /// serial engine.
    pub serial_fallback_mixed: u64,
}

impl Sim {
    /// Create a simulator.
    pub fn new(cfg: SimConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Sim {
            cfg,
            rng,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            nodes: HashMap::new(),
            blocked_links: HashSet::new(),
            link_faults: HashMap::new(),
            dup_burst: None,
            fault_log: Vec::new(),
            durable: None,
            delivered: 0,
            dropped: 0,
            recorder: None,
            parallel: false,
            parallel_rounds: 0,
            par_fallback_single: 0,
            par_fallback_mixed: 0,
        }
    }

    /// Request parallel same-instant node evaluation.
    ///
    /// When enabled (and the `parallel` cargo feature is compiled in), all
    /// deliveries and timers scheduled for the same virtual instant are
    /// evaluated concurrently — one thread per node — and their outputs are
    /// absorbed in the exact order the serial engine would have produced
    /// them. Schedules, RNG streams, fault logs, and state fingerprints are
    /// byte-identical to serial execution; only wall-clock time changes.
    ///
    /// The engine silently falls back to the serial path whenever
    /// correctness requires it: when a recorder is attached (span order),
    /// when `min_latency == 0` (a callback could extend the very instant
    /// being evaluated), and for any instant containing a crash, restart,
    /// or chaos event (those mutate shared simulator state mid-instant).
    ///
    /// Returns whether the engine is now in the requested mode; `false`
    /// means the `parallel` feature is not compiled in and the simulator
    /// stays serial.
    pub fn set_parallel(&mut self, on: bool) -> bool {
        if cfg!(feature = "parallel") {
            self.parallel = on;
        }
        self.parallel == on
    }

    /// Is parallel same-instant evaluation currently requested?
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Why (and how often) instants ran in parallel so far.
    ///
    /// The serial fallbacks documented on [`Sim::set_parallel`] are
    /// otherwise silent; harnesses and benches use this to report whether
    /// a "parallel" run actually parallelized: `recorder_attached` or
    /// `zero_latency` mean *every* instant was serial, and the three
    /// counters break down the per-instant decisions the engine made.
    pub fn parallelism_report(&self) -> ParallelismReport {
        ParallelismReport {
            feature_compiled: cfg!(feature = "parallel"),
            enabled: self.parallel,
            recorder_attached: self.recorder.is_some(),
            zero_latency: self.cfg.min_latency == 0,
            parallel_rounds: self.parallel_rounds,
            serial_fallback_single: self.par_fallback_single,
            serial_fallback_mixed: self.par_fallback_mixed,
        }
    }

    /// Attach a Chrome trace-event recorder; subsequent sends, deliveries,
    /// timer/tuple processing spans and faults are recorded into it.
    pub fn set_recorder(&mut self, r: boom_trace::ChromeRecorder) {
        self.recorder = Some(r);
    }

    /// Borrow the attached recorder (to add harness-level marks/spans).
    pub fn recorder_mut(&mut self) -> Option<&mut boom_trace::ChromeRecorder> {
        self.recorder.as_mut()
    }

    /// Detach and return the recorder, e.g. to render its JSON.
    pub fn take_recorder(&mut self) -> Option<boom_trace::ChromeRecorder> {
        self.recorder.take()
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total tuples delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Total tuples dropped (loss probability, partitions, or down nodes).
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Add a node and invoke its `on_start`.
    pub fn add_node(&mut self, name: &str, actor: Box<dyn Actor>) {
        let mut node = Node {
            actor,
            up: true,
            epoch: 0,
        };
        let mut ctx = Ctx {
            now: self.now,
            me: name,
            rng: Some(&mut self.rng),
            outbox: Vec::new(),
            obs_outbox: Vec::new(),
            timers: Vec::new(),
        };
        node.actor.on_start(&mut ctx);
        let (outbox, obs, timers) = (ctx.outbox, ctx.obs_outbox, ctx.timers);
        self.nodes.insert(name.to_string(), node);
        self.absorb(name, outbox, obs, timers);
    }

    /// Node names, sorted.
    pub fn node_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.nodes.keys().cloned().collect();
        v.sort();
        v
    }

    /// Is the node currently up?
    pub fn is_up(&self, name: &str) -> bool {
        self.nodes.get(name).map(|n| n.up).unwrap_or(false)
    }

    /// Deliver a tuple into the simulation immediately (at t = now), e.g.
    /// an external client request.
    pub fn inject(&mut self, dest: &str, table: &str, row: Row) {
        let t = NetTuple {
            dest: Arc::from(dest),
            table: table.to_string(),
            row,
        };
        let epoch = self.nodes.get(dest).map(|n| n.epoch).unwrap_or(0);
        let flow = self
            .recorder
            .as_mut()
            .map(|r| r.sent("client", dest, &t.table, self.now));
        self.push_event(
            self.now,
            EventKind::Deliver(dest.to_string(), t, flow),
            epoch,
        );
    }

    /// Schedule a crash of `node` at absolute time `at`.
    pub fn schedule_crash(&mut self, node: &str, at: u64) {
        self.push_event(at, EventKind::Crash(node.to_string()), ANY_EPOCH);
    }

    /// Schedule a restart of `node` at absolute time `at`.
    pub fn schedule_restart(&mut self, node: &str, at: u64) {
        self.push_event(at, EventKind::Restart(node.to_string()), ANY_EPOCH);
    }

    /// Schedule a [`ChaosAction`] at absolute time `at`. Prefer building a
    /// [`ChaosSchedule`] and calling [`Sim::install_chaos`]; this is the
    /// low-level hook it uses.
    pub fn schedule_fault(&mut self, at: u64, action: ChaosAction) {
        self.push_event(at, EventKind::Fault(action), ANY_EPOCH);
    }

    /// The log of every fault applied so far, in application order.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    /// Attach the cluster's durable storage: disk-fault chaos actions
    /// ([`ChaosAction::TornWrite`], [`ChaosAction::LoseSync`]) route to
    /// it. Actors hold their own clone of the handle; registering it here
    /// only makes it reachable from schedules and harnesses.
    pub fn set_durable_store(&mut self, store: durable::DurableStore) {
        self.durable = Some(store);
    }

    /// The attached durable storage, if any (cloned handle).
    pub fn durable_store(&self) -> Option<durable::DurableStore> {
        self.durable.clone()
    }

    /// Deterministic uniform draw in `0..=max` from the simulation RNG —
    /// the jitter source for client backoff, so retry traces replay from
    /// the seed.
    pub fn rand_jitter(&mut self, max: u64) -> u64 {
        self.rng.gen_range(0..=max)
    }

    /// Install a quality override on the directed link `from → to`.
    pub fn set_link_fault(&mut self, from: &str, to: &str, fault: LinkFault) {
        self.link_faults
            .insert((from.to_string(), to.to_string()), fault);
    }

    /// Remove any quality override on the directed link `from → to`.
    pub fn clear_link_fault(&mut self, from: &str, to: &str) {
        self.link_faults.remove(&(from.to_string(), to.to_string()));
    }

    /// Block or unblock the directed link `from → to`.
    pub fn set_link_blocked(&mut self, from: &str, to: &str, blocked: bool) {
        let key = (from.to_string(), to.to_string());
        if blocked {
            self.blocked_links.insert(key);
        } else {
            self.blocked_links.remove(&key);
        }
    }

    /// Symmetric partition helper: cut (or heal) both directions between
    /// two groups of nodes.
    pub fn set_partition(&mut self, group_a: &[&str], group_b: &[&str], cut: bool) {
        for a in group_a {
            for b in group_b {
                self.set_link_blocked(a, b, cut);
                self.set_link_blocked(b, a, cut);
            }
        }
    }

    /// Run a closure against a node's actor, downcast to its concrete type.
    ///
    /// Panics if the node does not exist or hosts a different type — both
    /// are harness bugs, not runtime conditions.
    pub fn with_actor<T: Actor + 'static, R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        let node = self
            .nodes
            .get_mut(name)
            .unwrap_or_else(|| panic!("no node named `{name}`"));
        let actor = node
            .actor
            .as_any()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node `{name}` hosts a different actor type"));
        f(actor)
    }

    /// Like [`Sim::with_actor`], but returns `None` when the node does not
    /// exist or hosts a different actor type — for sweeps over heterogeneous
    /// clusters.
    pub fn try_with_actor<T: Actor + 'static, R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let node = self.nodes.get_mut(name)?;
        node.actor.as_any().downcast_mut::<T>().map(f)
    }

    fn record_fault(&mut self, action: String) {
        self.fault_log.push(FaultRecord {
            at: self.now,
            action,
        });
    }

    fn apply_crash(&mut self, name: &str) {
        if let Some(node) = self.nodes.get_mut(name) {
            node.up = false;
            node.epoch += 1;
        }
    }

    fn apply_restart(&mut self, name: &str) {
        let Some(node) = self.nodes.get_mut(name) else {
            return;
        };
        if node.up {
            return;
        }
        node.up = true;
        let mut ctx = Ctx {
            now: self.now,
            me: name,
            rng: Some(&mut self.rng),
            outbox: Vec::new(),
            obs_outbox: Vec::new(),
            timers: Vec::new(),
        };
        node.actor.on_restart(&mut ctx);
        let (outbox, obs, timers) = (ctx.outbox, ctx.obs_outbox, ctx.timers);
        self.absorb(name, outbox, obs, timers);
    }

    fn apply_action(&mut self, action: ChaosAction) {
        match action {
            ChaosAction::Crash(name) => self.apply_crash(&name),
            ChaosAction::Restart(name) => self.apply_restart(&name),
            ChaosAction::Cut { a, b } => {
                let av: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
                let bv: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
                self.set_partition(&av, &bv, true);
            }
            ChaosAction::Heal { a, b } => {
                let av: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
                let bv: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
                self.set_partition(&av, &bv, false);
            }
            ChaosAction::SetLinkFault { from, to, fault } => {
                self.set_link_fault(&from, &to, fault);
            }
            ChaosAction::ClearLinkFault { from, to } => {
                self.clear_link_fault(&from, &to);
            }
            ChaosAction::DupBurst { dur, prob } => {
                // Overlapping bursts: the most recent one wins.
                self.dup_burst = Some((self.now + dur, prob));
            }
            ChaosAction::TornWrite { node } => {
                if let Some(store) = &self.durable {
                    store.inject_torn_write(&node);
                }
            }
            ChaosAction::LoseSync { node, dur } => {
                if let Some(store) = &self.durable {
                    store.inject_lose_sync(&node, self.now + dur);
                }
            }
        }
    }

    fn push_event(&mut self, at: u64, kind: EventKind, epoch: u64) {
        let id = self.seq as usize;
        self.seq += 1;
        self.events.insert(id, (kind, epoch));
        self.queue.push(Reverse((at, id as u64, id)));
    }

    fn absorb(
        &mut self,
        from: &str,
        outbox: Vec<(String, NetTuple)>,
        obs: Vec<(String, NetTuple)>,
        timers: Vec<(u64, u64)>,
    ) {
        for (dest, tuple) in outbox {
            self.route(from, &dest, tuple);
        }
        for (dest, tuple) in obs {
            self.route_observed(from, &dest, tuple);
        }
        let epoch = self.nodes.get(from).map(|n| n.epoch).unwrap_or(0);
        for (at, tag) in timers {
            self.push_event(at, EventKind::Timer(from.to_string(), tag), epoch);
        }
    }

    /// Route an observer-channel tuple ([`Ctx::send_observed`]): fixed
    /// latency, zero RNG draws (no random latency/loss/duplication), but
    /// partitions still drop (counted) and the destination's crash epoch is
    /// captured like any other delivery. Keeping the RNG untouched is what
    /// makes observer traffic invisible to the rest of the schedule.
    fn route_observed(&mut self, from: &str, dest: &str, tuple: NetTuple) {
        if from != dest
            && self
                .blocked_links
                .contains(&(from.to_string(), dest.to_string()))
        {
            self.dropped += 1;
            if let Some(r) = self.recorder.as_mut() {
                r.mark(
                    from,
                    &format!("blocked {} -> {dest}", tuple.table),
                    "net.drop",
                    self.now,
                );
            }
            return;
        }
        let lat = self.cfg.min_latency.max(1);
        let epoch = self.nodes.get(dest).map(|n| n.epoch).unwrap_or(0);
        let flow = self
            .recorder
            .as_mut()
            .map(|r| r.sent(from, dest, &tuple.table, self.now));
        self.push_event(
            self.now + lat,
            EventKind::Deliver(dest.to_string(), tuple, flow),
            epoch,
        );
    }

    fn route(&mut self, from: &str, dest: &str, tuple: NetTuple) {
        if from != dest
            && self
                .blocked_links
                .contains(&(from.to_string(), dest.to_string()))
        {
            self.dropped += 1;
            if let Some(r) = self.recorder.as_mut() {
                r.mark(
                    from,
                    &format!("blocked {} -> {dest}", tuple.table),
                    "net.drop",
                    self.now,
                );
            }
            return;
        }
        if self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob) {
            self.dropped += 1;
            if let Some(r) = self.recorder.as_mut() {
                r.mark(
                    from,
                    &format!("drop {} -> {dest}", tuple.table),
                    "net.drop",
                    self.now,
                );
            }
            return;
        }
        // Chaos overrides: only consulted (and only drawing from the RNG)
        // when a fault is actually installed, so fault-free runs keep the
        // exact random stream of earlier revisions.
        let fault = if self.link_faults.is_empty() || from == dest {
            None
        } else {
            self.link_faults
                .get(&(from.to_string(), dest.to_string()))
                .copied()
        };
        if let Some(f) = fault {
            if f.drop_prob > 0.0 && self.rng.gen_bool(f.drop_prob) {
                self.dropped += 1;
                return;
            }
        }
        let mut lat = if self.cfg.max_latency > self.cfg.min_latency {
            self.rng
                .gen_range(self.cfg.min_latency..=self.cfg.max_latency)
        } else {
            self.cfg.min_latency
        };
        if let Some(f) = fault {
            lat += f.extra_latency;
        }
        let epoch = self.nodes.get(dest).map(|n| n.epoch).unwrap_or(0);
        let mut dup = self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob);
        if let Some(f) = fault {
            if !dup && f.duplicate_prob > 0.0 {
                dup = self.rng.gen_bool(f.duplicate_prob);
            }
        }
        if let Some((until, prob)) = self.dup_burst {
            if self.now < until {
                if !dup && prob > 0.0 {
                    dup = self.rng.gen_bool(prob);
                }
            } else {
                self.dup_burst = None;
            }
        }
        let flow = self
            .recorder
            .as_mut()
            .map(|r| r.sent(from, dest, &tuple.table, self.now));
        self.push_event(
            self.now + lat,
            EventKind::Deliver(dest.to_string(), tuple.clone(), flow),
            epoch,
        );
        if dup {
            self.push_event(
                self.now + lat + 1,
                EventKind::Deliver(dest.to_string(), tuple, None),
                epoch,
            );
        }
    }

    /// Process the next event. Returns `false` when the queue is empty.
    ///
    /// With [`Sim::set_parallel`] enabled this processes *every* event
    /// scheduled for the next virtual instant, evaluating nodes
    /// concurrently; otherwise (and on the serial fallbacks documented
    /// there: recorder attached, `min_latency == 0`, single-event or
    /// crash/restart/chaos instants) it processes exactly one event.
    /// [`Sim::parallelism_report`] counts which way each instant went.
    pub fn step(&mut self) -> bool {
        #[cfg(feature = "parallel")]
        if self.parallel && self.recorder.is_none() && self.cfg.min_latency > 0 {
            return self.step_parallel();
        }
        self.step_serial()
    }

    /// Evaluate the entire next instant with one thread per node.
    ///
    /// Equivalence to the serial engine: events are drained in `(at, seq)`
    /// order exactly as the serial loop would pop them; per-tuple up/epoch
    /// checks happen up front (no crash/restart can occur mid-instant —
    /// mixed instants take the serial path); same-instant deliveries to one
    /// node coalesce into a single `on_tuples` batch anchored at the first
    /// delivery's sequence number, matching the serial coalescing rule; and
    /// every callback's outbox/timers are absorbed serially in ascending
    /// anchor order, so each RNG draw in `route` happens at the same point
    /// in the stream as under serial execution. Actor callbacks themselves
    /// never touch the simulation RNG ([`Ctx::rng`] panics here), so the
    /// thread interleaving is unobservable.
    #[cfg(feature = "parallel")]
    fn step_parallel(&mut self) -> bool {
        enum CbKind {
            Tuples(Vec<NetTuple>),
            Timer(u64),
        }
        struct Cb {
            seq: u64,
            kind: CbKind,
        }
        /// One callback's captured effects: its delivery sequence anchor,
        /// the tuples it sent (normal and observer channel), and the timers
        /// it set.
        type CbEffects = (
            u64,
            Vec<(String, NetTuple)>,
            Vec<(String, NetTuple)>,
            Vec<(u64, u64)>,
        );
        fn run_node(
            actor: &mut Box<dyn Actor>,
            me: &str,
            now: u64,
            cbs: Vec<Cb>,
        ) -> Vec<CbEffects> {
            cbs.into_iter()
                .map(|cb| {
                    let mut ctx = Ctx {
                        now,
                        me,
                        rng: None,
                        outbox: Vec::new(),
                        obs_outbox: Vec::new(),
                        timers: Vec::new(),
                    };
                    match cb.kind {
                        CbKind::Tuples(tuples) => actor.on_tuples(&mut ctx, tuples),
                        CbKind::Timer(tag) => actor.on_timer(&mut ctx, tag),
                    }
                    (cb.seq, ctx.outbox, ctx.obs_outbox, ctx.timers)
                })
                .collect()
        }

        let Some(&Reverse((at, _, _))) = self.queue.peek() else {
            return false;
        };
        // Drain every event scheduled for this instant, in seq order.
        let mut popped: Vec<(u64, usize)> = Vec::new();
        let mut plain = true;
        while let Some(&Reverse((at2, seq, id))) = self.queue.peek() {
            if at2 != at {
                break;
            }
            self.queue.pop();
            plain &= matches!(
                self.events.get(&id),
                Some((EventKind::Deliver(..) | EventKind::Timer(..), _))
            );
            popped.push((seq, id));
        }
        if !plain || popped.len() == 1 {
            // Crash/restart/chaos events mutate shared simulator state
            // between callbacks; hand the instant back to the serial engine
            // (re-pushing restores the exact (time, seq) heap order).
            if plain {
                self.par_fallback_single += 1;
            } else {
                self.par_fallback_mixed += 1;
            }
            for &(seq, id) in &popped {
                self.queue.push(Reverse((at, seq, id)));
            }
            return self.step_serial();
        }
        self.parallel_rounds += 1;
        self.now = self.now.max(at);

        // Group callbacks per node, preserving serial callback order via
        // each callback's anchor seq. All delivers to one node merge into
        // one batch anchored at the first; timers stay individual events.
        let mut per_node: HashMap<String, Vec<Cb>> = HashMap::new();
        for (seq, id) in popped {
            let Some((kind, armed_epoch)) = self.events.remove(&id) else {
                continue;
            };
            match kind {
                EventKind::Deliver(name, tuple, _flow) => {
                    let Some(node) = self.nodes.get(&name) else {
                        self.dropped += 1;
                        continue;
                    };
                    if !node.up || (armed_epoch != ANY_EPOCH && armed_epoch != node.epoch) {
                        self.dropped += 1;
                        continue;
                    }
                    self.delivered += 1;
                    let cbs = per_node.entry(name).or_default();
                    match cbs
                        .iter_mut()
                        .find(|cb| matches!(cb.kind, CbKind::Tuples(_)))
                    {
                        Some(Cb {
                            kind: CbKind::Tuples(batch),
                            ..
                        }) => batch.push(tuple),
                        _ => cbs.push(Cb {
                            seq,
                            kind: CbKind::Tuples(vec![tuple]),
                        }),
                    }
                }
                EventKind::Timer(name, tag) => {
                    let alive = self
                        .nodes
                        .get(&name)
                        .map(|n| n.up && n.epoch == armed_epoch)
                        .unwrap_or(false);
                    if alive {
                        per_node.entry(name).or_default().push(Cb {
                            seq,
                            kind: CbKind::Timer(tag),
                        });
                    }
                }
                _ => unreachable!("mixed instants take the serial path"),
            }
        }

        let now = self.now;
        let mut work: Vec<(&str, &mut Box<dyn Actor>, Vec<Cb>)> = Vec::new();
        for (name, node) in self.nodes.iter_mut() {
            if let Some(cbs) = per_node.remove(name) {
                work.push((name.as_str(), &mut node.actor, cbs));
            }
        }
        type NodeEffects = (
            String,
            u64,
            Vec<(String, NetTuple)>,
            Vec<(String, NetTuple)>,
            Vec<(u64, u64)>,
        );
        let mut results: Vec<NodeEffects> = match work.len() {
            0 => return true,
            1 => {
                // Single busy node: skip thread spawn overhead.
                let (name, actor, cbs) = work.pop().expect("len checked");
                run_node(actor, name, now, cbs)
                    .into_iter()
                    .map(|(seq, out, obs, tm)| (name.to_string(), seq, out, obs, tm))
                    .collect()
            }
            _ => std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .into_iter()
                    .map(|(name, actor, cbs)| {
                        scope.spawn(move || (name, run_node(actor, name, now, cbs)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| {
                        let (name, outs) = h.join().expect("actor panicked in parallel evaluation");
                        outs.into_iter()
                            .map(|(seq, out, obs, tm)| (name.to_string(), seq, out, obs, tm))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            }),
        };
        // Absorb outputs in the order the serial engine would have produced
        // them, so every RNG draw happens at the same point in the stream.
        results.sort_by_key(|r| r.1);
        for (name, _seq, outbox, obs, timers) in results {
            self.absorb(&name, outbox, obs, timers);
        }
        true
    }

    fn step_serial(&mut self) -> bool {
        let Some(Reverse((at, _, id))) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(at);
        let Some((kind, armed_epoch)) = self.events.remove(&id) else {
            return true;
        };
        match kind {
            EventKind::Crash(name) => {
                self.record_fault(format!("crash {name}"));
                if let Some(r) = self.recorder.as_mut() {
                    r.mark(&name, "crash", "fault", self.now);
                }
                self.apply_crash(&name);
            }
            EventKind::Restart(name) => {
                self.record_fault(format!("restart {name}"));
                if let Some(r) = self.recorder.as_mut() {
                    r.mark(&name, "restart", "fault", self.now);
                }
                self.apply_restart(&name);
            }
            EventKind::Fault(action) => {
                self.record_fault(action.describe());
                if let Some(r) = self.recorder.as_mut() {
                    r.mark("chaos", &action.describe(), "fault", self.now);
                }
                self.apply_action(action);
            }
            EventKind::Deliver(name, tuple, flow) => {
                // Coalesce all deliveries to this node scheduled for this
                // exact instant into one batch, even when interleaved with
                // events for other nodes: drain everything at `at`, keep
                // ours, re-queue the rest in their original order.
                let mut batch = vec![(tuple, armed_epoch, flow)];
                let mut requeue = Vec::new();
                loop {
                    let (seq2, id2) = match self.queue.peek() {
                        Some(Reverse((at2, seq2, id2))) if *at2 == at => (*seq2, *id2),
                        _ => break,
                    };
                    self.queue.pop();
                    let ours = matches!(
                        self.events.get(&id2),
                        Some((EventKind::Deliver(n2, _, _), _)) if *n2 == name
                    );
                    if ours {
                        if let Some((EventKind::Deliver(_, t2, f2), e2)) = self.events.remove(&id2)
                        {
                            batch.push((t2, e2, f2));
                        }
                    } else {
                        requeue.push(Reverse((at, seq2, id2)));
                    }
                }
                for item in requeue {
                    self.queue.push(item);
                }
                let (up, epoch) = match self.nodes.get(&name) {
                    Some(node) => (node.up, node.epoch),
                    None => {
                        self.dropped += batch.len() as u64;
                        return true;
                    }
                };
                let mut deliverable: Vec<NetTuple> = Vec::with_capacity(batch.len());
                for (t, e, f) in batch {
                    if up && (e == ANY_EPOCH || e == epoch) {
                        if let (Some(r), Some(id)) = (self.recorder.as_mut(), f) {
                            r.delivered(&name, &t.table, self.now, id);
                        }
                        deliverable.push(t);
                    } else {
                        self.dropped += 1;
                    }
                }
                if deliverable.is_empty() {
                    return true;
                }
                let node = self
                    .nodes
                    .get_mut(&name)
                    .expect("checked above that the node exists");
                self.delivered += deliverable.len() as u64;
                let n_tuples = deliverable.len();
                let mut ctx = Ctx {
                    now: self.now,
                    me: &name,
                    rng: Some(&mut self.rng),
                    outbox: Vec::new(),
                    obs_outbox: Vec::new(),
                    timers: Vec::new(),
                };
                let t0 = self.recorder.is_some().then(std::time::Instant::now);
                node.actor.on_tuples(&mut ctx, deliverable);
                if let (Some(r), Some(t0)) = (self.recorder.as_mut(), t0) {
                    r.span(
                        &name,
                        &format!("on_tuples x{n_tuples}"),
                        "actor",
                        self.now,
                        t0.elapsed().as_nanos() as f64 / 1e3,
                    );
                }
                let (outbox, obs, timers) = (ctx.outbox, ctx.obs_outbox, ctx.timers);
                self.absorb(&name, outbox, obs, timers);
            }
            EventKind::Timer(name, tag) => {
                let Some(node) = self.nodes.get_mut(&name) else {
                    return true;
                };
                if !node.up || node.epoch != armed_epoch {
                    return true;
                }
                let mut ctx = Ctx {
                    now: self.now,
                    me: &name,
                    rng: Some(&mut self.rng),
                    outbox: Vec::new(),
                    obs_outbox: Vec::new(),
                    timers: Vec::new(),
                };
                let t0 = self.recorder.is_some().then(std::time::Instant::now);
                node.actor.on_timer(&mut ctx, tag);
                if let (Some(r), Some(t0)) = (self.recorder.as_mut(), t0) {
                    r.span(
                        &name,
                        "on_timer",
                        "actor",
                        self.now,
                        t0.elapsed().as_nanos() as f64 / 1e3,
                    );
                }
                let (outbox, obs, timers) = (ctx.outbox, ctx.obs_outbox, ctx.timers);
                self.absorb(&name, outbox, obs, timers);
            }
        }
        true
    }

    /// Run until the event queue drains or virtual time exceeds `until`.
    pub fn run_until(&mut self, until: u64) {
        while let Some(Reverse((at, _, _))) = self.queue.peek() {
            if *at > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
    }

    /// Run for `dur` more milliseconds of virtual time.
    pub fn run_for(&mut self, dur: u64) {
        let until = self.now + dur;
        self.run_until(until);
    }

    /// Run until `pred` returns true, polling between virtual instants;
    /// gives up at `deadline` (absolute time) and returns the predicate's
    /// final value.
    ///
    /// All events sharing a virtual timestamp are processed atomically
    /// before the predicate is re-checked, so serial and parallel engines
    /// observe the predicate at identical points and take byte-identical
    /// schedules.
    pub fn run_while(&mut self, deadline: u64, mut pred: impl FnMut(&mut Sim) -> bool) -> bool {
        loop {
            if pred(self) {
                return true;
            }
            let at = match self.queue.peek() {
                Some(Reverse((at, _, _))) if *at <= deadline => *at,
                _ => {
                    self.now = self.now.max(deadline);
                    return pred(self);
                }
            };
            // Drain the whole instant (including any zero-delay timers the
            // callbacks arm at the same timestamp) before polling again.
            while matches!(self.queue.peek(), Some(Reverse((a, _, _))) if *a == at) {
                self.step();
            }
        }
    }
}

/// Helper: build an address [`Value`] for a node name.
pub fn addr(name: &str) -> Value {
    Value::addr(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boom_overlog::value::row;

    struct Counter {
        got: Vec<NetTuple>,
    }
    impl Counter {
        fn new() -> Self {
            Counter { got: Vec::new() }
        }
    }
    impl Actor for Counter {
        fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, tuple: NetTuple) {
            self.got.push(tuple);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Pinger {
        target: String,
        period: u64,
    }
    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, _tuple: NetTuple) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            let target = self.target.clone();
            let t = ctx.now() as i64;
            ctx.send(&target, "ping", row(vec![Value::Int(t)]));
            ctx.set_timer(self.period, 0);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn messages_arrive_with_latency() {
        let mut sim = Sim::new(SimConfig {
            min_latency: 3,
            max_latency: 3,
            ..Default::default()
        });
        sim.add_node("a", Box::new(Counter::new()));
        sim.inject("a", "hello", row(vec![Value::Int(1)]));
        sim.run_until(10);
        sim.with_actor::<Counter, _>("a", |c| assert_eq!(c.got.len(), 1));
        assert_eq!(sim.delivered_count(), 1);
    }

    #[test]
    fn periodic_timers_drive_traffic() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(
            "p",
            Box::new(Pinger {
                target: "c".into(),
                period: 100,
            }),
        );
        sim.add_node("c", Box::new(Counter::new()));
        sim.run_until(1_000);
        let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
        assert!((9..=10).contains(&got), "got {got} pings");
    }

    #[test]
    fn crash_drops_messages_and_restart_resumes() {
        let mut sim = Sim::new(SimConfig {
            min_latency: 1,
            max_latency: 1,
            ..Default::default()
        });
        sim.add_node(
            "p",
            Box::new(Pinger {
                target: "c".into(),
                period: 100,
            }),
        );
        sim.add_node("c", Box::new(Counter::new()));
        sim.schedule_crash("c", 250);
        sim.schedule_restart("c", 650);
        sim.run_until(1_049);
        // Pings sent at 100,200 delivered; 300..600 dropped; 700..1000
        // delivered again.
        let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
        assert_eq!(got, 6, "2 before crash + 4 after restart");
        assert!(sim.dropped_count() >= 3);
    }

    #[test]
    fn crash_invalidates_pending_timers() {
        struct SelfTimer {
            fires: u64,
        }
        impl Actor for SelfTimer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(500, 1);
            }
            fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, _t: NetTuple) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {
                self.fires += 1;
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("n", Box::new(SelfTimer { fires: 0 }));
        sim.schedule_crash("n", 100);
        sim.schedule_restart("n", 200);
        sim.run_until(1_000);
        sim.with_actor::<SelfTimer, _>("n", |a| {
            assert_eq!(a.fires, 0, "timer armed pre-crash must not fire");
        });
    }

    #[test]
    fn partitions_block_selected_links() {
        let mut sim = Sim::new(SimConfig {
            min_latency: 1,
            max_latency: 1,
            ..Default::default()
        });
        sim.add_node(
            "p",
            Box::new(Pinger {
                target: "c".into(),
                period: 100,
            }),
        );
        sim.add_node("c", Box::new(Counter::new()));
        sim.run_until(450);
        sim.set_partition(&["p"], &["c"], true);
        sim.run_until(950);
        sim.set_partition(&["p"], &["c"], false);
        sim.run_until(1_250);
        let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
        assert_eq!(got, 4 + 3, "4 before cut, 3 after heal");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Sim::new(SimConfig {
                seed,
                min_latency: 1,
                max_latency: 50,
                drop_prob: 0.2,
                duplicate_prob: 0.1,
            });
            sim.add_node(
                "p",
                Box::new(Pinger {
                    target: "c".into(),
                    period: 10,
                }),
            );
            sim.add_node("c", Box::new(Counter::new()));
            sim.run_until(10_000);
            (sim.delivered_count(), sim.dropped_count())
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(
            "p",
            Box::new(Pinger {
                target: "c".into(),
                period: 100,
            }),
        );
        sim.add_node("c", Box::new(Counter::new()));
        let ok = sim.run_while(10_000, |s| {
            s.with_actor::<Counter, _>("c", |c| c.got.len() >= 3)
        });
        assert!(ok);
        assert!(sim.now() < 1_000, "stopped early at {}", sim.now());
    }

    #[test]
    fn run_while_times_out() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("c", Box::new(Counter::new()));
        let ok = sim.run_while(500, |s| s.delivered_count() > 0);
        assert!(!ok);
        assert_eq!(sim.now(), 500);
    }

    #[test]
    fn recorder_captures_flows_without_changing_schedule() {
        fn run(with_rec: bool) -> (u64, u64, Option<String>) {
            let mut sim = Sim::new(SimConfig {
                seed: 9,
                min_latency: 1,
                max_latency: 20,
                drop_prob: 0.1,
                duplicate_prob: 0.05,
            });
            if with_rec {
                sim.set_recorder(boom_trace::ChromeRecorder::new());
            }
            sim.add_node(
                "p",
                Box::new(Pinger {
                    target: "c".into(),
                    period: 50,
                }),
            );
            sim.add_node("c", Box::new(Counter::new()));
            sim.run_until(2_000);
            let doc = sim.take_recorder().map(|r| r.render());
            (sim.delivered_count(), sim.dropped_count(), doc)
        }
        let (d1, x1, doc) = run(true);
        let (d2, x2, none) = run(false);
        assert_eq!((d1, x1), (d2, x2), "recorder must not perturb the schedule");
        assert!(none.is_none());
        let doc = doc.expect("recorder attached");
        assert!(doc.contains("\"ph\":\"s\""), "flow starts recorded");
        assert!(doc.contains("\"ph\":\"f\""), "flow ends recorded");
        assert!(doc.contains("on_tuples"), "delivery spans recorded");
    }

    /// Run a churny multi-pinger cluster (shared timer instants, drops,
    /// duplicates, a crash/restart pair mid-run) and return everything
    /// observable: counters plus the exact tuple sequence the sink saw.
    #[cfg(feature = "parallel")]
    fn chatty_run(parallel: bool) -> (u64, u64, u64, Vec<(String, Row)>) {
        let mut sim = Sim::new(SimConfig {
            seed: 11,
            min_latency: 1,
            max_latency: 40,
            drop_prob: 0.15,
            duplicate_prob: 0.1,
        });
        if parallel {
            assert!(sim.set_parallel(true), "parallel feature is compiled in");
        }
        // Identical periods land many nodes on the same virtual instant,
        // exercising multi-node parallel batches.
        for i in 0..4 {
            let name = format!("p{i}");
            sim.add_node(
                &name,
                Box::new(Pinger {
                    target: "c".into(),
                    period: 10,
                }),
            );
        }
        sim.add_node("c", Box::new(Counter::new()));
        sim.schedule_crash("c", 1_000);
        sim.schedule_restart("c", 2_000);
        sim.run_until(5_000);
        let got = sim.with_actor::<Counter, _>("c", |c| {
            c.got
                .iter()
                .map(|t| (t.table.clone(), t.row.clone()))
                .collect()
        });
        (sim.now(), sim.delivered_count(), sim.dropped_count(), got)
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_matches_serial_schedule_exactly() {
        let serial = chatty_run(false);
        let parallel = chatty_run(true);
        assert_eq!(
            serial, parallel,
            "parallel engine must not perturb the schedule"
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn set_parallel_reports_support() {
        let mut sim = Sim::new(SimConfig::default());
        assert!(!sim.is_parallel());
        assert!(sim.set_parallel(true));
        assert!(sim.is_parallel());
        assert!(sim.set_parallel(false));
        assert!(!sim.is_parallel());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn zero_latency_configs_fall_back_to_serial() {
        // min_latency == 0 means a callback could extend the instant being
        // evaluated; the engine must quietly take the serial path.
        fn run(parallel: bool) -> (u64, u64) {
            let mut sim = Sim::new(SimConfig {
                seed: 3,
                min_latency: 0,
                max_latency: 0,
                ..Default::default()
            });
            if parallel {
                sim.set_parallel(true);
            }
            sim.add_node(
                "p",
                Box::new(Pinger {
                    target: "c".into(),
                    period: 7,
                }),
            );
            sim.add_node("c", Box::new(Counter::new()));
            sim.run_until(500);
            (sim.delivered_count(), sim.dropped_count())
        }
        assert_eq!(run(false), run(true));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallelism_report_explains_fallbacks() {
        let mut sim = Sim::new(SimConfig {
            seed: 11,
            min_latency: 1,
            max_latency: 40,
            ..Default::default()
        });
        assert!(sim.set_parallel(true));
        for i in 0..4 {
            let name = format!("p{i}");
            sim.add_node(
                &name,
                Box::new(Pinger {
                    target: "c".into(),
                    period: 10,
                }),
            );
        }
        sim.add_node("c", Box::new(Counter::new()));
        sim.schedule_crash("c", 1_000);
        sim.schedule_restart("c", 2_000);
        sim.run_until(5_000);
        let rep = sim.parallelism_report();
        assert!(rep.feature_compiled && rep.enabled);
        assert!(!rep.recorder_attached && !rep.zero_latency);
        assert!(rep.parallel_rounds > 0, "{rep:?}");
        assert!(
            rep.serial_fallback_mixed >= 2,
            "crash + restart instants must be counted: {rep:?}"
        );
        assert!(rep.serial_fallback_single > 0, "{rep:?}");

        // With a recorder attached the engine never even reaches the
        // per-instant decision; the report says why.
        let mut sim = Sim::new(SimConfig::default());
        sim.set_parallel(true);
        sim.set_recorder(boom_trace::ChromeRecorder::new());
        sim.add_node(
            "p",
            Box::new(Pinger {
                target: "c".into(),
                period: 7,
            }),
        );
        sim.add_node("c", Box::new(Counter::new()));
        sim.run_until(500);
        let rep = sim.parallelism_report();
        assert!(rep.recorder_attached);
        assert_eq!(rep.parallel_rounds, 0, "{rep:?}");
    }

    #[test]
    fn messages_to_unknown_nodes_are_dropped() {
        let mut sim = Sim::new(SimConfig::default());
        sim.inject("ghost", "x", row(vec![Value::Int(1)]));
        sim.run_until(100);
        assert_eq!(sim.dropped_count(), 1);
        assert_eq!(sim.delivered_count(), 0);
    }
}
