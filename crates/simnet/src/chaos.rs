//! Deterministic chaos schedules: declarative, seeded scripts of timed
//! fault events applied during a simulation run.
//!
//! The paper argues that data-centric state makes failure handling a small,
//! localized patch; a claim like that is only testable if failures can be
//! injected *reproducibly*. A [`ChaosSchedule`] is a list of
//! `(offset_ms, action)` pairs — crash/restart a node, cut/heal a
//! partition, degrade a link for a window, burst message duplication —
//! installed into a [`Sim`] with [`Sim::install_chaos`]. Actions fire as
//! ordinary simulator events at deterministic virtual times, so the same
//! seed plus the same schedule replays the same trace bit-for-bit.
//!
//! Every action actually applied (whether from a schedule or from the
//! direct [`Sim::schedule_crash`] / [`Sim::schedule_restart`] paths) is
//! appended to the simulator's fault log, which harnesses read back to
//! assert that the intended faults really happened and when.
//!
//! ```
//! use boom_simnet::{Sim, SimConfig};
//! use boom_simnet::chaos::ChaosSchedule;
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let schedule = ChaosSchedule::new("flap-dn0")
//!     .flap("dn0", 1_000, 4_000)
//!     .partition(&["nn0"], &["dn1"], 2_000, 6_000);
//! sim.install_chaos(&schedule);
//! sim.run_for(10_000);
//! assert_eq!(sim.fault_log().len(), 4, "crash, cut, restart, heal");
//! ```

use crate::Sim;

/// Per-link quality override, applied on top of the global [`crate::SimConfig`]
/// while installed. All fields compose with the base config: the link drop
/// check runs after (independently of) the global one, `extra_latency` is
/// added to the drawn latency, and `duplicate_prob` gives a second,
/// link-local duplication chance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Additional probability this link silently drops a message.
    pub drop_prob: f64,
    /// Extra one-way latency (ms) added to every message on this link.
    pub extra_latency: u64,
    /// Additional probability a message on this link is delivered twice.
    pub duplicate_prob: f64,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            drop_prob: 0.0,
            extra_latency: 0,
            duplicate_prob: 0.0,
        }
    }
}

/// One scripted fault. Times live in the enclosing [`ChaosSchedule`];
/// actions themselves are instantaneous state changes.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Crash a node (volatile state lost; pending timers and in-flight
    /// deliveries invalidated).
    Crash(String),
    /// Restart a previously crashed node.
    Restart(String),
    /// Cut all links (both directions) between two node groups.
    Cut { a: Vec<String>, b: Vec<String> },
    /// Heal all links (both directions) between two node groups.
    Heal { a: Vec<String>, b: Vec<String> },
    /// Install a quality override on the directed link `from → to`.
    SetLinkFault {
        from: String,
        to: String,
        fault: LinkFault,
    },
    /// Remove the quality override on the directed link `from → to`.
    ClearLinkFault { from: String, to: String },
    /// For `dur` ms, duplicate every delivered message with probability
    /// `prob` (in addition to the global duplication probability).
    DupBurst { dur: u64, prob: f64 },
    /// Tear `node`'s next write-ahead-log append mid-batch (requires a
    /// [`crate::DurableStore`] attached via [`Sim::set_durable_store`]).
    TornWrite { node: String },
    /// For `dur` ms, `node`'s log appends are written but not fsynced —
    /// a crash in (or shortly after) the window loses the unsynced suffix.
    LoseSync { node: String, dur: u64 },
}

impl ChaosAction {
    /// Compact human-readable form used in the fault log.
    pub fn describe(&self) -> String {
        match self {
            ChaosAction::Crash(n) => format!("crash {n}"),
            ChaosAction::Restart(n) => format!("restart {n}"),
            ChaosAction::Cut { a, b } => format!("cut {} | {}", a.join(","), b.join(",")),
            ChaosAction::Heal { a, b } => format!("heal {} | {}", a.join(","), b.join(",")),
            ChaosAction::SetLinkFault { from, to, fault } => format!(
                "degrade {from}->{to} drop={} lat+={} dup={}",
                fault.drop_prob, fault.extra_latency, fault.duplicate_prob
            ),
            ChaosAction::ClearLinkFault { from, to } => format!("restore {from}->{to}"),
            ChaosAction::DupBurst { dur, prob } => format!("dup-burst {dur}ms p={prob}"),
            ChaosAction::TornWrite { node } => format!("torn-write {node}"),
            ChaosAction::LoseSync { node, dur } => format!("lose-sync {node} {dur}ms"),
        }
    }
}

/// One entry in the simulator's fault log: an action that was actually
/// applied, stamped with the virtual time it took effect.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Virtual time (ms) the action was applied.
    pub at: u64,
    /// [`ChaosAction::describe`]-style description.
    pub action: String,
}

/// A named, declarative script of timed fault events. Offsets are relative
/// to the install time, so the same schedule can be replayed against runs
/// that start their workload at different absolute times.
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    /// Schedule name (surfaced in reports and logs).
    pub name: String,
    /// `(offset_ms, action)` pairs; order of insertion breaks ties.
    pub events: Vec<(u64, ChaosAction)>,
}

impl ChaosSchedule {
    /// Start an empty schedule.
    pub fn new(name: &str) -> Self {
        ChaosSchedule {
            name: name.to_string(),
            events: Vec::new(),
        }
    }

    /// Add a raw `(offset, action)` pair.
    pub fn at(mut self, offset: u64, action: ChaosAction) -> Self {
        self.events.push((offset, action));
        self
    }

    /// Crash `node` at `offset`.
    pub fn crash_at(self, node: &str, offset: u64) -> Self {
        self.at(offset, ChaosAction::Crash(node.to_string()))
    }

    /// Restart `node` at `offset`.
    pub fn restart_at(self, node: &str, offset: u64) -> Self {
        self.at(offset, ChaosAction::Restart(node.to_string()))
    }

    /// Crash `node` at `down_at` and restart it at `up_at`.
    pub fn flap(self, node: &str, down_at: u64, up_at: u64) -> Self {
        self.crash_at(node, down_at).restart_at(node, up_at)
    }

    /// Cut all links between two groups at `from`, heal them at `until`.
    pub fn partition(self, a: &[&str], b: &[&str], from: u64, until: u64) -> Self {
        let av: Vec<String> = a.iter().map(|s| s.to_string()).collect();
        let bv: Vec<String> = b.iter().map(|s| s.to_string()).collect();
        self.at(
            from,
            ChaosAction::Cut {
                a: av.clone(),
                b: bv.clone(),
            },
        )
        .at(until, ChaosAction::Heal { a: av, b: bv })
    }

    /// Degrade the directed link `from → to` for a window.
    pub fn link_fault(
        self,
        from: &str,
        to: &str,
        start: u64,
        until: u64,
        fault: LinkFault,
    ) -> Self {
        self.at(
            start,
            ChaosAction::SetLinkFault {
                from: from.to_string(),
                to: to.to_string(),
                fault,
            },
        )
        .at(
            until,
            ChaosAction::ClearLinkFault {
                from: from.to_string(),
                to: to.to_string(),
            },
        )
    }

    /// Drop messages on `from → to` with probability `prob` for a window.
    pub fn link_drop(self, from: &str, to: &str, start: u64, until: u64, prob: f64) -> Self {
        self.link_fault(
            from,
            to,
            start,
            until,
            LinkFault {
                drop_prob: prob,
                ..Default::default()
            },
        )
    }

    /// Add `extra` ms of latency on `from → to` for a window.
    pub fn link_latency(self, from: &str, to: &str, start: u64, until: u64, extra: u64) -> Self {
        self.link_fault(
            from,
            to,
            start,
            until,
            LinkFault {
                extra_latency: extra,
                ..Default::default()
            },
        )
    }

    /// Start a global duplication burst at `offset` lasting `dur` ms.
    pub fn dup_burst(self, offset: u64, dur: u64, prob: f64) -> Self {
        self.at(offset, ChaosAction::DupBurst { dur, prob })
    }

    /// Tear `node`'s next log append at `offset`.
    pub fn torn_write(self, node: &str, offset: u64) -> Self {
        self.at(
            offset,
            ChaosAction::TornWrite {
                node: node.to_string(),
            },
        )
    }

    /// Make `node`'s log appends unsynced for `dur` ms starting at
    /// `offset`.
    pub fn lose_sync(self, node: &str, offset: u64, dur: u64) -> Self {
        self.at(
            offset,
            ChaosAction::LoseSync {
                node: node.to_string(),
                dur,
            },
        )
    }

    /// Restart storm: `count` crash+restart pairs on `node`, the `k`-th
    /// crashing at `first_at + k*period` and restarting half a period
    /// later. Staggering the `first_at` of storms on different replicas
    /// overlaps their down windows — including full-quorum outages.
    pub fn restart_storm(mut self, node: &str, first_at: u64, period: u64, count: usize) -> Self {
        let period = period.max(2);
        for k in 0..count as u64 {
            let down = first_at + k * period;
            self = self.flap(node, down, down + period / 2);
        }
        self
    }

    /// Latest event offset in the schedule (0 for an empty schedule) —
    /// handy for sizing run deadlines.
    pub fn horizon(&self) -> u64 {
        self.events.iter().map(|(t, _)| *t).max().unwrap_or(0)
    }
}

impl Sim {
    /// Install every event of `schedule`, with offsets relative to the
    /// current virtual time. Actions fire as ordinary events during
    /// [`Sim::step`] and are appended to the fault log when applied.
    pub fn install_chaos(&mut self, schedule: &ChaosSchedule) {
        let base = self.now();
        for (offset, action) in &schedule.events {
            self.schedule_fault(base + offset, action.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Actor, Ctx, SimConfig};
    use boom_overlog::value::row;
    use boom_overlog::{NetTuple, Value};
    use std::any::Any;

    struct Counter {
        got: Vec<NetTuple>,
    }
    impl Actor for Counter {
        fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, tuple: NetTuple) {
            self.got.push(tuple);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Pinger {
        target: String,
        period: u64,
    }
    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_tuple(&mut self, _ctx: &mut Ctx<'_>, _tuple: NetTuple) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            let target = self.target.clone();
            let t = ctx.now() as i64;
            ctx.send(&target, "ping", row(vec![Value::Int(t)]));
            ctx.set_timer(self.period, 0);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ping_pair(cfg: SimConfig) -> Sim {
        let mut sim = Sim::new(cfg);
        sim.add_node(
            "p",
            Box::new(Pinger {
                target: "c".into(),
                period: 100,
            }),
        );
        sim.add_node("c", Box::new(Counter { got: Vec::new() }));
        sim
    }

    #[test]
    fn schedule_crash_and_restart_fire_at_offsets() {
        let mut sim = ping_pair(SimConfig {
            min_latency: 1,
            max_latency: 1,
            ..Default::default()
        });
        let schedule = ChaosSchedule::new("flap").flap("c", 250, 650);
        sim.install_chaos(&schedule);
        sim.run_until(1_049);
        let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
        assert_eq!(got, 6, "2 before crash + 4 after restart");
        let log = sim.fault_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].at, 250);
        assert_eq!(log[0].action, "crash c");
        assert_eq!(log[1].at, 650);
        assert_eq!(log[1].action, "restart c");
    }

    #[test]
    fn schedule_partition_window_blocks_then_heals() {
        let mut sim = ping_pair(SimConfig {
            min_latency: 1,
            max_latency: 1,
            ..Default::default()
        });
        let schedule = ChaosSchedule::new("part").partition(&["p"], &["c"], 450, 950);
        sim.install_chaos(&schedule);
        sim.run_until(1_250);
        let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
        assert_eq!(got, 4 + 3, "4 before cut, 3 after heal");
    }

    #[test]
    fn link_drop_window_loses_messages_deterministically() {
        fn run(seed: u64) -> (usize, u64, Vec<FaultRecord>) {
            let mut sim = ping_pair(SimConfig {
                seed,
                min_latency: 1,
                max_latency: 1,
                ..Default::default()
            });
            let schedule = ChaosSchedule::new("lossy").link_drop("p", "c", 50, 1_550, 0.5);
            sim.install_chaos(&schedule);
            sim.run_until(2_049);
            let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
            (got, sim.dropped_count(), sim.fault_log().to_vec())
        }
        let (got, dropped, log) = run(9);
        assert!(dropped > 0, "a 50% window must drop something");
        assert!(got < 20, "some pings lost");
        assert_eq!(got as u64 + dropped, 20, "every ping delivered or dropped");
        // Identical seed ⇒ identical trace, including the fault log.
        assert_eq!(run(9), (got, dropped, log));
    }

    #[test]
    fn link_latency_window_delays_messages() {
        let mut sim = ping_pair(SimConfig {
            min_latency: 1,
            max_latency: 1,
            ..Default::default()
        });
        let schedule = ChaosSchedule::new("slow").link_latency("p", "c", 0, 450, 300);
        sim.install_chaos(&schedule);
        sim.run_until(350);
        // Pings at 100,200,300 are in flight with +300ms latency.
        let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
        assert_eq!(got, 0, "still in flight");
        sim.run_until(1_049);
        let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
        assert_eq!(got, 10, "delayed but not lost");
    }

    #[test]
    fn dup_burst_duplicates_within_window_only() {
        let mut sim = ping_pair(SimConfig {
            min_latency: 1,
            max_latency: 1,
            ..Default::default()
        });
        let schedule = ChaosSchedule::new("dup").dup_burst(50, 500, 1.0);
        sim.install_chaos(&schedule);
        sim.run_until(1_049);
        // Pings at 100..500 duplicated (5 × 2), 600..1000 single (5).
        let got = sim.with_actor::<Counter, _>("c", |c| c.got.len());
        assert_eq!(got, 15);
    }

    #[test]
    fn restart_storm_builds_crash_restart_pairs() {
        let s = ChaosSchedule::new("storm").restart_storm("nn0", 100, 1_000, 3);
        assert_eq!(s.events.len(), 6, "3 crash+restart pairs");
        assert_eq!(
            s.events[0],
            (100, ChaosAction::Crash("nn0".to_string())),
            "first crash at first_at"
        );
        assert_eq!(
            s.events[1],
            (600, ChaosAction::Restart("nn0".to_string())),
            "restart half a period later"
        );
        assert_eq!(s.events[4].0, 2_100, "k-th crash at first_at + k*period");
        assert_eq!(s.horizon(), 2_600);
    }

    #[test]
    fn restart_storm_fires_and_logs_each_cycle() {
        let mut sim = ping_pair(SimConfig {
            min_latency: 1,
            max_latency: 1,
            ..Default::default()
        });
        sim.install_chaos(&ChaosSchedule::new("storm").restart_storm("c", 150, 400, 2));
        sim.run_until(1_200);
        let log: Vec<String> = sim.fault_log().iter().map(|f| f.action.clone()).collect();
        assert_eq!(log, vec!["crash c", "restart c", "crash c", "restart c"]);
        assert_eq!(sim.fault_log()[2].at, 550);
    }

    #[test]
    fn disk_fault_actions_describe_and_route_to_the_store() {
        assert_eq!(
            ChaosAction::TornWrite { node: "a".into() }.describe(),
            "torn-write a"
        );
        assert_eq!(
            ChaosAction::LoseSync {
                node: "a".into(),
                dur: 250
            }
            .describe(),
            "lose-sync a 250ms"
        );
        let mut sim = ping_pair(SimConfig::default());
        let store = crate::DurableStore::new(1);
        sim.set_durable_store(store.clone());
        sim.install_chaos(
            &ChaosSchedule::new("disk")
                .torn_write("p", 100)
                .lose_sync("p", 100, 500),
        );
        sim.run_until(300);
        assert_eq!(sim.fault_log().len(), 2, "both actions applied and logged");
        // The torn-write reached the store: the next append is torn.
        store.append("p", 300, Vec::new(), Vec::new());
        let r = store.recover("p");
        assert_eq!(r.batches, 0);
        assert_eq!(r.discarded, 1, "append after the fault was torn");
    }

    #[test]
    fn horizon_reports_latest_offset() {
        let s = ChaosSchedule::new("h")
            .flap("x", 100, 900)
            .crash_at("y", 400);
        assert_eq!(s.horizon(), 900);
        assert_eq!(ChaosSchedule::new("empty").horizon(), 0);
    }
}
