//! Adapter hosting an [`OverlogRuntime`] on a simulator node.
//!
//! This is the moral equivalent of the paper's JOL-on-a-JVM deployment: the
//! actor feeds arriving tuples into the runtime, drives its timestep clock,
//! and routes outbound tuples over the simulated network.

use crate::{Actor, Ctx};
use boom_overlog::{NetTuple, OverlogRuntime};
use std::any::Any;

/// Factory that (re)builds a node's runtime: used at startup and again
/// after a crash-restart, modeling loss of volatile state.
pub type RuntimeFactory = Box<dyn FnMut(&str) -> OverlogRuntime + Send>;

/// An [`Actor`] that executes an Overlog program.
pub struct OverlogActor {
    rt: OverlogRuntime,
    factory: Option<RuntimeFactory>,
    tick_period: u64,
    /// Evaluation errors encountered while ticking (program bugs); the
    /// simulation keeps running so harnesses can inspect them.
    pub errors: Vec<String>,
    /// Accumulated wall-clock time spent evaluating this runtime. The
    /// simulator's virtual clock models the network; this models the
    /// node's CPU, and is what capacity experiments (E6/E7) measure.
    pub busy: std::time::Duration,
}

impl OverlogActor {
    /// Host the given runtime, ticking it every `tick_period` ms of virtual
    /// time (in addition to a tick per arriving tuple). A crashed node
    /// restarts with this same (stale) runtime state — use
    /// [`OverlogActor::with_factory`] to model volatile state.
    pub fn new(rt: OverlogRuntime, tick_period: u64) -> Self {
        OverlogActor {
            rt,
            factory: None,
            tick_period: tick_period.max(1),
            errors: Vec::new(),
            busy: std::time::Duration::ZERO,
        }
    }

    /// Build the runtime from a factory; a restart after a crash rebuilds
    /// it from scratch (all soft state lost), like the paper's NameNode
    /// failure experiments.
    pub fn with_factory(mut factory: RuntimeFactory, tick_period: u64, name: &str) -> Self {
        let rt = factory(name);
        OverlogActor {
            rt,
            factory: Some(factory),
            tick_period: tick_period.max(1),
            errors: Vec::new(),
            busy: std::time::Duration::ZERO,
        }
    }

    /// Access the hosted runtime (for queries and instrumentation).
    pub fn runtime(&mut self) -> &mut OverlogRuntime {
        &mut self.rt
    }

    /// Read-only access to the hosted runtime.
    pub fn runtime_ref(&self) -> &OverlogRuntime {
        &self.rt
    }

    fn tick_and_route(&mut self, ctx: &mut Ctx<'_>) {
        let t0 = std::time::Instant::now();
        self.tick_and_route_inner(ctx);
        self.busy += t0.elapsed();
    }

    fn tick_and_route_inner(&mut self, ctx: &mut Ctx<'_>) {
        // Tick repeatedly while the runtime keeps producing pending work
        // for itself (bounded to avoid livelock on buggy programs).
        for _ in 0..4 {
            match self.rt.tick(ctx.now()) {
                Ok(res) => {
                    for send in res.sends {
                        ctx.send_tuple(send);
                    }
                }
                Err(e) => {
                    self.errors.push(format!("t={} {e}", ctx.now()));
                    return;
                }
            }
            if !self.rt.has_pending() {
                break;
            }
        }
    }
}

/// Apply planner options to every Overlog node in the simulation — the
/// A/B switch the planner experiments flip between the analysis-driven
/// plan and the source-order baseline.
pub fn set_plan_options_all(sim: &mut crate::Sim, opts: boom_overlog::PlanOptions) {
    for name in sim.node_names() {
        sim.try_with_actor::<OverlogActor, _>(&name, |a| a.runtime().set_plan_options(opts));
    }
}

/// Canonical dump of every Overlog node's materialized (non-event) state:
/// nodes sorted by name, tables sorted by name, rows sorted. Two runs of
/// the same scenario are behaviorally identical iff these strings are
/// byte-identical.
pub fn overlog_state_fingerprint(sim: &mut crate::Sim) -> String {
    let mut names = sim.node_names();
    names.sort();
    let mut out = String::new();
    for name in names {
        let dump = sim.try_with_actor::<OverlogActor, _>(&name, |a| {
            let rt = a.runtime_ref();
            let mut tables: Vec<String> = rt.table_decls().map(|d| d.name.clone()).collect();
            tables.sort();
            let mut s = String::new();
            for t in tables {
                let table = rt.table(&t).expect("declared table exists");
                if table.is_event() {
                    continue;
                }
                for row in table.sorted_rows() {
                    s.push_str(&format!("  {t}{row:?}\n"));
                }
            }
            s
        });
        if let Some(dump) = dump {
            out.push_str(&format!("node {name}:\n{dump}"));
        }
    }
    out
}

impl Actor for OverlogActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.tick_and_route(ctx);
        ctx.set_timer(self.tick_period, 0);
    }

    fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple) {
        self.on_tuples(ctx, vec![tuple]);
    }

    fn on_tuples(&mut self, ctx: &mut Ctx<'_>, tuples: Vec<NetTuple>) {
        let mut any = false;
        for tuple in tuples {
            match self.rt.deliver(&tuple) {
                Ok(()) => any = true,
                Err(e) => self
                    .errors
                    .push(format!("t={} deliver {}: {e}", ctx.now(), tuple.table)),
            }
        }
        if any {
            self.tick_and_route(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        self.tick_and_route(ctx);
        ctx.set_timer(self.tick_period, 0);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(factory) = &mut self.factory {
            self.rt = factory(ctx.me());
        }
        self.tick_and_route(ctx);
        ctx.set_timer(self.tick_period, 0);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimConfig};
    use boom_overlog::value::row;
    use boom_overlog::Value;

    fn echo_runtime(name: &str) -> OverlogRuntime {
        let mut rt = OverlogRuntime::new(name);
        rt.load(
            "event req, {Addr, Int};
             event resp, {Addr, Int};
             define(seen, keys(0), {Int});
             resp(@Src, X * 2) :- req(Src, X);
             seen(X) :- req(_, X);",
        )
        .unwrap();
        rt
    }

    #[test]
    fn two_runtimes_exchange_tuples() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(
            "server",
            Box::new(OverlogActor::new(echo_runtime("server"), 50)),
        );
        let mut client = OverlogRuntime::new("client");
        client
            .load(
                "event resp, {Addr, Int};
                 define(answers, keys(0), {Int});
                 answers(X) :- resp(_, X);",
            )
            .unwrap();
        sim.add_node("client", Box::new(OverlogActor::new(client, 50)));
        sim.inject(
            "server",
            "req",
            row(vec![Value::addr("client"), Value::Int(21)]),
        );
        let ok = sim.run_while(5_000, |s| {
            s.with_actor::<OverlogActor, _>("client", |a| a.runtime().count("answers") > 0)
        });
        assert!(ok, "client never got the response");
        sim.with_actor::<OverlogActor, _>("client", |a| {
            assert_eq!(a.runtime().rows("answers")[0], row(vec![Value::Int(42)]));
        });
    }

    #[test]
    fn factory_restart_loses_soft_state() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(
            "server",
            Box::new(OverlogActor::with_factory(
                Box::new(echo_runtime),
                50,
                "server",
            )),
        );
        sim.inject("server", "req", row(vec![Value::addr("x"), Value::Int(1)]));
        sim.run_for(200);
        sim.with_actor::<OverlogActor, _>("server", |a| {
            assert_eq!(a.runtime().count("seen"), 1);
        });
        sim.schedule_crash("server", sim.now() + 10);
        sim.schedule_restart("server", sim.now() + 100);
        sim.run_for(300);
        sim.with_actor::<OverlogActor, _>("server", |a| {
            assert_eq!(a.runtime().count("seen"), 0, "state reset by factory");
        });
    }

    #[test]
    fn overlog_timers_fire_inside_sim() {
        let mut rt = OverlogRuntime::new("n");
        rt.load(
            "timer(hb, 100);
             define(beats, keys(), {Int});
             beats(count<T>) :- hb_log(T);
             define(hb_log, keys(0), {Int});
             hb_log(T) :- hb(T);",
        )
        .unwrap();
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("n", Box::new(OverlogActor::new(rt, 50)));
        sim.run_until(1_000);
        sim.with_actor::<OverlogActor, _>("n", |a| {
            let beats = a.runtime().rows("beats");
            let n = beats[0][0].as_int().unwrap();
            assert!((9..=11).contains(&n), "got {n} heartbeats");
        });
    }
}
