//! Adapter hosting an [`OverlogRuntime`] on a simulator node.
//!
//! This is the moral equivalent of the paper's JOL-on-a-JVM deployment: the
//! actor feeds arriving tuples into the runtime, drives its timestep clock,
//! and routes outbound tuples over the simulated network.

use crate::durable::DurableStore;
use crate::{Actor, Ctx};
use boom_overlog::{is_observation_table, NetTuple, OverlogRuntime};
use std::any::Any;

/// Extension point for layers that observe a hosted runtime without being
/// part of its Overlog program — the serving tier (`boom-serve`) is the
/// canonical implementor. Hooks see every control tuple before the runtime
/// does, run after every committed activation, and are told about crash
/// recoveries so they can resynchronize downstream observers.
pub trait ServeHook: Send {
    /// An inbound tuple arrived. Return `true` to consume it (the runtime
    /// never sees it) — used for control-plane tables like `srv_sub` that
    /// are not part of the hosted program.
    fn on_tuple(&mut self, rt: &mut OverlogRuntime, ctx: &mut Ctx<'_>, tuple: &NetTuple) -> bool;
    /// The runtime finished an activation (its deltas are committed and,
    /// in durable mode, persisted). Drain taps and fan out here.
    fn after_commit(&mut self, rt: &mut OverlogRuntime, ctx: &mut Ctx<'_>);
    /// The node crash-restarted and (if durable) recovered. Reinstall any
    /// metaprogrammed state the factory rebuild discarded.
    fn after_restart(&mut self, rt: &mut OverlogRuntime, ctx: &mut Ctx<'_>);
    /// Downcast support so harnesses can reach a concrete hook.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// Factory that (re)builds a node's runtime: used at startup and again
/// after a crash-restart, modeling loss of volatile state.
pub type RuntimeFactory = Box<dyn FnMut(&str) -> OverlogRuntime + Send>;

/// When a durable actor checkpoints: after this many write-ahead-log
/// entries have accumulated since the last snapshot (`0` = never).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many log entries accumulate since the last
    /// snapshot; `0` disables checkpointing (unbounded replay).
    pub every_entries: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { every_entries: 512 }
    }
}

/// What one crash-recovery cost (appended to
/// [`OverlogActor::recoveries`]).
#[derive(Debug, Clone)]
pub struct RecoveryStats {
    /// Virtual time of the restart.
    pub at: u64,
    /// Rows installed from the checkpoint snapshot.
    pub snapshot_rows: usize,
    /// Log entries physically replayed.
    pub replayed_entries: usize,
    /// Log batches the entries came from.
    pub wal_batches: usize,
    /// Wall-clock cost of restore (snapshot install + replay + view
    /// rebuild) — the recovery time E12 measures.
    pub wall: std::time::Duration,
}

/// Durable-mode state: the disk handle, the checkpoint policy, and the
/// bookkeeping between appends.
struct DurableState {
    store: DurableStore,
    policy: CheckpointPolicy,
    /// Log entries appended since the last checkpoint.
    entries_since_ckpt: usize,
    /// Counter values as of the last append (a counters-only change still
    /// needs an append, or recovered runtimes would re-issue ids).
    last_counters: Vec<(String, i64)>,
}

/// An [`Actor`] that executes an Overlog program.
pub struct OverlogActor {
    rt: OverlogRuntime,
    factory: Option<RuntimeFactory>,
    tick_period: u64,
    durable: Option<DurableState>,
    /// Observers attached with [`OverlogActor::add_hook`]; called in
    /// attachment order.
    hooks: Vec<Box<dyn ServeHook>>,
    /// Evaluation errors encountered while ticking (program bugs); the
    /// simulation keeps running so harnesses can inspect them.
    pub errors: Vec<String>,
    /// One entry per crash-recovery performed (durable mode only).
    pub recoveries: Vec<RecoveryStats>,
    /// Accumulated wall-clock time spent evaluating this runtime. The
    /// simulator's virtual clock models the network; this models the
    /// node's CPU, and is what capacity experiments (E6/E7) measure.
    pub busy: std::time::Duration,
}

impl OverlogActor {
    /// Host the given runtime, ticking it every `tick_period` ms of virtual
    /// time (in addition to a tick per arriving tuple). A crashed node
    /// restarts with this same (stale) runtime state — use
    /// [`OverlogActor::with_factory`] to model volatile state.
    pub fn new(rt: OverlogRuntime, tick_period: u64) -> Self {
        OverlogActor {
            rt,
            factory: None,
            tick_period: tick_period.max(1),
            durable: None,
            hooks: Vec::new(),
            errors: Vec::new(),
            recoveries: Vec::new(),
            busy: std::time::Duration::ZERO,
        }
    }

    /// Build the runtime from a factory; a restart after a crash rebuilds
    /// it from scratch (all soft state lost), like the paper's NameNode
    /// failure experiments.
    pub fn with_factory(mut factory: RuntimeFactory, tick_period: u64, name: &str) -> Self {
        let rt = factory(name);
        OverlogActor {
            rt,
            factory: Some(factory),
            tick_period: tick_period.max(1),
            durable: None,
            hooks: Vec::new(),
            errors: Vec::new(),
            recoveries: Vec::new(),
            busy: std::time::Duration::ZERO,
        }
    }

    /// Turn on durability: after every activation the runtime's committed
    /// deltas are appended to `store`, a checkpoint is cut per `policy`,
    /// and a restart recovers (snapshot + log replay) into the
    /// factory-fresh runtime instead of rejoining blank. The hosted
    /// runtime must have durable tables marked (the factory does this, so
    /// the marking survives rebuilds).
    pub fn enable_durability(&mut self, store: DurableStore, policy: CheckpointPolicy) {
        self.durable = Some(DurableState {
            store,
            policy,
            entries_since_ckpt: 0,
            last_counters: self.rt.counter_values(),
        });
    }

    /// Builder-style [`OverlogActor::enable_durability`].
    pub fn with_durability(mut self, store: DurableStore, policy: CheckpointPolicy) -> Self {
        self.enable_durability(store, policy);
        self
    }

    /// Access the hosted runtime (for queries and instrumentation).
    pub fn runtime(&mut self) -> &mut OverlogRuntime {
        &mut self.rt
    }

    /// Read-only access to the hosted runtime.
    pub fn runtime_ref(&self) -> &OverlogRuntime {
        &self.rt
    }

    /// Attach a [`ServeHook`]. Hooks run in attachment order.
    pub fn add_hook(&mut self, hook: Box<dyn ServeHook>) {
        self.hooks.push(hook);
    }

    /// Builder-style [`OverlogActor::add_hook`].
    pub fn with_hook(mut self, hook: Box<dyn ServeHook>) -> Self {
        self.add_hook(hook);
        self
    }

    /// Find the first attached hook of concrete type `T`.
    pub fn hook_mut<T: ServeHook + 'static>(&mut self) -> Option<&mut T> {
        self.hooks
            .iter_mut()
            .find_map(|h| h.as_any().downcast_mut::<T>())
    }

    fn tick_and_route(&mut self, ctx: &mut Ctx<'_>) {
        let t0 = std::time::Instant::now();
        self.tick_and_route_inner(ctx);
        self.busy += t0.elapsed();
    }

    fn tick_and_route_inner(&mut self, ctx: &mut Ctx<'_>) {
        // Tick repeatedly while the runtime keeps producing pending work
        // for itself (bounded to avoid livelock on buggy programs).
        for _ in 0..4 {
            match self.rt.tick(ctx.now()) {
                Ok(res) => {
                    for send in res.sends {
                        ctx.send_tuple(send);
                    }
                }
                Err(e) => {
                    self.errors.push(format!("t={} {e}", ctx.now()));
                    return;
                }
            }
            if !self.rt.has_pending() {
                break;
            }
        }
        self.persist(ctx.now(), ctx.me());
        for h in &mut self.hooks {
            h.after_commit(&mut self.rt, ctx);
        }
    }

    /// Durable mode: append this activation's committed deltas to the
    /// write-ahead log and checkpoint when the policy says so. The append
    /// happens before any tuple sent during the activation can be
    /// delivered (network latency is ≥ the synchronous handler), so state
    /// a peer can observe is always on disk first — an acceptor's promise
    /// is durable before the proposer sees it.
    fn persist(&mut self, now: u64, me: &str) {
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        if !self.rt.durable_enabled() {
            return;
        }
        let delta = self.rt.take_commit_delta();
        let counters = self.rt.counter_values();
        if delta.is_empty() && counters == d.last_counters {
            return;
        }
        d.entries_since_ckpt += delta.len();
        d.last_counters.clone_from(&counters);
        d.store.append(me, now, delta, counters);
        if d.policy.every_entries > 0 && d.entries_since_ckpt >= d.policy.every_entries {
            d.store.checkpoint(me, self.rt.snapshot());
            d.entries_since_ckpt = 0;
        }
    }
}

/// Apply planner options to every Overlog node in the simulation — the
/// A/B switch the planner experiments flip between the analysis-driven
/// plan and the source-order baseline.
pub fn set_plan_options_all(sim: &mut crate::Sim, opts: boom_overlog::PlanOptions) {
    for name in sim.node_names() {
        sim.try_with_actor::<OverlogActor, _>(&name, |a| a.runtime().set_plan_options(opts));
    }
}

/// Canonical dump of every Overlog node's materialized (non-event) state:
/// nodes sorted by name, tables sorted by name, rows sorted. Two runs of
/// the same scenario are behaviorally identical iff these strings are
/// byte-identical.
pub fn overlog_state_fingerprint(sim: &mut crate::Sim) -> String {
    let mut names = sim.node_names();
    names.sort();
    let mut out = String::new();
    for name in names {
        let dump = sim.try_with_actor::<OverlogActor, _>(&name, |a| {
            let rt = a.runtime_ref();
            let mut tables: Vec<String> = rt.table_decls().map(|d| d.name.clone()).collect();
            tables.sort();
            let mut s = String::new();
            for t in tables {
                // Observation tables (generated monitors, serve-tier query
                // views) are excluded: attaching observers must not change
                // the fingerprint ("observe, never perturb").
                if is_observation_table(&t) {
                    continue;
                }
                let table = rt.table(&t).expect("declared table exists");
                if table.is_event() {
                    continue;
                }
                for row in table.sorted_rows() {
                    s.push_str(&format!("  {t}{row:?}\n"));
                }
            }
            s
        });
        if let Some(dump) = dump {
            out.push_str(&format!("node {name}:\n{dump}"));
        }
    }
    out
}

impl Actor for OverlogActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.tick_and_route(ctx);
        ctx.set_timer(self.tick_period, 0);
    }

    fn on_tuple(&mut self, ctx: &mut Ctx<'_>, tuple: NetTuple) {
        self.on_tuples(ctx, vec![tuple]);
    }

    fn on_tuples(&mut self, ctx: &mut Ctx<'_>, tuples: Vec<NetTuple>) {
        let mut any = false;
        'tuples: for tuple in tuples {
            for h in &mut self.hooks {
                if h.on_tuple(&mut self.rt, ctx, &tuple) {
                    any = true;
                    continue 'tuples;
                }
            }
            match self.rt.deliver(&tuple) {
                Ok(()) => any = true,
                Err(e) => self
                    .errors
                    .push(format!("t={} deliver {}: {e}", ctx.now(), tuple.table)),
            }
        }
        if any {
            self.tick_and_route(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        self.tick_and_route(ctx);
        ctx.set_timer(self.tick_period, 0);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(factory) = &mut self.factory {
            self.rt = factory(ctx.me());
        }
        if let Some(d) = self.durable.as_mut() {
            let rec = d.store.recover(ctx.me());
            let t0 = std::time::Instant::now();
            let snapshot_rows = rec.snapshot.as_ref().map(|s| s.row_count()).unwrap_or(0);
            match self
                .rt
                .restore(rec.snapshot.as_ref(), &rec.log, &rec.counters)
            {
                Ok(_) => self.recoveries.push(RecoveryStats {
                    at: ctx.now(),
                    snapshot_rows,
                    replayed_entries: rec.log.len(),
                    wal_batches: rec.batches,
                    wall: t0.elapsed(),
                }),
                Err(e) => self.errors.push(format!("t={} restore: {e}", ctx.now())),
            }
            // Appends continue onto the surviving log; keep counting
            // replay cost from the last checkpoint, not from zero.
            d.entries_since_ckpt = rec.log.len();
            d.last_counters = rec.counters;
        }
        for h in &mut self.hooks {
            h.after_restart(&mut self.rt, ctx);
        }
        self.tick_and_route(ctx);
        ctx.set_timer(self.tick_period, 0);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimConfig};
    use boom_overlog::value::row;
    use boom_overlog::Value;

    fn echo_runtime(name: &str) -> OverlogRuntime {
        let mut rt = OverlogRuntime::new(name);
        rt.load(
            "event req, {Addr, Int};
             event resp, {Addr, Int};
             define(seen, keys(0), {Int});
             resp(@Src, X * 2) :- req(Src, X);
             seen(X) :- req(_, X);",
        )
        .unwrap();
        rt
    }

    #[test]
    fn two_runtimes_exchange_tuples() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(
            "server",
            Box::new(OverlogActor::new(echo_runtime("server"), 50)),
        );
        let mut client = OverlogRuntime::new("client");
        client
            .load(
                "event resp, {Addr, Int};
                 define(answers, keys(0), {Int});
                 answers(X) :- resp(_, X);",
            )
            .unwrap();
        sim.add_node("client", Box::new(OverlogActor::new(client, 50)));
        sim.inject(
            "server",
            "req",
            row(vec![Value::addr("client"), Value::Int(21)]),
        );
        let ok = sim.run_while(5_000, |s| {
            s.with_actor::<OverlogActor, _>("client", |a| a.runtime().count("answers") > 0)
        });
        assert!(ok, "client never got the response");
        sim.with_actor::<OverlogActor, _>("client", |a| {
            assert_eq!(a.runtime().rows("answers")[0], row(vec![Value::Int(42)]));
        });
    }

    #[test]
    fn factory_restart_loses_soft_state() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(
            "server",
            Box::new(OverlogActor::with_factory(
                Box::new(echo_runtime),
                50,
                "server",
            )),
        );
        sim.inject("server", "req", row(vec![Value::addr("x"), Value::Int(1)]));
        sim.run_for(200);
        sim.with_actor::<OverlogActor, _>("server", |a| {
            assert_eq!(a.runtime().count("seen"), 1);
        });
        sim.schedule_crash("server", sim.now() + 10);
        sim.schedule_restart("server", sim.now() + 100);
        sim.run_for(300);
        sim.with_actor::<OverlogActor, _>("server", |a| {
            assert_eq!(a.runtime().count("seen"), 0, "state reset by factory");
        });
    }

    #[test]
    fn durable_factory_restart_recovers_state() {
        let store = crate::DurableStore::new(3);
        let mut sim = Sim::new(SimConfig::default());
        sim.set_durable_store(store.clone());
        let factory = |name: &str| {
            let mut rt = echo_runtime(name);
            rt.set_durable_all();
            rt
        };
        sim.add_node(
            "server",
            Box::new(
                OverlogActor::with_factory(Box::new(factory), 50, "server")
                    .with_durability(store.clone(), CheckpointPolicy { every_entries: 0 }),
            ),
        );
        sim.inject("server", "req", row(vec![Value::addr("x"), Value::Int(1)]));
        sim.inject("server", "req", row(vec![Value::addr("x"), Value::Int(7)]));
        sim.run_for(200);
        sim.schedule_crash("server", sim.now() + 10);
        sim.schedule_restart("server", sim.now() + 100);
        sim.run_for(300);
        sim.with_actor::<OverlogActor, _>("server", |a| {
            assert_eq!(a.runtime().count("seen"), 2, "state recovered from WAL");
            assert_eq!(a.recoveries.len(), 1);
            assert_eq!(a.recoveries[0].replayed_entries, 2);
            assert!(a.errors.is_empty(), "no restore errors: {:?}", a.errors);
        });
        // A second cycle recovers again — and checkpointing bounds replay.
        sim.with_actor::<OverlogActor, _>("server", |a| {
            a.enable_durability(store.clone(), CheckpointPolicy { every_entries: 1 });
        });
        sim.inject("server", "req", row(vec![Value::addr("x"), Value::Int(9)]));
        sim.run_for(200);
        assert!(store.has_snapshot("server"), "policy cut a checkpoint");
        sim.schedule_crash("server", sim.now() + 10);
        sim.schedule_restart("server", sim.now() + 100);
        sim.run_for(300);
        sim.with_actor::<OverlogActor, _>("server", |a| {
            assert_eq!(a.runtime().count("seen"), 3);
            let last = a.recoveries.last().unwrap();
            assert!(
                last.replayed_entries <= 1,
                "replay bounded by churn since checkpoint, got {}",
                last.replayed_entries
            );
            assert!(last.snapshot_rows >= 3, "checkpoint carried the state");
        });
    }

    #[test]
    fn overlog_timers_fire_inside_sim() {
        let mut rt = OverlogRuntime::new("n");
        rt.load(
            "timer(hb, 100);
             define(beats, keys(), {Int});
             beats(count<T>) :- hb_log(T);
             define(hb_log, keys(0), {Int});
             hb_log(T) :- hb(T);",
        )
        .unwrap();
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("n", Box::new(OverlogActor::new(rt, 50)));
        sim.run_until(1_000);
        sim.with_actor::<OverlogActor, _>("n", |a| {
            let beats = a.runtime().rows("beats");
            let n = beats[0][0].as_int().unwrap();
            assert!((9..=11).contains(&n), "got {n} heartbeats");
        });
    }
}
