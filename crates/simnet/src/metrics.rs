//! Measurement helpers shared by experiments — moved to
//! `boom_trace::metrics` as part of the unified observability layer and
//! re-exported here so existing call sites keep working. New code should
//! use `boom_trace::metrics` (and its [`boom_trace::Registry`]) directly.

pub use boom_trace::metrics::{print_series, Samples};
