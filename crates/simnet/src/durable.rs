//! Per-node durable storage that survives crash/restart.
//!
//! A [`DurableStore`] models each node's local disk: a checkpoint
//! snapshot plus a write-ahead log of committed tick deltas. It lives in
//! the harness, *outside* the actors, so [`crate::Sim::schedule_crash`] /
//! [`crate::Sim::schedule_restart`] wipe a node's volatile runtime but
//! not its disk — exactly the failure model a real NameNode faces.
//!
//! Everything is deterministic: the store draws no randomness on the
//! normal path, and the injectable disk faults ([`torn
//! write`](DurableStore::inject_torn_write), [`lost
//! sync`](DurableStore::inject_lose_sync)) derive their corruption points
//! from the store's seed, so a faulted run replays bit-for-bit.
//!
//! Fault semantics mirror real logs:
//!
//! * **Torn write** — the next append is truncated mid-batch and fails
//!   its checksum; recovery stops at the torn batch and discards it and
//!   everything after (a log is sequential: data past a corrupt record is
//!   unreachable).
//! * **Lost sync** — appends during the window are written but not
//!   fsynced; the first append after the window hardens everything
//!   buffered before it. Recovery drops a trailing unsynced suffix.
//! * **Checkpoints** are atomic (write-new-then-rename + fsync), so they
//!   are not subject to either fault; the log is truncated only once the
//!   snapshot is safely installed.
//!
//! Recovery also truncates the surviving log at the first corrupt or
//! unsynced batch, as a real recovering process does, so post-recovery
//! appends extend a clean log.

use boom_overlog::{CommitRecord, RuntimeSnapshot};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One appended batch: the committed deltas of a single actor activation
/// (one or more runtime ticks), plus the tracked counter values after it.
#[derive(Debug, Clone, Default)]
pub struct WalBatch {
    /// Virtual time of the append.
    pub at: u64,
    /// Committed deltas, in commit order.
    pub entries: Vec<CommitRecord>,
    /// Tracked counter values after this batch (last batch wins).
    pub counters: Vec<(String, i64)>,
    /// Batch failed its checksum (torn write); replay stops here.
    pub torn: bool,
    /// Batch reached the platter (fsync); unsynced suffixes are lost.
    pub synced: bool,
}

/// What [`DurableStore::recover`] found on a node's disk.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Latest checkpoint, if any.
    pub snapshot: Option<RuntimeSnapshot>,
    /// Surviving log entries after the checkpoint, flattened in order.
    pub log: Vec<CommitRecord>,
    /// Final tracked counter values (from the last surviving batch, or
    /// the checkpoint when the log is empty).
    pub counters: Vec<(String, i64)>,
    /// Surviving batches the log entries came from.
    pub batches: usize,
    /// Batches discarded as torn or unsynced.
    pub discarded: usize,
}

#[derive(Debug, Default)]
struct Disk {
    snapshot: Option<RuntimeSnapshot>,
    wal: Vec<WalBatch>,
    /// The next append is torn (injected fault).
    torn_next: bool,
    /// Appends strictly before this virtual time are not fsynced.
    lose_sync_until: u64,
    appends: u64,
    checkpoints: u64,
    recoveries: u64,
}

/// Shared handle to every node's simulated disk. Cloning shares the
/// underlying storage (actors hold one handle, the harness another).
#[derive(Debug, Clone)]
pub struct DurableStore {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug)]
struct Inner {
    disks: HashMap<String, Disk>,
    /// Seed-derived state advanced only by fault injection, so the
    /// fault-free path is randomness-free.
    fault_rng: u64,
}

impl Default for DurableStore {
    fn default() -> Self {
        DurableStore::new(0)
    }
}

impl DurableStore {
    /// Create a store; `seed` drives only the injected-fault corruption
    /// points.
    pub fn new(seed: u64) -> Self {
        DurableStore {
            inner: Arc::new(Mutex::new(Inner {
                disks: HashMap::new(),
                fault_rng: seed ^ 0x9e37_79b9_7f4a_7c15,
            })),
        }
    }

    /// Append a batch of committed deltas to `node`'s log, applying any
    /// pending injected fault. A synced append hardens everything
    /// buffered before it (the fsync covers the file, not the write).
    pub fn append(
        &self,
        node: &str,
        at: u64,
        entries: Vec<CommitRecord>,
        counters: Vec<(String, i64)>,
    ) {
        let mut g = self.inner.lock().unwrap();
        let cut = if g.disks.entry(node.to_string()).or_default().torn_next {
            // xorshift64*: deterministic tear point from the seed.
            g.fault_rng ^= g.fault_rng << 13;
            g.fault_rng ^= g.fault_rng >> 7;
            g.fault_rng ^= g.fault_rng << 17;
            Some(g.fault_rng as usize)
        } else {
            None
        };
        let d = g.disks.get_mut(node).expect("entry created above");
        let mut batch = WalBatch {
            at,
            entries,
            counters,
            torn: false,
            synced: true,
        };
        if let Some(r) = cut {
            d.torn_next = false;
            let keep = if batch.entries.is_empty() {
                0
            } else {
                r % batch.entries.len()
            };
            batch.entries.truncate(keep);
            batch.torn = true;
        }
        if at < d.lose_sync_until {
            batch.synced = false;
        } else {
            for b in d.wal.iter_mut() {
                b.synced = true;
            }
        }
        d.appends += 1;
        d.wal.push(batch);
    }

    /// Install a checkpoint for `node` and truncate its log: replay cost
    /// from now on is bounded by churn since this snapshot.
    pub fn checkpoint(&self, node: &str, snapshot: RuntimeSnapshot) {
        let mut g = self.inner.lock().unwrap();
        let d = g.disks.entry(node.to_string()).or_default();
        d.snapshot = Some(snapshot);
        d.wal.clear();
        d.checkpoints += 1;
    }

    /// Read back `node`'s durable state: the latest checkpoint plus the
    /// surviving log prefix (stopping at the first torn or unsynced
    /// batch, which is discarded along with everything after it — and
    /// truncated from the disk, as a recovering process would).
    pub fn recover(&self, node: &str) -> Recovered {
        let mut g = self.inner.lock().unwrap();
        let d = g.disks.entry(node.to_string()).or_default();
        let mut out = Recovered {
            snapshot: d.snapshot.clone(),
            counters: d
                .snapshot
                .as_ref()
                .map(|s| s.counters.clone())
                .unwrap_or_default(),
            ..Recovered::default()
        };
        let mut stop = d.wal.len();
        for (i, b) in d.wal.iter().enumerate() {
            if b.torn || !b.synced {
                stop = i;
                break;
            }
            out.log.extend(b.entries.iter().cloned());
            out.counters = b.counters.clone();
            out.batches += 1;
        }
        out.discarded = d.wal.len() - stop;
        d.wal.truncate(stop);
        d.recoveries += 1;
        out
    }

    /// Copy `from`'s entire disk (checkpoint + log) over `to`'s — the
    /// bulk state transfer behind snapshot catch-up. The caller filters
    /// identity-bound tables before restoring on the target.
    pub fn copy_disk(&self, from: &str, to: &str) {
        let mut g = self.inner.lock().unwrap();
        let src = g.disks.entry(from.to_string()).or_default();
        let (snapshot, wal) = (src.snapshot.clone(), src.wal.clone());
        let dst = g.disks.entry(to.to_string()).or_default();
        dst.snapshot = snapshot;
        dst.wal = wal;
    }

    /// Inject a torn write: `node`'s next append is truncated mid-batch.
    pub fn inject_torn_write(&self, node: &str) {
        let mut g = self.inner.lock().unwrap();
        g.disks.entry(node.to_string()).or_default().torn_next = true;
    }

    /// Inject lost syncs: appends on `node` strictly before virtual time
    /// `until` are written but not fsynced.
    pub fn inject_lose_sync(&self, node: &str, until: u64) {
        let mut g = self.inner.lock().unwrap();
        let d = g.disks.entry(node.to_string()).or_default();
        d.lose_sync_until = d.lose_sync_until.max(until);
    }

    /// Log batches currently on `node`'s disk.
    pub fn wal_batches(&self, node: &str) -> usize {
        let g = self.inner.lock().unwrap();
        g.disks.get(node).map(|d| d.wal.len()).unwrap_or(0)
    }

    /// Log entries currently on `node`'s disk (across all batches).
    pub fn wal_entries(&self, node: &str) -> usize {
        let g = self.inner.lock().unwrap();
        g.disks
            .get(node)
            .map(|d| d.wal.iter().map(|b| b.entries.len()).sum())
            .unwrap_or(0)
    }

    /// Whether `node` has a checkpoint on disk.
    pub fn has_snapshot(&self, node: &str) -> bool {
        let g = self.inner.lock().unwrap();
        g.disks
            .get(node)
            .map(|d| d.snapshot.is_some())
            .unwrap_or(false)
    }

    /// Lifetime `(appends, checkpoints, recoveries)` counters for `node`.
    pub fn stats(&self, node: &str) -> (u64, u64, u64) {
        let g = self.inner.lock().unwrap();
        g.disks
            .get(node)
            .map(|d| (d.appends, d.checkpoints, d.recoveries))
            .unwrap_or((0, 0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boom_overlog::value::row;
    use boom_overlog::{CommitOp, Value};

    fn rec(table: &str, v: i64, op: CommitOp) -> CommitRecord {
        CommitRecord {
            table: table.into(),
            row: row(vec![Value::Int(v)]),
            op,
        }
    }

    fn batch(vals: &[i64]) -> Vec<CommitRecord> {
        vals.iter()
            .map(|&v| rec("kv", v, CommitOp::Insert))
            .collect()
    }

    #[test]
    fn append_and_recover_round_trip() {
        let store = DurableStore::new(7);
        store.append("n", 10, batch(&[1, 2]), vec![("c".into(), 5)]);
        store.append("n", 20, batch(&[3]), vec![("c".into(), 6)]);
        let r = store.recover("n");
        assert!(r.snapshot.is_none());
        assert_eq!(r.log.len(), 3);
        assert_eq!(r.counters, vec![("c".to_string(), 6)]);
        assert_eq!(r.batches, 2);
        assert_eq!(r.discarded, 0);
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let store = DurableStore::new(7);
        store.append("n", 10, batch(&[1, 2, 3]), vec![]);
        store.checkpoint(
            "n",
            RuntimeSnapshot {
                tables: vec![(
                    "kv".into(),
                    batch(&[0]).into_iter().map(|r| r.row).collect(),
                )],
                counters: vec![],
            },
        );
        assert_eq!(store.wal_entries("n"), 0);
        store.append("n", 20, batch(&[4]), vec![]);
        let r = store.recover("n");
        assert!(r.snapshot.is_some());
        assert_eq!(r.log.len(), 1, "replay bounded by churn since checkpoint");
    }

    #[test]
    fn torn_write_discards_the_batch_and_suffix() {
        let store = DurableStore::new(7);
        store.append("n", 10, batch(&[1]), vec![]);
        store.inject_torn_write("n");
        store.append("n", 20, batch(&[2, 3]), vec![]);
        store.append("n", 30, batch(&[4]), vec![]);
        let r = store.recover("n");
        assert_eq!(r.log.len(), 1, "replay stops at the torn batch");
        assert_eq!(r.discarded, 2, "torn batch and unreachable suffix");
        // Recovery truncated the debris: the log is clean again.
        store.append("n", 40, batch(&[5]), vec![]);
        assert_eq!(store.recover("n").log.len(), 2);
    }

    #[test]
    fn lost_sync_drops_trailing_unsynced_suffix() {
        let store = DurableStore::new(7);
        store.append("n", 10, batch(&[1]), vec![]);
        store.inject_lose_sync("n", 100);
        store.append("n", 50, batch(&[2]), vec![]);
        store.append("n", 60, batch(&[3]), vec![]);
        let r = store.recover("n");
        assert_eq!(r.log.len(), 1, "unsynced suffix lost");
        assert_eq!(r.discarded, 2);
    }

    #[test]
    fn later_sync_hardens_buffered_batches() {
        let store = DurableStore::new(7);
        store.inject_lose_sync("n", 100);
        store.append("n", 50, batch(&[1]), vec![]);
        // Past the window: this append's fsync hardens the buffered one.
        store.append("n", 150, batch(&[2]), vec![]);
        let r = store.recover("n");
        assert_eq!(r.log.len(), 2);
        assert_eq!(r.discarded, 0);
    }

    #[test]
    fn torn_point_is_seed_deterministic() {
        let cut = |seed| {
            let s = DurableStore::new(seed);
            s.inject_torn_write("n");
            s.append("n", 10, batch(&[1, 2, 3, 4, 5, 6, 7, 8]), vec![]);
            s.recover("n");
            s.append("n", 20, batch(&[9]), vec![]);
            s.recover("n").log.len()
        };
        assert_eq!(cut(1), cut(1), "same seed, same tear point");
    }

    #[test]
    fn copy_disk_transfers_checkpoint_and_log() {
        let store = DurableStore::new(7);
        store.checkpoint("a", RuntimeSnapshot::default());
        store.append("a", 10, batch(&[1]), vec![]);
        store.copy_disk("a", "b");
        let r = store.recover("b");
        assert!(r.snapshot.is_some());
        assert_eq!(r.log.len(), 1);
    }
}
