//! Integration tests for the Overlog Paxos kernel: agreement, ordering,
//! leader failover, recovery of in-flight values, and tolerance to message
//! loss.

use boom_paxos::{decided_log, paxos_runtime, propose_row, PaxosGroup};
use boom_simnet::{OverlogActor, Sim, SimConfig};

const MEMBERS: [&str; 3] = ["px0", "px1", "px2"];

fn build(sim_cfg: SimConfig, lease_ms: u64) -> (Sim, PaxosGroup) {
    let group = PaxosGroup::new(&MEMBERS, lease_ms);
    let mut sim = Sim::new(sim_cfg);
    for name in &group.members {
        let g = group.clone();
        sim.add_node(
            name,
            Box::new(OverlogActor::with_factory(
                Box::new(move |n| paxos_runtime(n, &g)),
                20,
                name,
            )),
        );
    }
    (sim, group)
}

fn log_of(sim: &mut Sim, node: &str) -> Vec<(i64, String)> {
    sim.with_actor::<OverlogActor, _>(node, |a| decided_log(a.runtime_ref()))
}

fn decided_count(sim: &mut Sim, node: &str) -> usize {
    sim.with_actor::<OverlogActor, _>(node, |a| a.runtime_ref().count("decided"))
}

fn assert_no_runtime_errors(sim: &mut Sim, nodes: &[&str]) {
    for n in nodes {
        if !sim.is_up(n) {
            continue;
        }
        let errs = sim.with_actor::<OverlogActor, _>(n, |a| a.errors.clone());
        assert!(errs.is_empty(), "{n} had runtime errors: {errs:?}");
    }
}

#[test]
fn three_replicas_decide_in_proposal_order() {
    let (mut sim, _) = build(SimConfig::default(), 4_000);
    for i in 0..5 {
        sim.inject(
            "px0",
            "propose",
            propose_row("client", i, &format!("cmd{i}"), vec![]),
        );
        sim.run_for(200);
    }
    let ok = sim.run_while(30_000, |s| {
        MEMBERS
            .iter()
            .all(|m| s.with_actor::<OverlogActor, _>(m, |a| a.runtime_ref().count("decided") >= 5))
    });
    assert!(ok, "not all replicas learned 5 decisions");
    let l0 = log_of(&mut sim, "px0");
    assert_eq!(
        l0.iter().map(|(_, c)| c.as_str()).collect::<Vec<_>>(),
        vec!["cmd0", "cmd1", "cmd2", "cmd3", "cmd4"],
        "log preserves proposal order"
    );
    assert_eq!(l0, log_of(&mut sim, "px1"));
    assert_eq!(l0, log_of(&mut sim, "px2"));
    assert_no_runtime_errors(&mut sim, &MEMBERS);
}

#[test]
fn leader_failover_elects_and_continues() {
    let (mut sim, _) = build(SimConfig::default(), 3_000);
    sim.inject(
        "px0",
        "propose",
        propose_row("c", 1, "before-crash", vec![]),
    );
    let ok = sim.run_while(10_000, |s| {
        MEMBERS
            .iter()
            .all(|m| s.with_actor::<OverlogActor, _>(m, |a| a.runtime_ref().count("decided") >= 1))
    });
    assert!(ok, "initial value not decided");

    // Kill the leader; px1 should take over after its lease expires.
    sim.schedule_crash("px0", sim.now() + 10);
    sim.run_for(100);
    // Proposals now go to the next replica (clients retry in practice).
    sim.inject("px1", "propose", propose_row("c", 2, "after-crash", vec![]));
    let ok = sim.run_while(60_000, |s| {
        ["px1", "px2"]
            .iter()
            .all(|m| s.with_actor::<OverlogActor, _>(m, |a| a.runtime_ref().count("decided") >= 2))
    });
    assert!(ok, "no progress after failover");
    let l1 = log_of(&mut sim, "px1");
    let l2 = log_of(&mut sim, "px2");
    assert_eq!(l1, l2, "surviving replicas agree");
    assert!(l1.iter().any(|(_, c)| c == "before-crash"));
    assert!(l1.iter().any(|(_, c)| c == "after-crash"));
    assert_no_runtime_errors(&mut sim, &["px1", "px2"]);
}

#[test]
fn agreement_holds_per_slot_after_failover() {
    // Whatever happens, no two replicas may decide different commands for
    // the same slot.
    let (mut sim, _) = build(SimConfig::default(), 3_000);
    for i in 0..3 {
        sim.inject(
            "px0",
            "propose",
            propose_row("c", i, &format!("a{i}"), vec![]),
        );
    }
    sim.run_for(1_500);
    sim.schedule_crash("px0", sim.now() + 1);
    sim.run_for(50);
    for i in 0..3 {
        sim.inject(
            "px1",
            "propose",
            propose_row("c", 10 + i, &format!("b{i}"), vec![]),
        );
    }
    sim.run_while(90_000, |s| {
        ["px1", "px2"].iter().all(|m| {
            s.with_actor::<OverlogActor, _>(m, |a| {
                decided_log(a.runtime_ref())
                    .iter()
                    .filter(|(_, c)| c.starts_with('b'))
                    .count()
                    >= 3
            })
        })
    });
    let l1 = log_of(&mut sim, "px1");
    let l2 = log_of(&mut sim, "px2");
    for (s1, c1) in &l1 {
        for (s2, c2) in &l2 {
            if s1 == s2 {
                assert_eq!(c1, c2, "slot {s1} decided differently: {c1} vs {c2}");
            }
        }
    }
    // The new leader must have recovered or re-proposed the b-commands.
    assert!(l1.iter().filter(|(_, c)| c.starts_with('b')).count() >= 3);
    assert_no_runtime_errors(&mut sim, &["px1", "px2"]);
}

#[test]
fn tolerates_message_loss() {
    let cfg = SimConfig {
        drop_prob: 0.05,
        duplicate_prob: 0.05,
        min_latency: 1,
        max_latency: 20,
        seed: 11,
    };
    let (mut sim, _) = build(cfg, 4_000);
    for i in 0..4 {
        sim.inject(
            "px0",
            "propose",
            propose_row("c", i, &format!("v{i}"), vec![]),
        );
        sim.run_for(300);
    }
    let ok = sim.run_while(120_000, |s| {
        MEMBERS
            .iter()
            .all(|m| s.with_actor::<OverlogActor, _>(m, |a| a.runtime_ref().count("decided") >= 4))
    });
    assert!(ok, "loss prevented agreement");
    let l0 = log_of(&mut sim, "px0");
    assert_eq!(l0, log_of(&mut sim, "px1"));
    assert_eq!(l0, log_of(&mut sim, "px2"));
}

#[test]
fn minority_partition_makes_no_progress_majority_does() {
    let (mut sim, _) = build(SimConfig::default(), 3_000);
    sim.inject("px0", "propose", propose_row("c", 1, "v1", vec![]));
    sim.run_while(10_000, |s| {
        s.with_actor::<OverlogActor, _>("px0", |a| a.runtime_ref().count("decided") >= 1)
    });
    // Cut the leader off from the majority.
    sim.set_partition(&["px0"], &["px1", "px2"], true);
    sim.inject("px0", "propose", propose_row("c", 2, "minority", vec![]));
    sim.run_for(12_000);
    assert_eq!(
        decided_count(&mut sim, "px0"),
        1,
        "isolated leader must not decide alone"
    );
    // Majority side elects a new leader and commits.
    sim.inject("px1", "propose", propose_row("c", 3, "majority", vec![]));
    let ok = sim.run_while(sim.now() + 60_000, |s| {
        s.with_actor::<OverlogActor, _>("px1", |a| {
            decided_log(a.runtime_ref())
                .iter()
                .any(|(_, c)| c == "majority")
        })
    });
    assert!(ok, "majority side stalled");
    // Heal: old leader is deposed; logs converge on the majority's view.
    sim.set_partition(&["px0"], &["px1", "px2"], false);
    sim.run_for(20_000);
    let l1 = log_of(&mut sim, "px1");
    let l2 = log_of(&mut sim, "px2");
    assert_eq!(l1, l2);
    for (s0, c0) in log_of(&mut sim, "px0") {
        if let Some((_, c1)) = l1.iter().find(|(s, _)| *s == s0) {
            assert_eq!(&c0, c1, "slot {s0} diverged after heal");
        }
    }
}
