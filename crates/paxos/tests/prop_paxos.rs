//! Property-based safety tests for the Overlog Paxos: across random
//! network conditions, crash schedules, and proposal interleavings, no
//! two replicas may ever decide different commands for the same slot
//! (agreement), and every decided command must have been proposed
//! (validity — modulo no-op gap fillers).

use boom_paxos::{decided_log, paxos_runtime, propose_row, PaxosGroup};
use boom_simnet::{OverlogActor, Sim, SimConfig};
use proptest::prelude::*;

const MEMBERS: [&str; 3] = ["px0", "px1", "px2"];

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    drop_prob: f64,
    max_latency: u64,
    proposals: Vec<(usize, u64)>, // (target member, delay before injecting)
    crash: Option<(usize, u64)>,  // (member, time)
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        0u64..1000,
        prop_oneof![Just(0.0), Just(0.05), Just(0.15)],
        5u64..60,
        proptest::collection::vec((0usize..3, 50u64..800), 1..6),
        proptest::option::of((0usize..3, 500u64..4000)),
    )
        .prop_map(
            |(seed, drop_prob, max_latency, proposals, crash)| Scenario {
                seed,
                drop_prob,
                max_latency,
                proposals,
                crash,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn agreement_and_validity_hold(sc in scenario()) {
        let group = PaxosGroup::new(&MEMBERS, 2_500);
        let mut sim = Sim::new(SimConfig {
            seed: sc.seed,
            drop_prob: sc.drop_prob,
            duplicate_prob: 0.05,
            min_latency: 1,
            max_latency: sc.max_latency,
        });
        for name in &group.members {
            let g = group.clone();
            sim.add_node(
                name,
                Box::new(OverlogActor::with_factory(
                    Box::new(move |n| paxos_runtime(n, &g)),
                    20,
                    name,
                )),
            );
        }
        let mut proposed: Vec<String> = Vec::new();
        for (i, (target, delay)) in sc.proposals.iter().enumerate() {
            sim.run_for(*delay);
            let cmd = format!("cmd{i}");
            proposed.push(cmd.clone());
            sim.inject(
                MEMBERS[*target],
                "propose",
                propose_row("client", i as i64, &cmd, vec![]),
            );
        }
        if let Some((victim, at)) = sc.crash {
            sim.schedule_crash(MEMBERS[victim], at);
        }
        sim.run_for(60_000);

        // Collect logs from live replicas.
        let mut logs: Vec<(usize, Vec<(i64, String)>)> = Vec::new();
        for (i, m) in MEMBERS.iter().enumerate() {
            if sim.is_up(m) {
                let log = sim.with_actor::<OverlogActor, _>(m, |a| decided_log(a.runtime_ref()));
                logs.push((i, log));
            }
        }
        // Agreement: per-slot decisions never conflict.
        for (i, a) in &logs {
            for (j, b) in &logs {
                if i >= j {
                    continue;
                }
                for (s1, c1) in a {
                    for (s2, c2) in b {
                        if s1 == s2 {
                            prop_assert_eq!(
                                c1, c2,
                                "replicas {} and {} disagree on slot {}", i, j, s1
                            );
                        }
                    }
                }
            }
        }
        // Validity: every decided non-noop command was proposed.
        for (_, log) in &logs {
            for (_, cmd) in log {
                if cmd != "noop" {
                    prop_assert!(
                        proposed.contains(cmd),
                        "decided unproposed command {}", cmd
                    );
                }
            }
        }
        // No duplicate commands across slots within one log (each value is
        // chosen for at most one slot under the single-flight proposer).
        for (_, log) in &logs {
            let mut cmds: Vec<&String> = log
                .iter()
                .map(|(_, c)| c)
                .filter(|c| *c != "noop")
                .collect();
            let before = cmds.len();
            cmds.sort();
            cmds.dedup();
            prop_assert_eq!(before, cmds.len(), "a command was decided twice");
        }
    }
}
