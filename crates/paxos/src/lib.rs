//! # boom-paxos — Paxos written in Overlog
//!
//! The paper's availability revision replicated the BOOM-FS NameNode with
//! a Paxos implementation written in Overlog (~300 lines). This crate
//! carries that program (`src/olg/paxos.olg`, [`PAXOS_OLG`]): a
//! multi-instance Paxos with a stable lease-based leader, phase-1 recovery
//! on failover, retransmission, and no-op gap filling. Proposer, acceptor
//! and learner roles all live in the same rule set; every replica runs the
//! whole program.
//!
//! The `boom-core` crate composes this program with the BOOM-FS NameNode
//! program to build the replicated NameNode; here the consensus kernel is
//! exposed directly for reuse and testing.
//!
//! ## Usage
//!
//! ```no_run
//! use boom_paxos::{paxos_runtime, PaxosGroup};
//! use boom_simnet::{Sim, SimConfig, OverlogActor};
//! use boom_overlog::{Value, value::row};
//!
//! let group = PaxosGroup::new(&["px0", "px1", "px2"], 4_000);
//! let mut sim = Sim::new(SimConfig::default());
//! for name in &group.members {
//!     let g = group.clone();
//!     sim.add_node(name, Box::new(OverlogActor::with_factory(
//!         Box::new(move |n| paxos_runtime(n, &g)), 20, name)));
//! }
//! // Propose a value at the initial leader (member 0).
//! sim.inject("px0", "propose", row(vec![Value::list(vec![
//!     Value::addr("client"), Value::Int(1), Value::str("cmd"), Value::list(vec![]),
//! ])]));
//! sim.run_for(2_000);
//! ```

use boom_overlog::{OverlogRuntime, Row, Value};
use std::sync::Arc;

/// The Overlog Paxos program.
pub const PAXOS_OLG: &str = include_str!("olg/paxos.olg");

/// Replica catch-up rules (anti-entropy over the decided sequence),
/// loaded on top of [`PAXOS_OLG`] by the durable deployment variants.
pub const CATCHUP_OLG: &str = include_str!("olg/catchup.olg");

/// The tables a durable acceptor/learner must not forget: its promise
/// floor (`seen_ballot`, from which the `promised` view is derived), its
/// accepted values, and the learned decisions. Everything else (proposer
/// queues, election scratch, leases) is safely volatile.
pub const PAXOS_DURABLE_TABLES: &[&str] = &["seen_ballot", "accepted", "decided"];

/// Static description of a Paxos group.
#[derive(Debug, Clone)]
pub struct PaxosGroup {
    /// Member node names, in index order; member 0 is the initial leader.
    pub members: Vec<String>,
    /// Leader lease in virtual ms.
    pub lease_ms: u64,
}

impl PaxosGroup {
    /// Describe a group.
    pub fn new(members: &[&str], lease_ms: u64) -> Self {
        PaxosGroup {
            members: members.iter().map(|s| s.to_string()).collect(),
            lease_ms,
        }
    }

    /// Majority size.
    pub fn quorum(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// The member index of a node name (panics on unknown names — a
    /// harness bug).
    pub fn index_of(&self, name: &str) -> usize {
        self.members
            .iter()
            .position(|m| m == name)
            .unwrap_or_else(|| panic!("{name} is not a member of the Paxos group"))
    }

    /// The Overlog facts priming one replica's group state.
    pub fn facts_for(&self, name: &str) -> String {
        let idx = self.index_of(name);
        let mut out = String::new();
        for m in &self.members {
            out.push_str(&format!("members(\"{m}\");\n"));
        }
        out.push_str(&format!("member_idx({idx});\n"));
        out.push_str(&format!("nmembers({});\n", self.members.len()));
        out.push_str(&format!("quorum_size({});\n", self.quorum()));
        out.push_str(&format!("lease_ms({});\n", self.lease_ms));
        out.push_str(&format!("ballot({idx});\n"));
        out.push_str(&format!("leader(\"{}\");\n", self.members[0]));
        out.push_str("lead_ballot(0);\n");
        out.push_str("last_lead_hb(0);\n");
        out.push_str("seen_ballot(0 - 1);\n");
        out
    }
}

/// Register the `qid()` builtin: a per-runtime monotonic counter used for
/// proposal-queue ids (kept separate from the NameNode's `newid()` so
/// leader-only allocations never skew replicated state). Registered as a
/// tracked counter, so durable deployments snapshot and restore it.
pub fn register_qid(rt: &mut OverlogRuntime) {
    rt.register_counter("qid", 0);
}

/// Build a standalone Paxos replica runtime.
pub fn paxos_runtime(addr: &str, group: &PaxosGroup) -> OverlogRuntime {
    let mut rt = OverlogRuntime::new(addr);
    register_qid(&mut rt);
    rt.load(PAXOS_OLG).expect("embedded paxos.olg must compile");
    rt.load(&group.facts_for(addr))
        .expect("group facts are well-formed");
    rt
}

/// Build a durable Paxos replica runtime: [`paxos_runtime`] plus the
/// catch-up rules ([`CATCHUP_OLG`]) and the acceptor/learner tables
/// ([`PAXOS_DURABLE_TABLES`]) marked durable — a restarted replica keeps
/// its promises instead of rejoining as a blank acceptor.
pub fn paxos_durable_runtime(addr: &str, group: &PaxosGroup) -> OverlogRuntime {
    let mut rt = paxos_runtime(addr, group);
    rt.load(CATCHUP_OLG)
        .expect("embedded catchup.olg must compile");
    rt.set_durable_tables(PAXOS_DURABLE_TABLES);
    rt
}

/// Build a `propose` row carrying a `[src, req_id, cmd, args]` value.
pub fn propose_row(src: &str, req_id: i64, cmd: &str, args: Vec<Value>) -> Row {
    Arc::new(vec![Value::list(vec![
        Value::addr(src),
        Value::Int(req_id),
        Value::str(cmd),
        Value::list(args),
    ])])
}

/// Decode a replica's `decided` table into `(seq, cmd)` pairs, sorted by
/// sequence number (noop fillers included).
pub fn decided_log(rt: &OverlogRuntime) -> Vec<(i64, String)> {
    let mut out: Vec<(i64, String)> = rt
        .rows("decided")
        .iter()
        .filter_map(|r| Some((r[0].as_int()?, r[3].as_str()?.to_string())))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_facts_cover_every_member() {
        let g = PaxosGroup::new(&["a", "b", "c"], 4_000);
        assert_eq!(g.quorum(), 2);
        let facts = g.facts_for("b");
        assert!(facts.contains("member_idx(1);"));
        assert!(facts.contains("quorum_size(2);"));
        assert!(facts.contains("leader(\"a\");"));
    }

    #[test]
    fn paxos_program_compiles() {
        let g = PaxosGroup::new(&["a", "b", "c"], 4_000);
        let rt = paxos_runtime("a", &g);
        assert!(rt.rule_count() > 30);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn unknown_member_panics() {
        PaxosGroup::new(&["a"], 1).index_of("zz");
    }

    #[test]
    fn durable_runtime_marks_acceptor_state() {
        let g = PaxosGroup::new(&["a", "b", "c"], 4_000);
        let rt = paxos_durable_runtime("a", &g);
        assert_eq!(
            rt.durable_tables(),
            vec![
                "accepted".to_string(),
                "decided".to_string(),
                "seen_ballot".to_string()
            ]
        );
        // The base runtime stays volatile (and catch-up-free).
        let base = paxos_runtime("a", &g);
        assert!(!base.durable_enabled());
        assert!(base.rule_count() < rt.rule_count());
    }
}
