//! Golden diagnostic tests: each analyzer code fires on its fixture with
//! the expected line/column position (resolved through the `SourceMap`,
//! so these also pin the span threading from lexer to diagnostic).

use boom_overlog::analysis::analyze_sources;

/// Analyze one source and return `(code, line, col)` per diagnostic.
fn golden(src: &str) -> Vec<(&'static str, usize, usize)> {
    let (diags, map) = analyze_sources(&[("fix.olg", src)]);
    diags
        .iter()
        .map(|d| {
            let (file, line, col) = map.resolve(d.span.start);
            assert_eq!(file, "fix.olg");
            (d.code, line, col)
        })
        .collect()
}

#[test]
fn e0001_parse_error_points_at_offending_line() {
    let src = "define(p, keys(0), {Int});\np(X) :- ;\n";
    assert_eq!(golden(src), vec![("E0001", 2, 9)]);
}

#[test]
fn e0002_unknown_table_points_at_the_predicate() {
    let src = "define(p, keys(0), {Int});\np(X) :- ghost(X);\n";
    assert_eq!(golden(src), vec![("E0002", 2, 9)]);
}

#[test]
fn e0003_arity_mismatch_points_at_the_predicate() {
    let src = "define(p, keys(0), {Int});\n\
               define(q, keys(0,1), {Int, Int});\n\
               q(1, 2);\n\
               p(X) :- q(X);\n";
    assert_eq!(golden(src), vec![("E0003", 4, 9)]);
}

#[test]
fn e0004_unsafe_rule_points_at_the_unbound_use() {
    let src = "define(p, keys(0), {Int});\n\
               define(q, keys(0), {Int});\n\
               q(1);\n\
               p(Y) :- q(X);\n";
    assert_eq!(golden(src), vec![("E0004", 4, 1)]);
}

#[test]
fn e0005_unstratifiable_cycle_names_the_path() {
    let src = "define(a, keys(0), {Int});\n\
               define(b, keys(0), {Int});\n\
               a(1);\n\
               a(X) :- b(X);\n\
               b(X) :- a(X), notin b(X);\n";
    let (diags, _) = analyze_sources(&[("fix.olg", src)]);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "E0005");
    assert!(
        diags[0].message.contains("b -> b") || diags[0].message.contains("cycle"),
        "cycle path missing: {}",
        diags[0].message
    );
}

#[test]
fn e0006_aggregate_head_keyed_on_wrong_columns() {
    let src = "define(c, keys(0,1), {Int, Int});\n\
               define(q, keys(0,1), {Int, Int});\n\
               q(1, 2);\n\
               c(X, count<Y>) :- q(X, Y);\n";
    assert_eq!(golden(src), vec![("E0006", 4, 1)]);
}

#[test]
fn e0007_view_base_conflict() {
    let src = "define(base, keys(0), {Int});\n\
               define(v, keys(0), {Int});\n\
               event e, {Int};\n\
               base(1);\n\
               v(X) :- base(X);\n\
               v(X) :- e(X);\n";
    let codes: Vec<_> = golden(src).iter().map(|g| g.0).collect();
    assert_eq!(codes, vec!["E0007"]);
}

#[test]
fn e0008_conflicting_redeclaration_points_at_second_define() {
    let src = "define(p, keys(0), {Int});\ndefine(p, keys(0), {Str});\np(1);\np(X) :- p(X);\n";
    assert_eq!(golden(src), vec![("E0008", 2, 1)]);
}

#[test]
fn e0009_location_on_int_column() {
    let src = "define(p, keys(0,1), {Int, Int});\n\
               define(q, keys(0,1), {Int, Int});\n\
               q(1, 2);\n\
               p(@X, Y) :- q(X, Y);\n";
    assert_eq!(golden(src), vec![("E0009", 4, 1)]);
}

#[test]
fn e0010_newid_outside_single_event_rule() {
    let src = "define(p, keys(0), {Int});\n\
               define(q, keys(0), {Int});\n\
               q(1);\n\
               p(newid()) :- q(_);\n";
    assert_eq!(golden(src), vec![("E0010", 4, 1)]);
}

#[test]
fn e0011_derivation_into_timer_table() {
    let src = "timer(tick, 100);\n\
               define(q, keys(0), {Int});\n\
               q(1);\n\
               use_tick(T) :- tick(T);\n\
               event use_tick, {Int};\n\
               tick(X) :- q(X);\n";
    assert_eq!(golden(src), vec![("E0011", 6, 1)]);
}

#[test]
fn e0012_head_type_mismatch() {
    let src = "define(p, keys(0), {Str});\n\
               define(q, keys(0), {Int});\n\
               q(1);\n\
               p(X) :- q(X);\n";
    // The span points at the offending head argument, not the whole head.
    assert_eq!(golden(src), vec![("E0012", 4, 3)]);
}

#[test]
fn w0001_unused_table_points_at_its_define() {
    let src = "define(used, keys(0), {Int});\n\
               define(unused, keys(0), {Int});\n\
               used(1);\n";
    assert_eq!(golden(src), vec![("W0001", 2, 1)]);
}

#[test]
fn w0002_unfillable_join_points_at_the_read() {
    let src = "define(p, keys(0), {Int});\n\
               define(empty, keys(0), {Int});\n\
               event e, {Int};\n\
               e_seen(X) :- e(X);\n\
               event e_seen, {Int};\n\
               p(X) :- empty(X);\n";
    assert_eq!(golden(src), vec![("W0002", 6, 9)]);
}

#[test]
fn w0003_singleton_variable_points_at_the_predicate() {
    let src = "define(p, keys(0), {Int});\n\
               define(q, keys(0,1), {Int, Int});\n\
               q(1, 2);\n\
               p(X) :- q(X, Lonely);\n";
    assert_eq!(golden(src), vec![("W0003", 4, 9)]);
}

#[test]
fn w0004_duplicate_rule_name() {
    let src = "define(p, keys(0), {Int});\n\
               define(q, keys(0), {Int});\n\
               q(1);\n\
               r1 p(X) :- q(X);\n\
               r1 q(X) :- p(X);\n";
    assert_eq!(golden(src), vec![("W0004", 5, 1)]);
}

#[test]
fn w0005_unconsumed_timer() {
    let src = "timer(beat, 500);\n";
    assert_eq!(golden(src), vec![("W0005", 1, 1)]);
}

#[test]
fn multi_file_groups_resolve_to_the_right_file() {
    let a = "define(p, keys(0), {Int});\np(1);\n";
    let b = "p(X) :- ghost(X);\n";
    let (diags, map) = analyze_sources(&[("a.olg", a), ("b.olg", b)]);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "E0002");
    let (file, line, col) = map.resolve(diags[0].span.start);
    assert_eq!((file, line, col), ("b.olg", 1, 9));
}

#[test]
fn rendered_diagnostic_carries_caret_and_help() {
    let src = "define(p, keys(0), {Int});\np(X) :- ghost(X);\n";
    let (diags, map) = analyze_sources(&[("fix.olg", src)]);
    let text = boom_overlog::analysis::render(&diags[0], &map);
    assert!(text.contains("fix.olg:2:9"), "{text}");
    assert!(text.contains("error[E0002]"), "{text}");
    assert!(text.contains("^^^^^^^^"), "{text}");
    assert!(text.contains("help:"), "{text}");
}
