//! Property tests tying the analyzer to the runtime: load-time rejection
//! and `olgcheck` share one implementation, so on randomized programs
//! (valid and broken alike) they must agree — and anything the analyzer
//! passes must load and evaluate without panicking.

use boom_overlog::analysis::analyze_sources;
use boom_overlog::value::row;
use boom_overlog::{OverlogRuntime, Value};
use proptest::prelude::*;

/// The diagnostic codes that correspond to load-time rejection. E0009+
/// (the lint-only errors) and warnings are tolerated by the evaluator.
const LOAD_CODES: &[&str] = &[
    "E0001", "E0002", "E0003", "E0004", "E0005", "E0006", "E0007", "E0008",
];

/// Deterministically expand a spec vector into an Overlog program over a
/// fixed schema. The spec space deliberately produces a mix of clean
/// programs and every load-rejection class: unknown tables, arity
/// mismatches, unsafe rules, unstratifiable negation, view/base conflicts.
fn gen_program(specs: &[(u8, u8, u8, u8)]) -> String {
    let mut src = String::from(
        "define(m0, keys(0), {Int});\n\
         define(m1, keys(0,1), {Int, Int});\n\
         define(m2, keys(0,1), {Int, Int});\n\
         define(cnt, keys(), {Int});\n\
         event ev, {Int};\n\
         m0(1);\n\
         m1(1, 2);\n\
         m2(2, 3);\n",
    );
    // (name, head args, body args) for each schema table.
    const TABLES: &[(&str, &str, &str)] = &[
        ("m0", "X", "X"),
        ("m1", "X, Y", "X, Y"),
        ("m2", "X, Y", "X, Y"),
        ("ev", "X", "X"),
        ("cnt", "X", "X"),
    ];
    for &(h, b1, b2, flavor) in specs {
        let aggregate = flavor & 4 != 0;
        // Head: one of the schema tables, sometimes an unknown one.
        let (head, head_args) = if h as usize % 6 == 5 {
            ("ghost", "X")
        } else {
            let t = TABLES[h as usize % 5];
            (t.0, t.1)
        };
        let head_args = if flavor & 8 != 0 {
            // Replace the first head variable with one the body never
            // binds: an unsafe rule.
            head_args.replacen('X', "W", 1)
        } else {
            head_args.to_string()
        };
        // First body predicate: always a known table, positive.
        let (b1_name, _, b1_args) = TABLES[b1 as usize % 5];
        let b1_args = if flavor & 16 != 0 { "X, Y, Z" } else { b1_args };
        // Optional second body predicate, possibly negated, possibly
        // unknown.
        let body2 = match b2 as usize % 7 {
            0..=4 => {
                let (n, _, a) = TABLES[b2 as usize % 5];
                let neg = if flavor & 1 != 0 { "notin " } else { "" };
                format!(", {neg}{n}({a})")
            }
            5 => ", ghost(X)".to_string(),
            _ => String::new(),
        };
        let delete = if flavor & 2 != 0 { "delete " } else { "" };
        if aggregate {
            src.push_str(&format!(
                "{delete}cnt(count<*>) :- {b1_name}({b1_args}){body2};\n"
            ));
        } else {
            src.push_str(&format!(
                "{delete}{head}({head_args}) :- {b1_name}({b1_args}){body2};\n"
            ));
        }
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The analyzer flags a load-rejection code iff `load()` rejects —
    /// the two are the same functions, and this pins that they stay so.
    #[test]
    fn analyzer_agrees_with_load(
        specs in proptest::collection::vec(
            (0u8..12, 0u8..12, 0u8..12, 0u8..32), 0..8)
    ) {
        let src = gen_program(&specs);
        let (diags, _) = analyze_sources(&[("gen.olg", src.as_str())]);
        let analyzer_rejects = diags.iter().any(|d| LOAD_CODES.contains(&d.code));
        let mut rt = OverlogRuntime::new("n");
        let load = rt.load(&src);
        prop_assert_eq!(
            analyzer_rejects,
            load.is_err(),
            "analyzer and load disagree on:\n{}\ndiags: {:?}\nload: {:?}",
            src,
            diags,
            load.err()
        );
    }

    /// Whatever the analyzer passes must evaluate without panicking:
    /// insert event tuples, tick a few times, and check the runtime's own
    /// re-analysis stays clean of load-rejection codes.
    #[test]
    fn analyzer_clean_programs_evaluate(
        specs in proptest::collection::vec(
            (0u8..12, 0u8..12, 0u8..12, 0u8..32), 0..8),
        events in proptest::collection::vec(0i64..5, 0..4)
    ) {
        let src = gen_program(&specs);
        let (diags, _) = analyze_sources(&[("gen.olg", src.as_str())]);
        if !diags.iter().any(|d| LOAD_CODES.contains(&d.code)) {
            let mut rt = OverlogRuntime::new("n");
            rt.load(&src).expect("analyzer-clean program must load");
            for (i, &v) in events.iter().enumerate() {
                rt.insert("ev", row(vec![Value::Int(v)])).unwrap();
                rt.tick(i as u64 * 10).unwrap();
            }
            rt.tick(1_000).unwrap();
            let recheck = rt.check();
            prop_assert!(
                !recheck.iter().any(|d| LOAD_CODES.contains(&d.code)),
                "runtime re-analysis found load-level problems in a loaded \
                 program:\n{}\n{:?}",
                src,
                recheck
            );
        }
    }
}
