//! Durable-table support: commit-delta capture, snapshot/restore, and
//! tracked counters (the runtime half of the crash-recovery stack; the
//! disk model and actor wiring live in `boom-simnet`).

use boom_overlog::{CommitOp, CommitRecord, OverlogRuntime, Value};

const PROG: &str = "
    define(kv, keys(0), {Int, Int});
    define(cursor, keys(), {Int});
    define(total, keys(), {Int});
    event set, {Int, Int};
    event bump, {Int};
    cursor(0);
    kv(K, V) :- set(K, V);
    cursor(C + 1) :- bump(_), cursor(C);
    total(sum<V>) :- kv(_, V);
";

fn fresh() -> OverlogRuntime {
    let mut rt = OverlogRuntime::new("n");
    rt.load(PROG).unwrap();
    rt
}

/// Canonical dump of all non-event tables.
fn state(rt: &OverlogRuntime) -> String {
    let mut tables: Vec<String> = rt.table_decls().map(|d| d.name.clone()).collect();
    tables.sort();
    let mut s = String::new();
    for t in tables {
        let table = rt.table(&t).unwrap();
        if table.is_event() {
            continue;
        }
        for row in table.sorted_rows() {
            s.push_str(&format!("{t}{row:?}\n"));
        }
    }
    s
}

#[test]
fn capture_is_off_by_default_and_costs_nothing() {
    let mut rt = fresh();
    rt.insert(
        "set",
        boom_overlog::row(vec![Value::Int(1), Value::Int(10)]),
    )
    .unwrap();
    rt.settle(0).unwrap();
    assert!(!rt.durable_enabled());
    assert!(rt.take_commit_delta().is_empty());
}

#[test]
fn capture_logs_base_deltas_but_not_views_or_events() {
    let mut rt = fresh();
    rt.set_durable_all();
    let marked = rt.durable_tables();
    assert!(marked.contains(&"kv".to_string()));
    assert!(marked.contains(&"cursor".to_string()));
    assert!(!marked.contains(&"total".to_string()), "views are derived");
    assert!(!marked.contains(&"set".to_string()), "events are ephemeral");
    assert!(!marked.contains(&"me".to_string()), "identity is ambient");

    rt.insert(
        "set",
        boom_overlog::row(vec![Value::Int(1), Value::Int(10)]),
    )
    .unwrap();
    rt.settle(0).unwrap();
    let delta = rt.take_commit_delta();
    assert!(delta
        .iter()
        .any(|r| r.table == "kv" && r.op == CommitOp::Insert));
    assert!(delta.iter().all(|r| r.table != "total" && r.table != "set"));

    // Key-overwrite and delete are both logged.
    rt.insert(
        "set",
        boom_overlog::row(vec![Value::Int(1), Value::Int(20)]),
    )
    .unwrap();
    rt.settle(10).unwrap();
    rt.delete("kv", boom_overlog::row(vec![Value::Int(1), Value::Int(20)]))
        .unwrap();
    rt.settle(20).unwrap();
    let delta = rt.take_commit_delta();
    assert!(delta
        .iter()
        .any(|r| r.table == "kv" && r.op == CommitOp::Insert));
    assert!(delta
        .iter()
        .any(|r| r.table == "kv" && r.op == CommitOp::Delete));
}

#[test]
fn set_durable_tables_marks_a_subset() {
    let mut rt = fresh();
    rt.set_durable_tables(&["kv", "total", "set", "nonsense"]);
    assert_eq!(rt.durable_tables(), vec!["kv".to_string()]);
    rt.insert("bump", boom_overlog::row(vec![Value::Int(1)]))
        .unwrap();
    rt.settle(0).unwrap();
    assert!(
        rt.take_commit_delta().is_empty(),
        "cursor is not marked, so its churn is not captured"
    );
}

#[test]
fn wal_replay_reproduces_state_including_views_and_singletons() {
    let mut rt = fresh();
    rt.set_durable_all();
    rt.settle(0).unwrap();
    for i in 0..20i64 {
        rt.insert(
            "set",
            boom_overlog::row(vec![Value::Int(i % 4), Value::Int(i * 10)]),
        )
        .unwrap();
        rt.insert("bump", boom_overlog::row(vec![Value::Int(i)]))
            .unwrap();
        rt.settle(i as u64 * 10).unwrap();
    }
    let log = rt.take_commit_delta();
    let counters = rt.counter_values();

    let mut rt2 = fresh();
    rt2.set_durable_all();
    rt2.restore(None, &log, &counters).unwrap();
    assert_eq!(
        state(&rt2),
        state(&rt),
        "physical replay must reproduce bases, the cursor singleton, and views"
    );
    // The factory-fresh `cursor(0)` fact must not clobber the restored
    // value on the first tick.
    rt2.settle(1_000).unwrap();
    assert_eq!(
        rt2.rows("cursor")[0][0],
        Value::Int(20),
        "boot fact must not overwrite the recovered cursor"
    );
}

#[test]
fn snapshot_plus_suffix_log_restores_and_bounds_replay() {
    let mut rt = fresh();
    rt.set_durable_all();
    rt.settle(0).unwrap();
    for i in 0..10i64 {
        rt.insert(
            "set",
            boom_overlog::row(vec![Value::Int(i % 3), Value::Int(i)]),
        )
        .unwrap();
        rt.settle(i as u64 * 10).unwrap();
    }
    rt.take_commit_delta(); // checkpoint: truncate the log...
    let snap = rt.snapshot(); // ...against this snapshot
    for i in 10..13i64 {
        rt.insert(
            "set",
            boom_overlog::row(vec![Value::Int(i % 3), Value::Int(i)]),
        )
        .unwrap();
        rt.settle(i as u64 * 10).unwrap();
    }
    let suffix = rt.take_commit_delta();
    assert!(suffix.len() <= 6, "suffix is churn, not history");

    let mut rt2 = fresh();
    rt2.set_durable_all();
    rt2.restore(Some(&snap), &suffix, &rt.counter_values())
        .unwrap();
    assert_eq!(state(&rt2), state(&rt));
}

#[test]
fn tracked_counters_survive_restore() {
    let mut rt = OverlogRuntime::new("n");
    rt.register_counter("nextid", 2);
    rt.load(
        "define(ids, keys(0), {Int, Int});
         event mk, {Int};
         ids(K, N) :- mk(K), N := nextid();",
    )
    .unwrap();
    rt.set_durable_all();
    for i in 0..5i64 {
        rt.insert("mk", boom_overlog::row(vec![Value::Int(i)]))
            .unwrap();
        rt.settle(i as u64).unwrap();
    }
    assert_eq!(rt.counter_values(), vec![("nextid".to_string(), 7)]);
    let log = rt.take_commit_delta();

    let mut rt2 = OverlogRuntime::new("n");
    rt2.register_counter("nextid", 2);
    rt2.load(
        "define(ids, keys(0), {Int, Int});
         event mk, {Int};
         ids(K, N) :- mk(K), N := nextid();",
    )
    .unwrap();
    rt2.set_durable_all();
    rt2.restore(None, &log, &rt.counter_values()).unwrap();
    // New derivations continue the sequence instead of re-issuing ids.
    rt2.insert("mk", boom_overlog::row(vec![Value::Int(99)]))
        .unwrap();
    rt2.settle(100).unwrap();
    let row9 = rt2
        .rows("ids")
        .into_iter()
        .find(|r| r[0] == Value::Int(99))
        .unwrap();
    assert_eq!(row9[1], Value::Int(7), "recovered counter continues at 7");
}

#[test]
fn load_snapshot_rows_installs_base_state_and_logs_it() {
    let mut src = fresh();
    src.set_durable_all();
    for i in 0..6i64 {
        src.insert(
            "set",
            boom_overlog::row(vec![Value::Int(i), Value::Int(i * 2)]),
        )
        .unwrap();
        src.settle(i as u64).unwrap();
    }
    let snap = src.snapshot();

    let mut dst = fresh();
    dst.set_durable_all();
    dst.settle(0).unwrap();
    dst.take_commit_delta();
    let n = dst.load_snapshot_rows(&snap.tables).unwrap();
    assert!(n >= 6);
    assert_eq!(
        state(&dst),
        state(&src),
        "views rebuilt over installed state"
    );
    // The install is itself durable: replaying dst's log from scratch
    // reproduces the installed rows.
    let log: Vec<CommitRecord> = dst.take_commit_delta();
    let mut rt3 = fresh();
    rt3.set_durable_all();
    rt3.restore(None, &log, &[]).unwrap();
    assert_eq!(state(&rt3), state(&dst));
}
