//! Edge cases and error paths of the Overlog engine: malformed programs,
//! type violations, runtime API misuse, builtin failures, and semantics
//! corners not covered by the main suites.

use boom_overlog::value::row;
use boom_overlog::{OverlogError, OverlogRuntime, Value};

fn rt(src: &str) -> OverlogRuntime {
    let mut r = OverlogRuntime::new("n1");
    r.load(src).expect("program loads");
    r
}

// --- load-time rejections ---

#[test]
fn unknown_table_in_fact_rejected() {
    let mut r = OverlogRuntime::new("n");
    let err = r.load("ghost(1);").unwrap_err();
    assert!(matches!(err, OverlogError::UnknownTable { ref table, .. } if table == "ghost"));
}

#[test]
fn fact_with_variable_rejected() {
    let mut r = OverlogRuntime::new("n");
    let err = r.load("define(t, keys(0), {Int}); t(X);").unwrap_err();
    assert!(matches!(err, OverlogError::UnsafeRule { .. }));
}

#[test]
fn head_wildcard_rejected() {
    let mut r = OverlogRuntime::new("n");
    let err = r
        .load(
            "define(q, keys(0), {Int});
             define(p, keys(0), {Int});
             p(_) :- q(_);",
        )
        .unwrap_err();
    assert!(matches!(err, OverlogError::UnsafeRule { ref var, .. } if var == "_"));
}

#[test]
fn aggregate_into_wrongly_keyed_table_rejected() {
    let mut r = OverlogRuntime::new("n");
    let err = r
        .load(
            "define(t, keys(0,1), {Int, Int});
             define(c, keys(0,1), {Int, Int});
             c(G, count<V>) :- t(G, V);",
        )
        .unwrap_err();
    assert!(matches!(err, OverlogError::Unstratifiable { .. }));
}

#[test]
fn view_and_event_derivation_into_same_table_rejected() {
    let mut r = OverlogRuntime::new("n");
    let err = r
        .load(
            "define(a, keys(0), {Int});
             event e, {Int};
             define(mix, keys(0), {Int});
             mix(X) :- a(X);
             mix(X) :- e(X);",
        )
        .unwrap_err();
    assert!(matches!(err, OverlogError::Unstratifiable { .. }));
}

#[test]
fn timer_name_conflicting_with_table_rejected() {
    let mut r = OverlogRuntime::new("n");
    let err = r
        .load("define(tick, keys(0), {Int, Int}); timer(tick, 100);")
        .unwrap_err();
    assert!(matches!(err, OverlogError::Redefinition { .. }));
}

// --- insertion-time rejections ---

#[test]
fn typed_inserts_validated() {
    let mut r = rt("define(t, keys(0), {Int, String});");
    assert!(matches!(
        r.insert("t", row(vec![Value::str("x"), Value::str("y")])),
        Err(OverlogError::TypeMismatch { .. })
    ));
    assert!(matches!(
        r.insert("t", row(vec![Value::Int(1)])),
        Err(OverlogError::ArityMismatch { .. })
    ));
    assert!(matches!(
        r.insert("ghost", row(vec![])),
        Err(OverlogError::UnknownTable { .. })
    ));
}

// --- runtime evaluation errors ---

#[test]
fn division_by_zero_surfaces_as_eval_error() {
    let mut r = rt("event e, {Int};
                    define(out, keys(0), {Int});
                    out(Y) :- e(X), Y := 10 / X;");
    r.insert("e", row(vec![Value::Int(0)])).unwrap();
    let err = r.tick(0).unwrap_err();
    assert!(matches!(err, OverlogError::Eval(ref m) if m.contains("division")));
}

#[test]
fn unknown_builtin_surfaces_at_eval() {
    let mut r = rt("event e, {Int};
                    define(out, keys(0), {Int});
                    out(Y) :- e(X), Y := frobnicate(X);");
    r.insert("e", row(vec![Value::Int(1)])).unwrap();
    let err = r.tick(0).unwrap_err();
    assert!(matches!(err, OverlogError::Eval(ref m) if m.contains("frobnicate")));
}

#[test]
fn arithmetic_on_strings_fails_cleanly() {
    let mut r = rt(r#"event e, {String};
                    define(out, keys(0), {Int});
                    out(Y) :- e(X), Y := X + 1;"#);
    r.insert("e", row(vec![Value::str("nope")])).unwrap();
    assert!(r.tick(0).is_err());
}

// --- semantics corners ---

#[test]
fn empty_program_ticks_fine() {
    let mut r = OverlogRuntime::new("n");
    let res = r.tick(0).unwrap();
    assert_eq!(res.derivations, 0);
    assert!(res.sends.is_empty());
}

#[test]
fn rule_with_no_positive_predicates_fires_once_per_tick() {
    let mut r = rt("define(unit, keys(0), {Int});
                    unit(1) :- 2 > 1;");
    r.tick(0).unwrap();
    assert_eq!(r.count("unit"), 1);
    r.tick(1).unwrap();
    assert_eq!(r.count("unit"), 1, "set semantics: no duplicates");
}

#[test]
fn negation_only_body_with_anchor() {
    // `notin`-only conditions need an anchor predicate for safety.
    let mut r = rt("define(anchor, keys(0), {Int});
                    define(missing, keys(0), {Int});
                    define(flag, keys(0), {Int});
                    flag(X) :- anchor(X), notin missing(X);");
    r.insert("anchor", row(vec![Value::Int(1)])).unwrap();
    r.tick(0).unwrap();
    assert_eq!(r.count("flag"), 1);
    // Inserting into the negated table retracts the view tuple.
    r.insert("missing", row(vec![Value::Int(1)])).unwrap();
    r.tick(1).unwrap();
    assert_eq!(r.count("flag"), 0, "negation is non-monotone");
}

#[test]
fn float_arithmetic_and_comparisons() {
    let mut r = rt("event e, {Float};
                    define(out, keys(0,1), {Float, Bool});
                    out(Y, B) :- e(X), Y := X * 1.5, B := Y > 4;");
    r.insert("e", row(vec![Value::Float(3.0)])).unwrap();
    r.settle(0).unwrap();
    assert_eq!(
        r.rows("out")[0],
        row(vec![Value::Float(4.5), Value::Bool(true)])
    );
}

#[test]
fn list_literals_and_concat() {
    let mut r = rt("event e, {Int};
                    define(out, keys(0), {List});
                    out(L) :- e(X), L := [X, X + 1] ++ [9];");
    r.insert("e", row(vec![Value::Int(1)])).unwrap();
    r.settle(0).unwrap();
    assert_eq!(
        r.rows("out")[0][0],
        Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(9)])
    );
}

#[test]
fn string_addr_coercion_in_joins() {
    // Facts write strings; Addr-typed columns coerce so joins with `me`
    // succeed (the bug class that once stalled the Paxos leader).
    let mut r = rt(r#"define(leader, keys(), {Addr});
                    leader("n1");
                    define(is_me, keys(0), {Bool});
                    is_me(true) :- leader(L), me(L);"#);
    r.tick(0).unwrap();
    assert_eq!(r.count("is_me"), 1);
}

#[test]
fn settle_detects_livelock() {
    // A program that queues new work for itself every tick never
    // quiesces; settle must error rather than hang.
    let mut r = rt("timer(t, 1);
                    define(n, keys(0), {Int});
                    n(X + 1) :- t(_), nmax(X);
                    define(nmax, keys(), {Int});
                    nmax(max<X>) :- n(X);
                    n(0) :- t(T), T == 0;");
    // Each tick: timer fires (timer due at every settle-tick? settle calls
    // tick at the same `now`, so the timer fires only once) — use pending
    // induction instead: the inductive nmax->n chain re-queues forever.
    let result = r.settle(0);
    // Either it settles (timer fired once) or reports non-quiescence;
    // what it must not do is loop forever — reaching this line is the test.
    let _ = result;
}

#[test]
fn take_trace_respects_cap_and_watch() {
    let mut r = rt("define(t, keys(0), {Int});
                    watch(t);");
    for i in 0..50 {
        r.insert("t", row(vec![Value::Int(i)])).unwrap();
    }
    r.tick(0).unwrap();
    let trace = r.take_trace();
    assert_eq!(trace.len(), 50);
    assert!(r.take_trace().is_empty(), "drained");
}

#[test]
fn rule_fire_counts_labels_match_rule_names() {
    let mut r = rt("define(a, keys(0), {Int});
                    define(b, keys(0), {Int});
                    myrule b(X) :- a(X);");
    r.insert("a", row(vec![Value::Int(1)])).unwrap();
    r.tick(0).unwrap();
    let fires = r.rule_fire_counts();
    assert_eq!(fires.len(), 1);
    assert_eq!(fires[0].0, "myrule");
    assert_eq!(fires[0].1, 1);
}

#[test]
fn deliver_routes_like_insert() {
    let mut r = rt("event ping, {Int};
                    define(got, keys(0), {Int});
                    got(X) :- ping(X);");
    let tuple = boom_overlog::NetTuple {
        dest: "n1".into(),
        table: "ping".to_string(),
        row: row(vec![Value::Int(5)]),
    };
    r.deliver(&tuple).unwrap();
    r.settle(0).unwrap();
    assert_eq!(r.count("got"), 1);
}

#[test]
fn multiline_comments_and_weird_whitespace_parse() {
    let src = "/* multi\nline\ncomment */\n\n\tdefine(t,keys(0),{Int});\n/*x*/t(1);/*y*/";
    let mut r = OverlogRuntime::new("n");
    r.load(src).unwrap();
    r.tick(0).unwrap();
    assert_eq!(r.count("t"), 1);
}

#[test]
fn parse_errors_carry_positions() {
    let mut r = OverlogRuntime::new("n");
    let err = r
        .load("define(t, keys(0), {Int});\n t(1) :- ;")
        .unwrap_err();
    match err {
        OverlogError::Parse { line, .. } => assert_eq!(line, 2),
        other => panic!("expected parse error, got {other}"),
    }
}
