//! End-to-end semantics tests for the Overlog runtime: timestep model,
//! events, negation, aggregation, deletion rules, views, location
//! specifiers, and timers.

use boom_overlog::value::row;
use boom_overlog::{OverlogError, OverlogRuntime, TraceOp, Value};
use std::sync::Arc;

fn rt(src: &str) -> OverlogRuntime {
    let mut r = OverlogRuntime::new("n1");
    r.load(src).expect("program loads");
    r
}

fn ints(rt: &OverlogRuntime, table: &str) -> Vec<Vec<i64>> {
    rt.rows(table)
        .iter()
        .map(|r| r.iter().map(|v| v.as_int().unwrap_or(i64::MIN)).collect())
        .collect()
}

#[test]
fn transitive_closure_fixpoint() {
    let mut r = rt("define(link, keys(0,1), {Int, Int});
                    define(path, keys(0,1), {Int, Int});
                    path(X, Y) :- link(X, Y);
                    path(X, Z) :- link(X, Y), path(Y, Z);");
    for i in 0..10 {
        r.insert("link", row(vec![Value::Int(i), Value::Int(i + 1)]))
            .unwrap();
    }
    r.tick(0).unwrap();
    // 11 nodes in a chain: 10+9+...+1 = 55 paths.
    assert_eq!(r.count("path"), 55);
}

#[test]
fn events_live_for_one_tick() {
    let mut r = rt("event ping, {Int};
                    define(log, keys(0), {Int});
                    log(X) :- ping(X);");
    r.insert("ping", row(vec![Value::Int(7)])).unwrap();
    let res = r.tick(0).unwrap();
    assert_eq!(r.count("ping"), 0, "event cleared at tick boundary");
    assert_eq!(r.count("log"), 0, "inductive insert lands next tick");
    let _ = res;
    r.settle(0).unwrap();
    assert_eq!(ints(&r, "log"), vec![vec![7]], "event effect persisted");
    r.tick(1).unwrap();
    assert_eq!(
        ints(&r, "log"),
        vec![vec![7]],
        "no event, no new derivation"
    );
}

#[test]
fn derived_events_visible_within_the_same_tick() {
    let mut r = rt("event a, {Int};
                    event b, {Int};
                    define(out, keys(0), {Int});
                    b(X + 1) :- a(X);
                    out(Y) :- b(Y);");
    r.insert("a", row(vec![Value::Int(1)])).unwrap();
    r.settle(0).unwrap();
    assert_eq!(ints(&r, "out"), vec![vec![2]]);
}

#[test]
fn negation_is_stratified() {
    let mut r = rt("define(node, keys(0), {Int});
                    define(down, keys(0), {Int});
                    define(up, keys(0), {Int});
                    up(X) :- node(X), notin down(X);");
    r.insert("node", row(vec![Value::Int(1)])).unwrap();
    r.insert("node", row(vec![Value::Int(2)])).unwrap();
    r.insert("down", row(vec![Value::Int(2)])).unwrap();
    r.tick(0).unwrap();
    assert_eq!(ints(&r, "up"), vec![vec![1]]);
}

#[test]
fn aggregates_group_correctly() {
    let mut r = rt("define(task, keys(0,1), {Int, Int});
                    define(stats, keys(0), {Int, Int, Int, Int, Float});
                    stats(J, count<T>, min<T>, max<T>, avg<T>) :- task(J, T);");
    for (j, t) in [(1, 10), (1, 20), (1, 30), (2, 5)] {
        r.insert("task", row(vec![Value::Int(j), Value::Int(t)]))
            .unwrap();
    }
    r.tick(0).unwrap();
    let rows = r.rows("stats");
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows[0],
        row(vec![
            Value::Int(1),
            Value::Int(3),
            Value::Int(10),
            Value::Int(30),
            Value::Float(20.0)
        ])
    );
    assert_eq!(
        rows[1],
        row(vec![
            Value::Int(2),
            Value::Int(1),
            Value::Int(5),
            Value::Int(5),
            Value::Float(5.0)
        ])
    );
}

#[test]
fn aggregate_updates_when_inputs_grow() {
    let mut r = rt("define(t, keys(0), {Int});
                    define(c, keys(), {Int});
                    c(count<X>) :- t(X);");
    r.insert("t", row(vec![Value::Int(1)])).unwrap();
    r.tick(0).unwrap();
    assert_eq!(ints(&r, "c"), vec![vec![1]]);
    r.insert("t", row(vec![Value::Int(2)])).unwrap();
    r.tick(1).unwrap();
    assert_eq!(
        ints(&r, "c"),
        vec![vec![2]],
        "old count replaced via key overwrite"
    );
}

#[test]
fn count_star_counts_tuples() {
    let mut r = rt("define(t, keys(0,1), {Int, Int});
                    define(c, keys(0), {Int, Int});
                    c(X, count<*>) :- t(X, _);");
    for (a, b) in [(1, 1), (1, 2), (2, 9)] {
        r.insert("t", row(vec![Value::Int(a), Value::Int(b)]))
            .unwrap();
    }
    r.tick(0).unwrap();
    assert_eq!(ints(&r, "c"), vec![vec![1, 2], vec![2, 1]]);
}

#[test]
fn delete_rules_apply_at_tick_boundary() {
    let mut r = rt("define(t, keys(0), {Int});
                    event rm, {Int};
                    event probe, {Int};
                    define(seen_at_delete_time, keys(0), {Int});
                    delete t(X) :- rm(X), t(X);
                    seen_at_delete_time(X) :- probe(_), t(X);");
    r.insert("t", row(vec![Value::Int(5)])).unwrap();
    r.tick(0).unwrap();
    r.insert("rm", row(vec![Value::Int(5)])).unwrap();
    r.insert("probe", row(vec![Value::Int(0)])).unwrap();
    r.settle(1).unwrap();
    // The deletion is deferred: rules in the same tick still saw t(5).
    assert_eq!(ints(&r, "seen_at_delete_time"), vec![vec![5]]);
    assert_eq!(r.count("t"), 0, "deleted at boundary");
}

#[test]
fn views_recompute_after_deletion() {
    let mut r = rt("define(edge, keys(0,1), {Int, Int});
                    define(reach, keys(0,1), {Int, Int});
                    reach(X, Y) :- edge(X, Y);
                    reach(X, Z) :- edge(X, Y), reach(Y, Z);");
    for (a, b) in [(1, 2), (2, 3)] {
        r.insert("edge", row(vec![Value::Int(a), Value::Int(b)]))
            .unwrap();
    }
    r.tick(0).unwrap();
    assert_eq!(r.count("reach"), 3);
    // Remove edge 2→3: derived paths through it must disappear.
    r.delete("edge", row(vec![Value::Int(2), Value::Int(3)]))
        .unwrap();
    let res = r.tick(1).unwrap();
    assert_eq!(ints(&r, "reach"), vec![vec![1, 2]]);
    // The recompute happened at the start of the tick (external delete).
    assert_eq!(r.count("edge"), 1);
    let _ = res;
}

#[test]
fn key_overwrite_semantics() {
    let mut r = rt("define(hb, keys(0), {Int, Int});
                    event beat, {Int, Int};
                    hb(N, T) :- beat(N, T);");
    r.insert("beat", row(vec![Value::Int(1), Value::Int(100)]))
        .unwrap();
    r.settle(0).unwrap();
    r.insert("beat", row(vec![Value::Int(1), Value::Int(200)]))
        .unwrap();
    r.settle(1).unwrap();
    assert_eq!(
        ints(&r, "hb"),
        vec![vec![1, 200]],
        "newer heartbeat replaced older"
    );
}

#[test]
fn location_specifier_routes_remote_tuples() {
    let mut r = rt("event req, {Addr, Int};
                    event resp, {Addr, Int};
                    resp(@Src, X * 10) :- req(Src, X);");
    r.insert("req", row(vec![Value::addr("client7"), Value::Int(4)]))
        .unwrap();
    let out = r.tick(0).unwrap();
    assert_eq!(out.sends.len(), 1);
    let s = &out.sends[0];
    assert_eq!(&*s.dest, "client7");
    assert_eq!(s.table, "resp");
    assert_eq!(s.row, row(vec![Value::addr("client7"), Value::Int(40)]));
    assert_eq!(r.count("resp"), 0, "remote tuple not inserted locally");
}

#[test]
fn location_specifier_local_address_stays_local() {
    let mut r = rt("event req, {Addr, Int};
                    define(resp, keys(0,1), {Addr, Int});
                    resp(@Src, X) :- req(Src, X);");
    r.insert("req", row(vec![Value::addr("n1"), Value::Int(4)]))
        .unwrap();
    let sends = r.settle(0).unwrap();
    assert!(sends.is_empty());
    assert_eq!(r.count("resp"), 1);
}

#[test]
fn me_table_binds_self_address() {
    let mut r = rt("event probe, {Int};
                    define(whoami, keys(0), {Addr});
                    whoami(M) :- probe(_), me(M);");
    r.insert("probe", row(vec![Value::Int(0)])).unwrap();
    r.settle(0).unwrap();
    assert_eq!(r.rows("whoami")[0], row(vec![Value::addr("n1")]));
}

#[test]
fn timers_fire_on_schedule() {
    let mut r = rt("timer(hb, 100);
                    define(fired, keys(0), {Int});
                    fired(T) :- hb(T);");
    r.settle(0).unwrap();
    assert_eq!(r.count("fired"), 1, "fires on first tick");
    r.settle(50).unwrap();
    assert_eq!(r.count("fired"), 1, "not due yet");
    r.settle(100).unwrap();
    assert_eq!(r.count("fired"), 2);
    r.settle(350).unwrap();
    assert_eq!(r.count("fired"), 3, "one firing per tick even when late");
}

#[test]
fn assignments_and_builtins() {
    let mut r = rt(r#"event in, {String};
                    define(out, keys(0,1), {String, Int});
                    out(P, L) :- in(Name), P := "/dir/" ++ Name, L := strlen(P);"#);
    r.insert("in", row(vec![Value::str("f")])).unwrap();
    r.settle(0).unwrap();
    assert_eq!(
        r.rows("out")[0],
        row(vec![Value::str("/dir/f"), Value::Int(6)])
    );
}

#[test]
fn custom_builtin_registration() {
    let mut r = OverlogRuntime::new("n1");
    r.register_builtin("triple", |args| {
        Ok(Value::Int(args[0].as_int().unwrap_or(0) * 3))
    });
    r.load(
        "event in, {Int};
         define(out, keys(0), {Int});
         out(Y) :- in(X), Y := triple(X);",
    )
    .unwrap();
    r.insert("in", row(vec![Value::Int(5)])).unwrap();
    r.settle(0).unwrap();
    assert_eq!(ints(&r, "out"), vec![vec![15]]);
}

#[test]
fn budget_guards_divergence() {
    let mut r = rt("define(n, keys(0), {Int});
                    n(X + 1) :- n(X);");
    r.set_budget(1000);
    r.insert("n", row(vec![Value::Int(0)])).unwrap();
    let err = r.tick(0).unwrap_err();
    assert!(matches!(err, OverlogError::Eval(_)));
}

#[test]
fn watch_records_trace() {
    let mut r = rt("define(t, keys(0), {Int});
                    watch(t);
                    event e, {Int};
                    t(X) :- e(X);");
    r.insert("e", row(vec![Value::Int(3)])).unwrap();
    r.settle(0).unwrap();
    let trace = r.take_trace();
    assert!(trace
        .iter()
        .any(|ev| ev.table == "t" && ev.op == TraceOp::Insert));
}

#[test]
fn multiple_programs_merge() {
    let mut r = rt("define(base, keys(0), {Int});");
    r.load(
        "define(derived, keys(0), {Int});
         derived(X * 2) :- base(X);",
    )
    .unwrap();
    r.insert("base", row(vec![Value::Int(4)])).unwrap();
    r.tick(0).unwrap();
    assert_eq!(ints(&r, "derived"), vec![vec![8]]);
}

#[test]
fn conflicting_redefinition_rejected() {
    let mut r = rt("define(t, keys(0), {Int});");
    let err = r.load("define(t, keys(0), {String});").unwrap_err();
    assert!(matches!(err, OverlogError::Redefinition { .. }));
    // Identical redefinition is fine.
    r.load("define(t, keys(0), {Int});").unwrap();
}

#[test]
fn failed_load_leaves_runtime_usable() {
    let mut r = rt("define(t, keys(0), {Int}); t(1);");
    let err = r.load("define(u, keys(0), {Int}); u(X) :- t(X), notin u(X);");
    assert!(err.is_err(), "unstratifiable program rejected");
    // Previous program still works.
    r.tick(0).unwrap();
    assert_eq!(r.count("t"), 1);
}

#[test]
fn deletion_of_missing_row_is_noop() {
    let mut r = rt("define(t, keys(0), {Int});");
    r.delete("t", row(vec![Value::Int(1)])).unwrap();
    let res = r.tick(0).unwrap();
    assert_eq!(res.deletions, 0);
}

#[test]
fn rename_pattern_overwrite_plus_delete_same_tick() {
    // A rename in BOOM-FS overwrites the PK row; a concurrent delete of the
    // stale row must not remove the new one.
    let mut r = rt("define(file, keys(0), {Int, String});
                    event mv, {Int, String};
                    event rmstale, {Int, String};
                    file(F, N) :- mv(F, N);
                    delete file(F, N) :- rmstale(F, N), file(F, N);");
    r.insert("file", Arc::new(vec![Value::Int(1), Value::str("old")]))
        .unwrap();
    r.tick(0).unwrap();
    r.insert("mv", Arc::new(vec![Value::Int(1), Value::str("new")]))
        .unwrap();
    r.insert("rmstale", Arc::new(vec![Value::Int(1), Value::str("old")]))
        .unwrap();
    r.settle(1).unwrap();
    assert_eq!(
        r.rows("file"),
        vec![row(vec![Value::Int(1), Value::str("new")])]
    );
}

#[test]
fn condition_ordering_is_flexible() {
    // Condition written before the predicate that binds its variable.
    let mut r = rt("define(t, keys(0), {Int});
                    define(big, keys(0), {Int});
                    big(X) :- X > 10, t(X);");
    r.insert("t", row(vec![Value::Int(5)])).unwrap();
    r.insert("t", row(vec![Value::Int(15)])).unwrap();
    r.tick(0).unwrap();
    assert_eq!(ints(&r, "big"), vec![vec![15]]);
}

#[test]
fn self_join_with_distinct_bindings() {
    let mut r = rt("define(p, keys(0,1), {Int, Int});
                    define(sib, keys(0,1), {Int, Int});
                    sib(A, B) :- p(X, A), p(X, B), A != B;");
    for (x, c) in [(1, 10), (1, 11), (2, 20)] {
        r.insert("p", row(vec![Value::Int(x), Value::Int(c)]))
            .unwrap();
    }
    r.tick(0).unwrap();
    assert_eq!(ints(&r, "sib"), vec![vec![10, 11], vec![11, 10]]);
}

#[test]
fn derivations_counted() {
    let mut r = rt("define(t, keys(0), {Int});
                    define(u, keys(0), {Int});
                    u(X) :- t(X);");
    r.insert("t", row(vec![Value::Int(1)])).unwrap();
    let res = r.tick(0).unwrap();
    assert!(res.derivations >= 1);
    let fires = r.rule_fire_counts();
    assert_eq!(fires.len(), 1);
    assert_eq!(fires[0].1, 1);
}

// ---------------------------------------------------------------------------
// Sharded evaluation (`PlanOptions::shards > 1`): analysis-driven intra-node
// parallelism must be observationally invisible — byte-identical state at
// every shard count, including within-tick key-overwrite order.

mod sharded {
    use super::*;
    use boom_overlog::{PlanOptions, ShardStats};

    /// Canonical dump of every non-event table, sorted: two runtimes are
    /// behaviorally identical iff these strings match.
    fn dump(r: &OverlogRuntime) -> String {
        let mut tables: Vec<String> = r.table_decls().map(|d| d.name.clone()).collect();
        tables.sort();
        let mut s = String::new();
        for t in tables {
            let table = r.table(&t).expect("declared");
            if table.is_event() {
                continue;
            }
            for row in table.sorted_rows() {
                s.push_str(&format!("{t}{row:?}\n"));
            }
        }
        s
    }

    const JOIN_SRC: &str = "event e, {Int, Int};
                            define(idx, keys(0), {Int, Int});
                            define(out, keys(0), {Int, Int});
                            define(tally, keys(0, 1), {Int, Int});
                            out(X, Y + Z) :- e(X, Y), idx(X, Z);
                            tally(X, Y) :- e(X, Y), Y > 3;";

    fn run_join(shards: usize, nrows: i64) -> (String, Vec<(String, Vec<ShardStats>)>) {
        let mut r = rt(JOIN_SRC);
        r.set_plan_options(PlanOptions {
            shards,
            ..Default::default()
        });
        for k in 0..8 {
            r.insert("idx", row(vec![Value::Int(k), Value::Int(100 * k)]))
                .unwrap();
        }
        r.tick(0).unwrap();
        // One big batch (single delta) plus duplicate keys so the
        // within-tick overwrite order is exercised: for each key the last
        // delta row must win in `out`, at every shard count.
        for i in 0..nrows {
            r.insert("e", row(vec![Value::Int(i % 8), Value::Int(i)]))
                .unwrap();
        }
        r.tick(1).unwrap();
        r.settle(1).unwrap();
        (dump(&r), r.shard_stats())
    }

    #[test]
    fn sharded_join_matches_serial_at_every_shard_count() {
        let (serial, _) = run_join(1, 64);
        for shards in [2, 3, 4, 8] {
            let (sharded, stats) = run_join(shards, 64);
            assert_eq!(serial, sharded, "state diverged at shards={shards}");
            // The co-partitioned join rule must actually have fanned out.
            let join = stats.iter().find(|(l, _)| l.contains("out")).unwrap();
            let total: u64 = join.1.iter().map(|s| s.delta_in).sum();
            assert_eq!(total, 64, "join rule did not take the sharded path");
            assert!(
                join.1.iter().filter(|s| s.delta_in > 0).count() > 1,
                "64 keys landed in one shard"
            );
        }
    }

    #[test]
    fn small_deltas_stay_serial() {
        // 8 delta rows < SHARD_MIN_DELTA_ROWS: the fan-out overhead gate
        // keeps evaluation on the calling thread, counters stay zero.
        let (_, stats) = run_join(4, 8);
        for (label, per) in stats {
            let total: u64 = per.iter().map(|s| s.delta_in).sum();
            assert_eq!(total, 0, "rule `{label}` sharded a tiny delta");
        }
    }

    #[test]
    fn serial_verdict_rules_never_fan_out() {
        // The head key column Z is join-bound (comes from the probed
        // table, not the delta), so the analysis marks the rule serial and
        // the runtime must not shard it no matter the delta size.
        let mut r = rt("event e, {Int, Int};
                        define(idx, keys(0), {Int, Int});
                        define(out, keys(0), {Int, Int});
                        out(Z, X) :- e(X, _), idx(X, Z);");
        r.set_plan_options(PlanOptions {
            shards: 4,
            ..Default::default()
        });
        for k in 0..8 {
            r.insert("idx", row(vec![Value::Int(k), Value::Int(500 + k)]))
                .unwrap();
        }
        r.tick(0).unwrap();
        for i in 0..64 {
            r.insert("e", row(vec![Value::Int(i % 8), Value::Int(i)]))
                .unwrap();
        }
        r.tick(1).unwrap();
        r.settle(1).unwrap();
        assert_eq!(r.count("out"), 8);
        for (label, per) in r.shard_stats() {
            let total: u64 = per.iter().map(|s| s.delta_in).sum();
            assert_eq!(total, 0, "serial-verdict rule `{label}` fanned out");
        }
    }

    #[test]
    fn recursive_rules_shard_safely_or_not_at_all() {
        // Transitive closure: both recursive variants are shard-unsafe
        // (cross-shard probes), so every shard count must reproduce the
        // serial fixpoint exactly.
        let src = "define(link, keys(0,1), {Int, Int});
                   define(path, keys(0,1), {Int, Int});
                   path(X, Y) :- link(X, Y);
                   path(X, Z) :- link(X, Y), path(Y, Z);";
        let run = |shards: usize| {
            let mut r = rt(src);
            r.set_plan_options(PlanOptions {
                shards,
                ..Default::default()
            });
            for i in 0..40 {
                r.insert("link", row(vec![Value::Int(i), Value::Int(i + 1)]))
                    .unwrap();
            }
            r.tick(0).unwrap();
            assert_eq!(r.count("path"), 40 * 41 / 2);
            dump(&r)
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
    }
}

mod kernels {
    use super::*;
    use boom_overlog::PlanOptions;

    /// A workload exercising every kernel op shape: a typed int-keyed
    /// join (the `i64` index path), a string-keyed join (generic
    /// probe), negation, a filter, an assignment, and a deletion rule.
    const SRC: &str = "event report, {Int, Int};
         define(node, keys(0), {Int, Str});
         define(cap, keys(0), {Int, Int});
         define(owner, keys(0), {Str, Int});
         define(banned, keys(0), {Int});
         define(load, keys(0), {Int, Int});
         define(over, keys(0), {Int, Int, Int});
         define(who, keys(0), {Int, Int});
         load(N, W) :- report(N, W), notin banned(N);
         over(N, W, S) :- load(N, W), cap(N, C), W > C, S := W + C;
         who(N, O) :- load(N, _), node(N, Tag), owner(Tag, O);
         delete load(N, W) :- report(N, W), banned(N);";

    fn dump(r: &OverlogRuntime) -> String {
        let mut tables: Vec<String> = r.table_decls().map(|d| d.name.clone()).collect();
        tables.sort();
        let mut s = String::new();
        for t in tables {
            let table = r.table(&t).expect("declared");
            if table.is_event() {
                continue;
            }
            for row in table.sorted_rows() {
                s.push_str(&format!("{t}{row:?}\n"));
            }
        }
        s
    }

    fn drive(kernels: bool) -> (String, u64) {
        let mut r = rt(SRC);
        r.set_plan_options(PlanOptions {
            kernels,
            ..Default::default()
        });
        for n in 0..16 {
            r.insert(
                "node",
                row(vec![Value::Int(n), Value::str(format!("t{}", n % 3))]),
            )
            .unwrap();
            r.insert("cap", row(vec![Value::Int(n), Value::Int(40)]))
                .unwrap();
        }
        for g in 0..3 {
            r.insert(
                "owner",
                row(vec![Value::str(format!("t{g}")), Value::Int(100 + g)]),
            )
            .unwrap();
        }
        r.insert("banned", row(vec![Value::Int(3)])).unwrap();
        r.tick(0).unwrap();
        for i in 0..64i64 {
            r.insert("report", row(vec![Value::Int(i % 16), Value::Int(i)]))
                .unwrap();
        }
        r.tick(1).unwrap();
        r.settle(1).unwrap();
        let kernel_evals: u64 = r.rule_stats().iter().map(|(_, s)| s.kernel_evals).sum();
        (dump(&r), kernel_evals)
    }

    #[test]
    fn kernel_path_is_byte_identical_to_interpreter() {
        let (with, on_evals) = drive(true);
        let (without, off_evals) = drive(false);
        assert_eq!(with, without, "kernels changed derived state");
        assert!(on_evals > 0, "no evaluation ran through a kernel");
        assert_eq!(off_evals, 0, "kernels ran while disabled");
    }

    #[test]
    fn kernels_compose_with_shards_and_maintenance() {
        let run = |kernels: bool, shards: usize, maintenance: bool| {
            let mut r = rt(SRC);
            r.set_plan_options(PlanOptions {
                kernels,
                shards,
                maintenance,
                ..Default::default()
            });
            for n in 0..16 {
                r.insert(
                    "node",
                    row(vec![Value::Int(n), Value::str(format!("t{}", n % 3))]),
                )
                .unwrap();
                r.insert("cap", row(vec![Value::Int(n), Value::Int(40)]))
                    .unwrap();
            }
            r.tick(0).unwrap();
            for i in 0..96i64 {
                r.insert("report", row(vec![Value::Int(i % 16), Value::Int(i)]))
                    .unwrap();
            }
            r.tick(1).unwrap();
            r.settle(1).unwrap();
            dump(&r)
        };
        let reference = run(false, 1, false);
        for shards in [1, 4] {
            for maintenance in [false, true] {
                assert_eq!(
                    run(true, shards, maintenance),
                    reference,
                    "kernels diverged at shards={shards} maintenance={maintenance}"
                );
            }
        }
    }
}
