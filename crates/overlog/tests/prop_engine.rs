//! Property-based tests: the semi-naive stratified evaluator must agree
//! with straightforward reference implementations on randomized inputs.

use boom_overlog::value::row;
use boom_overlog::{OverlogRuntime, Value};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

fn tc_reference(edges: &BTreeSet<(i64, i64)>) -> BTreeSet<(i64, i64)> {
    let mut paths: BTreeSet<(i64, i64)> = edges.clone();
    loop {
        let mut grew = false;
        let snapshot: Vec<(i64, i64)> = paths.iter().cloned().collect();
        for &(x, y) in edges {
            for &(a, b) in &snapshot {
                if a == y && paths.insert((x, b)) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    paths
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transitive closure computed by the engine equals the reference.
    #[test]
    fn transitive_closure_matches_reference(
        edges in proptest::collection::btree_set((0i64..12, 0i64..12), 0..40)
    ) {
        let mut rt = OverlogRuntime::new("n");
        rt.load(
            "define(link, keys(0,1), {Int, Int});
             define(path, keys(0,1), {Int, Int});
             path(X, Y) :- link(X, Y);
             path(X, Z) :- link(X, Y), path(Y, Z);",
        ).unwrap();
        for &(a, b) in &edges {
            rt.insert("link", row(vec![Value::Int(a), Value::Int(b)])).unwrap();
        }
        rt.tick(0).unwrap();
        let got: BTreeSet<(i64, i64)> = rt
            .rows("path")
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, tc_reference(&edges));
    }

    /// Incremental insertion over many ticks converges to the same closure
    /// as batch insertion in one tick.
    #[test]
    fn incremental_equals_batch(
        edges in proptest::collection::vec((0i64..10, 0i64..10), 0..25)
    ) {
        let src = "define(link, keys(0,1), {Int, Int});
                   define(path, keys(0,1), {Int, Int});
                   path(X, Y) :- link(X, Y);
                   path(X, Z) :- link(X, Y), path(Y, Z);";
        let mut batch = OverlogRuntime::new("n");
        batch.load(src).unwrap();
        let mut incr = OverlogRuntime::new("n");
        incr.load(src).unwrap();
        for (i, &(a, b)) in edges.iter().enumerate() {
            batch.insert("link", row(vec![Value::Int(a), Value::Int(b)])).unwrap();
            incr.insert("link", row(vec![Value::Int(a), Value::Int(b)])).unwrap();
            incr.tick(i as u64).unwrap();
        }
        batch.tick(0).unwrap();
        prop_assert_eq!(batch.rows("path"), incr.rows("path"));
    }

    /// Deleting edges then recomputing equals building from the surviving
    /// edges directly (view recomputation soundness).
    #[test]
    fn deletion_recompute_equals_rebuild(
        edges in proptest::collection::btree_set((0i64..8, 0i64..8), 1..20),
        kill_idx in proptest::collection::vec(0usize..20, 0..6)
    ) {
        let src = "define(link, keys(0,1), {Int, Int});
                   define(path, keys(0,1), {Int, Int});
                   path(X, Y) :- link(X, Y);
                   path(X, Z) :- link(X, Y), path(Y, Z);";
        let edge_vec: Vec<(i64, i64)> = edges.iter().cloned().collect();
        let killed: BTreeSet<usize> = kill_idx.into_iter()
            .map(|i| i % edge_vec.len())
            .collect();

        let mut full = OverlogRuntime::new("n");
        full.load(src).unwrap();
        for &(a, b) in &edge_vec {
            full.insert("link", row(vec![Value::Int(a), Value::Int(b)])).unwrap();
        }
        full.tick(0).unwrap();
        for &i in &killed {
            let (a, b) = edge_vec[i];
            full.delete("link", row(vec![Value::Int(a), Value::Int(b)])).unwrap();
        }
        full.tick(1).unwrap();

        let mut rebuilt = OverlogRuntime::new("n");
        rebuilt.load(src).unwrap();
        for (i, &(a, b)) in edge_vec.iter().enumerate() {
            if !killed.contains(&i) {
                rebuilt.insert("link", row(vec![Value::Int(a), Value::Int(b)])).unwrap();
            }
        }
        rebuilt.tick(0).unwrap();
        prop_assert_eq!(full.rows("path"), rebuilt.rows("path"));
    }

    /// Aggregates equal a direct fold over the data.
    #[test]
    fn aggregates_match_fold(
        tasks in proptest::collection::btree_set((0i64..5, -50i64..50), 0..40)
    ) {
        let mut rt = OverlogRuntime::new("n");
        rt.load(
            "define(task, keys(0,1), {Int, Int});
             define(stats, keys(0), {Int, Int, Int, Int});
             stats(J, count<T>, min<T>, sum<T>) :- task(J, T);",
        ).unwrap();
        let mut expect: HashMap<i64, (i64, i64, i64)> = HashMap::new();
        for &(j, t) in &tasks {
            rt.insert("task", row(vec![Value::Int(j), Value::Int(t)])).unwrap();
            let e = expect.entry(j).or_insert((0, i64::MAX, 0));
            e.0 += 1;
            e.1 = e.1.min(t);
            e.2 += t;
        }
        rt.tick(0).unwrap();
        let got: HashMap<i64, (i64, i64, i64)> = rt
            .rows("stats")
            .iter()
            .map(|r| {
                (
                    r[0].as_int().unwrap(),
                    (
                        r[1].as_int().unwrap(),
                        r[2].as_int().unwrap(),
                        r[3].as_int().unwrap(),
                    ),
                )
            })
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// Negation: `up = node - down` exactly.
    #[test]
    fn negation_is_set_difference(
        nodes in proptest::collection::btree_set(0i64..30, 0..20),
        down in proptest::collection::btree_set(0i64..30, 0..20)
    ) {
        let mut rt = OverlogRuntime::new("n");
        rt.load(
            "define(node, keys(0), {Int});
             define(down, keys(0), {Int});
             define(up, keys(0), {Int});
             up(X) :- node(X), notin down(X);",
        ).unwrap();
        for &n in &nodes {
            rt.insert("node", row(vec![Value::Int(n)])).unwrap();
        }
        for &d in &down {
            rt.insert("down", row(vec![Value::Int(d)])).unwrap();
        }
        rt.tick(0).unwrap();
        let got: BTreeSet<i64> = rt.rows("up").iter().map(|r| r[0].as_int().unwrap()).collect();
        let expect: BTreeSet<i64> = nodes.difference(&down).cloned().collect();
        prop_assert_eq!(got, expect);
    }

    /// Key overwrite keeps exactly the last value per key regardless of
    /// interleaving across ticks.
    #[test]
    fn key_overwrite_keeps_last_write(
        writes in proptest::collection::vec((0i64..6, 0i64..1000), 1..60),
        ticks_between in proptest::collection::vec(proptest::bool::ANY, 1..60)
    ) {
        let mut rt = OverlogRuntime::new("n");
        rt.load(
            "event w, {Int, Int};
             define(kv, keys(0), {Int, Int});
             kv(K, V) :- w(K, V);",
        ).unwrap();
        let mut expect: HashMap<i64, i64> = HashMap::new();
        let mut time = 0u64;
        for (i, &(k, v)) in writes.iter().enumerate() {
            rt.insert("w", row(vec![Value::Int(k), Value::Int(v)])).unwrap();
            expect.insert(k, v);
            // Sometimes batch several writes into the same tick; last write
            // in program order within a tick still wins because deltas are
            // processed in arrival order.
            if ticks_between.get(i).copied().unwrap_or(true) {
                rt.settle(time).unwrap();
                time += 1;
            }
        }
        rt.settle(time).unwrap();
        let got: HashMap<i64, i64> = rt
            .rows("kv")
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, expect);
    }
}
