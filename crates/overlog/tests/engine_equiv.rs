//! Cross-engine equivalence: the same program and input schedule must
//! materialize byte-identical state under every execution configuration
//! — compiled kernels on or off (`PlanOptions::kernels`, the
//! `BOOM_KERNELS=0` fallback), serial or sharded evaluation, maintained
//! or recomputed views. The kernel compiler, the shard scheduler and the
//! maintenance planner are all *cost* decisions; these tests are the
//! randomized gate that none of them ever becomes a *semantics*
//! decision. Also home to the columnar round-trip property: the typed
//! column layouts the kernels vectorize over must reproduce the row
//! store exactly.

use boom_overlog::table::{Column, ColumnStore};
use boom_overlog::value::row;
use boom_overlog::{OverlogRuntime, PlanOptions, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// A program crossing every specialization tier: a typed int join
/// (`over`: `i64` probes), a string-keyed join (`who`: generic `Value`
/// probes), negation, an assignment, and event-driven deletion of both
/// a base table and a derived view.
const SRC: &str = "event report, {Int, Int};
     event ban, {Int};
     event unban, {Int};
     define(banned, keys(0), {Int});
     define(cap, keys(0), {Int, Int});
     define(tag, keys(0), {Int, Str});
     define(owner, keys(0), {Str, Int});
     define(load, keys(0), {Int, Int});
     define(over, keys(0), {Int, Int});
     define(who, keys(0), {Int, Int});
     banned(N) :- ban(N);
     delete banned(N) :- unban(N);
     load(N, W) :- report(N, W), notin banned(N);
     delete load(N, W) :- report(N, W), banned(N);
     over(N, S) :- load(N, W), cap(N, C), W > C, S := W + C;
     who(N, O) :- load(N, _), tag(N, T), owner(T, O);";

/// One input action of a randomized schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    Report(i64, i64),
    Ban(i64),
    Unban(i64),
}

/// Run `schedule` (with a tick boundary after every op whose flag is
/// set) under one configuration and dump the full materialized state,
/// sorted per table.
fn drive(schedule: &[(Op, bool)], opts: PlanOptions) -> String {
    let mut r = OverlogRuntime::new("equiv");
    r.load(SRC).expect("program loads");
    r.set_plan_options(opts);
    for n in 0..8i64 {
        r.insert("cap", row(vec![Value::Int(n), Value::Int(20 + n)]))
            .expect("seed cap");
        r.insert(
            "tag",
            row(vec![Value::Int(n), Value::str(format!("t{}", n % 3))]),
        )
        .expect("seed tag");
    }
    for k in 0..3i64 {
        r.insert(
            "owner",
            row(vec![Value::str(format!("t{k}")), Value::Int(k * 100)]),
        )
        .expect("seed owner");
    }
    let mut now = 0u64;
    r.tick(now).expect("seed tick");
    for &(op, tick_after) in schedule {
        match op {
            Op::Report(n, w) => r.insert("report", row(vec![Value::Int(n), Value::Int(w)])),
            Op::Ban(n) => r.insert("ban", row(vec![Value::Int(n)])),
            Op::Unban(n) => r.insert("unban", row(vec![Value::Int(n)])),
        }
        .expect("schedule op");
        if tick_after {
            now += 1;
            r.settle(now).expect("schedule settles");
        }
    }
    now += 1;
    r.settle(now).expect("final settle");
    let mut tables: Vec<String> = r.table_decls().map(|d| d.name.clone()).collect();
    tables.sort();
    let mut s = String::new();
    for t in tables {
        let table = r.table(&t).expect("declared");
        if table.is_event() {
            continue;
        }
        for row in table.sorted_rows() {
            s.push_str(&format!("{t}{row:?}\n"));
        }
    }
    s
}

/// Assert every configuration agrees with the interpreted serial
/// recompute baseline on this schedule.
fn assert_configs_agree(schedule: &[(Op, bool)]) {
    let reference = drive(
        schedule,
        PlanOptions {
            kernels: false,
            shards: 1,
            maintenance: false,
            ..PlanOptions::default()
        },
    );
    for kernels in [false, true] {
        for shards in [1, 3] {
            for maintenance in [false, true] {
                let got = drive(
                    schedule,
                    PlanOptions {
                        kernels,
                        shards,
                        maintenance,
                        ..PlanOptions::default()
                    },
                );
                prop_assert_eq!(
                    &got,
                    &reference,
                    "kernels={} shards={} maintenance={} diverged",
                    kernels,
                    shards,
                    maintenance
                );
            }
        }
    }
}

/// Map a raw generated tuple onto an [`Op`], with `kind` weighting.
fn op_of(kind: u8, n: i64, w: i64, deletion_heavy: bool) -> Op {
    if deletion_heavy {
        match kind % 4 {
            0 => Op::Report(n, w),
            1 => Op::Ban(n),
            2 => Op::Unban(n),
            // Re-report a possibly-banned node: drives the `delete load`
            // rule and keyed overwrites in the same breath.
            _ => Op::Report(n, w + 30),
        }
    } else {
        match kind % 8 {
            0..=4 => Op::Report(n, w),
            5 => Op::Ban(n),
            6 => Op::Unban(n),
            _ => Op::Report(n % 2, w),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Deletion-heavy schedules: bans, unbans and delete-triggering
    /// re-reports dominate, so retractions ripple through the typed
    /// join, the generic join and the negation under all 8
    /// configurations.
    #[test]
    fn deletion_heavy_configs_agree(
        raw in proptest::collection::vec((0u8..4, 0i64..8, 0i64..50, proptest::bool::ANY), 1..40)
    ) {
        let schedule: Vec<(Op, bool)> = raw
            .into_iter()
            .map(|(k, n, w, t)| (op_of(k, n, w, true), t))
            .collect();
        assert_configs_agree(&schedule);
    }

    /// Chaos schedules: uniform random interleavings of reports, bans
    /// and unbans with random tick boundaries — the unbiased sweep over
    /// burst shapes, overwrite storms and mid-burst deletions.
    #[test]
    fn chaos_schedule_configs_agree(
        raw in proptest::collection::vec((0u8..8, 0i64..8, 0i64..50, proptest::bool::ANY), 1..60)
    ) {
        let schedule: Vec<(Op, bool)> = raw
            .into_iter()
            .map(|(k, n, w, t)| (op_of(k, n, w, false), t))
            .collect();
        assert_configs_agree(&schedule);
    }
}

/// Generate one random `Value` drawing from every scalar layout a
/// column can hold (no NaN floats — row equality must be reflexive).
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i32..1000).prop_map(|x| Value::Float(f64::from(x) / 8.0)),
        (0usize..8).prop_map(|i| { Value::str(["", "a", "b", "c", "ab", "bc", "ca", "abc"][i]) }),
        Just(Value::Null),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A column rebuilt from any value mix returns exactly the values it
    /// was built from, whichever layout (`Int` dense, `Str` dictionary,
    /// `Val` fallback) it picked.
    #[test]
    fn column_round_trips_values(vals in proptest::collection::vec(value_strategy(), 0..40)) {
        let col = Column::from_values(vals.clone());
        prop_assert_eq!(col.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(&col.get(i), v);
        }
    }

    /// A columnar snapshot of a row set materializes back to the same
    /// rows in the same order.
    #[test]
    fn column_store_round_trips_rows(
        raw in proptest::collection::vec(
            (value_strategy(), value_strategy(), value_strategy()), 0..30)
    ) {
        let rows: Vec<boom_overlog::Row> = raw
            .into_iter()
            .map(|(a, b, c)| Arc::new(vec![a, b, c]))
            .collect();
        let store = ColumnStore::from_rows(3, &rows);
        prop_assert_eq!(store.arity(), 3);
        prop_assert_eq!(store.to_rows(), rows);
    }
}
