//! The Overlog runtime: timestep driver and semi-naive stratified evaluator.
//!
//! One [`OverlogRuntime`] corresponds to one JOL instance on one node. The
//! host (a simulator actor, a test, or an example binary) drives it:
//!
//! 1. queue external tuples with [`OverlogRuntime::insert`] /
//!    [`OverlogRuntime::delete`] / network deliveries,
//! 2. call [`OverlogRuntime::tick`] with the current virtual time,
//! 3. deliver the returned [`NetTuple`]s to their destination runtimes.
//!
//! ## Timestep semantics
//!
//! Within a tick, deductive rules run to fixpoint (semi-naive, stratum by
//! stratum). Three kinds of derivation cross the tick boundary instead of
//! taking effect immediately (Dedalus-style induction):
//!
//! * **deletions** from `delete` rules,
//! * **insertions into materialized tables by event-triggered rules** —
//!   every rule in a tick reads a consistent pre-state, and programs may
//!   check a table (`notin fqpath(...)`) and update it in the same rule
//!   body without a stratification cycle,
//! * **tuples addressed to remote nodes**, which are shipped at the
//!   boundary.
//!
//! Event-table tuples live for exactly one tick; event-to-event rules fire
//! within the tick. Pure materialized-to-materialized rules are *views*,
//! maintained immediately.
//!
//! ## View maintenance
//!
//! Rules whose head and entire body are materialized (and carry no location
//! specifier) define *views*. Views are maintained incrementally on
//! insertion; any deletion or key-overwrite of a view input triggers a full
//! recomputation of all view tables at the end of the tick — a simple,
//! sound replacement for JOL's incremental delete propagation.

use crate::analysis::maint::{AnchorEval, Bind, SourceDep, ViewMaint};
use crate::analysis::{self, Diagnostic, SourceMap};
use crate::ast::{AggKind, BinOp, UnOp};
use crate::ast::{Rule, Span, Statement, TableDecl, TableKind};
use crate::builtins::Builtins;
use crate::error::{OverlogError, Result};
use crate::fx::{FxHashMap, FxHashSet};
use crate::ids::{IdSet, TableId, TableIds};
use crate::kernel::{KCheck, KExpr, KOp, KOperand, Kernel};
use crate::parser::parse_program;
use crate::plan::{self, CExpr, CHeadArg, CompiledRule, Op, Pat, Plan, Variant};
use crate::table::{Candidates, ColGroup, Column, InsertOutcome, Table};
use crate::value::{Row, TypeTag, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A tuple addressed to another node, produced by a rule whose head carries
/// a location specifier.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTuple {
    /// Destination address (matches another runtime's `addr`).
    pub dest: Arc<str>,
    /// Target table at the destination.
    pub table: String,
    /// The tuple.
    pub row: Row,
}

/// What a single tick did.
#[derive(Debug, Default)]
pub struct TickResult {
    /// Tuples to deliver to other nodes.
    pub sends: Vec<NetTuple>,
    /// Number of rule derivations performed.
    pub derivations: u64,
    /// Number of tuples deleted at the tick boundary.
    pub deletions: usize,
    /// Whether retraction propagation ran this tick — incrementally
    /// maintained or fully recomputed view tables.
    pub views_recomputed: bool,
}

/// Kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Tuple inserted (new or replacing).
    Insert,
    /// Tuple deleted.
    Delete,
    /// Tuple shipped to a remote node.
    Send,
}

/// One record in the watch trace (the paper's monitoring hook).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Tick counter when the event happened.
    pub tick: u64,
    /// Virtual time of the tick.
    pub time: u64,
    /// Affected table.
    pub table: String,
    /// The tuple.
    pub row: Row,
    /// Operation kind.
    pub op: TraceOp,
}

/// A drained watch trace plus the number of records lost to the ring
/// buffer's capacity since the previous drain.
#[derive(Debug, Default)]
pub struct TraceDrain {
    /// The surviving records, oldest first.
    pub events: Vec<TraceEvent>,
    /// Records evicted because the buffer hit `trace_cap` — silently lost
    /// history the consumer must account for.
    pub dropped: u64,
}

/// One why-provenance record: a derived tuple, the rule that produced it,
/// and the positive body tuples that matched (the *first witness* — later
/// re-derivations of the same tuple are not recorded).
#[derive(Debug, Clone)]
pub struct ProvRecord {
    /// Tick counter when the derivation happened.
    pub tick: u64,
    /// Virtual time of the tick.
    pub time: u64,
    /// Label of the deriving rule. Aggregate rules record empty `inputs`
    /// (their support is the whole group).
    pub rule: String,
    /// Head table of the derivation.
    pub table: String,
    /// The derived tuple.
    pub row: Row,
    /// The positive body tuples joined to produce the head, in scan order.
    pub inputs: Vec<(String, Row)>,
}

/// Per-rule evaluation statistics — the rule-level profiler. All fields
/// except `eval_ns` are deterministic for a fixed program and input
/// schedule; `eval_ns` is wall-clock and varies run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Effective derivations (new tuple, remote send, deferred insert, or
    /// deferred delete).
    pub fires: u64,
    /// Head rows produced by body evaluation before set-semantics dedup —
    /// the rule's join fanout.
    pub attempts: u64,
    /// Delta rows consumed by this rule's semi-naive variants.
    pub delta_in: u64,
    /// Scoped evaluations driven by the incremental view maintainer
    /// (counting deltas, group re-folds, keyed re-derivations) — work that
    /// replaced a from-scratch recompute of this rule's head.
    pub maint_evals: u64,
    /// Wall-clock nanoseconds spent evaluating the body and dispatching
    /// heads (non-deterministic; excluded from reproducibility checks).
    pub eval_ns: u64,
    /// Body evaluations that ran through a compiled kernel
    /// ([`crate::kernel`]) instead of the interpreted operator walk.
    /// Zero for rules whose variants never compiled, or when
    /// `PlanOptions::kernels` is off.
    pub kernel_evals: u64,
}

/// Per-shard slice of a rule's evaluation work under sharded evaluation
/// (`PlanOptions::shards > 1`). Summing a rule's shards gives the portion
/// of its [`RuleStats`] that went through the sharded path; rounds that
/// fell back to serial (small delta, serial verdict, provenance on) are
/// counted only in [`RuleStats`]. `delta_in`/`rows_out` are deterministic
/// for a fixed program, input schedule and shard count; `eval_ns` is
/// wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Delta rows hashed into this shard.
    pub delta_in: u64,
    /// Head rows this shard produced (before set-semantics dedup).
    pub rows_out: u64,
    /// Wall-clock nanoseconds the shard's worker spent evaluating.
    pub eval_ns: u64,
}

/// Delta slices shorter than this evaluate serially even when a variant is
/// shard-safe: the fan-out/merge overhead would exceed the join work.
pub const SHARD_MIN_DELTA_ROWS: usize = 16;

/// Tick-granularity evaluation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Total semi-naive fixpoint rounds across all strata and ticks.
    pub fixpoint_rounds: u64,
    /// Full view recomputation *passes* (each pass clears and rebuilds
    /// some set of view tables from scratch). With maintenance on, only
    /// rounds that fell back to recomputation count here.
    pub view_recomputes: u64,
    /// Maintenance passes in which at least one affected view was updated
    /// in place from its input deltas instead of recomputed.
    pub maint_rounds: u64,
    /// Views updated in place across all maintenance passes.
    pub views_maintained: u64,
}

#[derive(Debug)]
enum Pending {
    Insert(TableId, Row),
    Delete(TableId, Row),
}

#[derive(Debug)]
struct TimerState {
    tid: TableId,
    interval: u64,
    next: u64,
}

/// What happened to a durable table at tick commit: the unit of the
/// write-ahead log (see [`OverlogRuntime::take_commit_delta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOp {
    /// Row inserted (new or key-overwrite; replay re-applies the overwrite).
    Insert,
    /// Row deleted (exact match).
    Delete,
}

/// One committed delta of a durable table. Replaying a log of these with
/// [`OverlogRuntime::restore`] reproduces the base-table state exactly:
/// rows are logged post-coercion, and primary-key overwrite semantics make
/// physical replay idempotent against the snapshot it starts from.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// Table name (names, not ids: the log outlives the runtime).
    pub table: String,
    /// The row as stored (coerced).
    pub row: Row,
    /// Insert or delete.
    pub op: CommitOp,
}

/// Table-name prefixes reserved for the *observation plane*: tables
/// generated by boom-trace monitors (`boomt_`) and boom-serve
/// subscriptions (`srv_`). The observe-never-perturb contract says their
/// presence must not change application state, the write-ahead log, or
/// recovery behavior — so observation tables are never marked durable
/// (they are rebuilt by re-installing the monitor / re-subscribing) and
/// state fingerprints exclude them.
pub const OBSERVATION_PREFIXES: [&str; 2] = ["boomt_", "srv_"];

/// Whether a table belongs to the observation plane (see
/// [`OBSERVATION_PREFIXES`]).
pub fn is_observation_table(name: &str) -> bool {
    OBSERVATION_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// One change record drained from a *delta tap* (see
/// [`OverlogRuntime::add_tap`]): the serving tier's unit of subscription
/// propagation. Unlike [`CommitRecord`] (the WAL unit, inserts as stored),
/// a tap reports retractions explicitly: a key-overwrite emits
/// `Delete(old)` then `Insert(new)`, so replaying a tap stream against a
/// full-row mirror reproduces the table exactly.
#[derive(Debug, Clone)]
pub struct TapRecord {
    /// Table name (names, not ids: the stream outlives the runtime).
    pub table: String,
    /// The row as stored (coerced).
    pub row: Row,
    /// Insert or delete (retraction).
    pub op: CommitOp,
    /// Tick ordinal at which the change committed.
    pub tick: u64,
    /// Virtual time of the committing tick — the timestamp propagation
    /// latency is measured against.
    pub time: u64,
}

/// A checkpoint of a runtime's durable state: full contents of every
/// durable table (sorted, for deterministic bytes) plus the values of all
/// tracked host counters (see [`OverlogRuntime::register_counter`]).
#[derive(Debug, Clone, Default)]
pub struct RuntimeSnapshot {
    /// `(table name, sorted rows)`, sorted by table name.
    pub tables: Vec<(String, Vec<Row>)>,
    /// `(counter name, next value)`, in registration order.
    pub counters: Vec<(String, i64)>,
}

impl RuntimeSnapshot {
    /// Total rows across all captured tables.
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(|(_, rows)| rows.len()).sum()
    }
}

/// Which tables are marked durable (see
/// [`OverlogRuntime::set_durable_all`]).
#[derive(Debug, Clone, Default, PartialEq)]
enum DurableMode {
    /// No capture: the WAL hooks reduce to one always-false bitset test.
    #[default]
    Off,
    /// Every eligible (non-event, non-view, non-`me`) table.
    All,
    /// Just these tables (ineligible names are ignored).
    Named(Vec<String>),
}

/// A single-node Overlog runtime (the JOL equivalent).
pub struct OverlogRuntime {
    addr: Arc<str>,
    decls: HashMap<String, TableDecl>,
    /// Table-name interner: `tables` is indexed by [`TableId`], so
    /// `ids.len() == tables.len()` always holds (ids are only assigned
    /// when a table is created).
    ids: TableIds,
    tables: Vec<Table>,
    rule_sources: Vec<Rule>,
    /// Program texts successfully loaded, in order (static re-analysis).
    sources: Vec<String>,
    /// Which contiguous `rule_sources` range each loaded source produced
    /// (`(start, len)`, parallel to `sources`) — the unit
    /// [`OverlogRuntime::unload`] removes.
    source_rule_spans: Vec<(usize, usize)>,
    /// Tables the host has inserted into or deleted from directly; the
    /// analyzer treats them as externally filled.
    host_inserted: HashSet<String>,
    plan: Arc<Plan>,
    plan_opts: plan::PlanOptions,
    /// Ground facts loaded per table — feeds the planner's cardinality
    /// model so join orders reflect actual configuration sizes.
    fact_counts: HashMap<String, usize>,
    builtins: Builtins,
    timers: Vec<TimerState>,
    /// Watched names (API surface; may include not-yet-declared tables).
    watch_names: HashSet<String>,
    /// Ids of watched tables — the hot-path membership test.
    watch_ids: IdSet,
    pending: VecDeque<Pending>,
    trace: VecDeque<TraceEvent>,
    trace_cap: usize,
    /// Records evicted from `trace` since the last drain.
    trace_dropped: u64,
    /// Count every derivation into the trace, not just watched tables
    /// (the "monitoring revision" toggle measured by experiment E7).
    trace_all: bool,
    /// Why-provenance capture (off by default; see [`ProvRecord`]).
    prov_on: bool,
    prov: Vec<ProvRecord>,
    prov_seen: FxHashSet<(TableId, Row)>,
    prov_cap: usize,
    prov_dropped: u64,
    budget: u64,
    rule_stats: Vec<RuleStats>,
    /// Per-rule, per-shard counters for the sharded evaluation path
    /// (`[rule][shard]`; empty unless `PlanOptions::shards > 1`).
    shard_stats: Vec<Vec<ShardStats>>,
    eval_stats: EvalStats,
    tick_count: u64,
    now: u64,
    /// Pooled tick workspace: taken at tick start, restored at tick end,
    /// so the per-table delta logs and dedup sets keep their allocations
    /// across ticks instead of being rebuilt.
    scratch: TickCtx,
    /// Pooled sub-context for view-aggregate recomputation (see
    /// `eval_agg_into`).
    agg_scratch: TickCtx,
    /// Durable marking in effect; `durable_ids` is the compiled form.
    durable_mode: DurableMode,
    /// Ids of the tables whose committed deltas are captured. Empty when
    /// durability is off — the hot-path hooks are one bitset test.
    durable_ids: IdSet,
    /// Committed deltas since the last [`OverlogRuntime::take_commit_delta`]
    /// drain (table ids resolve to names at drain time, off the hot path).
    commit_log: Vec<(TableId, Row, CommitOp)>,
    /// Tapped table names (see [`OverlogRuntime::add_tap`]); `tap_ids` is
    /// the compiled hot-path membership test, empty when no taps exist.
    tap_names: HashSet<String>,
    tap_ids: IdSet,
    /// Tap records since the last [`OverlogRuntime::take_tap_delta`] drain.
    tap_log: Vec<(TableId, Row, CommitOp, u64, u64)>,
    /// True while `recompute_views` rebuilds: incremental capture is
    /// suspended (aggregate rebuilds re-insert every group through
    /// `apply_insert`) — the rebuild is reported as an exact diff instead.
    tap_suspended: bool,
    /// Host counters registered via [`OverlogRuntime::register_counter`],
    /// snapshot and restored with durable state.
    counters: Vec<(String, Arc<AtomicI64>)>,
    /// Per-view derivation multiplicities for `Counting`-certified views
    /// (see [`crate::analysis::maint`]): how many source rows currently
    /// derive each head row. Presence of a view's map means its counts are
    /// *valid* — removal is invalidation, and the next maintenance round
    /// falls back to recomputation and rebuilds the map. Cleared wholesale
    /// whenever the plan is replaced (rule ids and strategies shift).
    maint_support: FxHashMap<TableId, FxHashMap<Row, i64>>,
}

impl std::fmt::Debug for OverlogRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlogRuntime")
            .field("addr", &self.addr)
            .field("tables", &self.tables.len())
            .field("rules", &self.plan.rules.len())
            .field("tick", &self.tick_count)
            .finish()
    }
}

/// Per-tick workspace. The semi-naive delta is *zero-copy*: every row
/// inserted this tick is appended once to the per-table `added` log, and a
/// round's delta for table `t` is the slice `added[t][cursor[t]..hi[t]]` —
/// references move, rows are never re-cloned into round buffers (the old
/// `round_delta = added.clone()` / `delta_rows.clone()` copies).
#[derive(Default)]
struct TickCtx {
    /// Append-only per-table log of rows added this tick, indexed by
    /// [`TableId`].
    added: Vec<Vec<Row>>,
    /// Per-table read position of the current semi-naive round; reset to 0
    /// at stratum entry (each stratum reprocesses the whole tick's log).
    cursor: Vec<usize>,
    /// Per-table end of the current round's delta slice (the log length
    /// snapshotted at round start; rows appended during the round are the
    /// next round's delta).
    hi: Vec<usize>,
    deferred_deletes: Vec<(TableId, Row)>,
    deferred_inserts: Vec<(TableId, Row)>,
    deferred_seen: FxHashSet<(TableId, Row)>,
    /// Dedup scratch for applying `deferred_deletes`.
    delete_seen: FxHashSet<(TableId, Row)>,
    outbox: Vec<NetTuple>,
    sent: FxHashSet<(Arc<str>, TableId, Row)>,
    derivations: u64,
    attempts: u64,
    /// View inputs that *shrank* this tick (deletions, key-overwrites):
    /// every view depending on one of these must be rebuilt.
    shrink_dirty: IdSet,
    /// Negated view inputs that *grew* this tick: only non-monotonic
    /// views (negation/aggregation in their closure) can lose tuples to
    /// growth, so the CALM-certified ones skip the rebuild.
    grow_dirty: IdSet,
    changed_tables: IdSet,
    /// Per-table log of rows that *entered* a view input this tick (new
    /// inserts and the new side of key-overwrites). Fed only when
    /// [`plan::PlanOptions::maintenance`] is on, and only for view inputs;
    /// the maintenance executor reads slices of it to scope its work.
    m_add: Vec<Vec<Row>>,
    /// Per-table log of rows that *left* a view input this tick (deletions
    /// and the old side of key-overwrites). Same gating as `m_add`.
    m_del: Vec<Vec<Row>>,
    /// Per-`(view, source)` consumption marks into `m_add`/`m_del`: how
    /// far the view's maintenance has already read each source's logs
    /// (the pre-fixpoint pass consumes a prefix, the commit pass the
    /// rest). Reset every tick — the logs are per-tick.
    view_marks: FxHashMap<(TableId, TableId), (usize, usize)>,
    /// Pooled evaluator buffers (see [`EvalScratch`]); cleared per use,
    /// not per tick.
    eval: EvalScratch,
    /// Round scratch: `(rule id, variant index, delta table index)` of the
    /// variants selected to run this round, sorted to match sweep order.
    pairs: Vec<(usize, usize, usize)>,
    /// Per-round vectorized delta-gate cache, keyed by `(delta table
    /// index, gate column)`: the round's delta slice for a table is
    /// grouped *once* per gated column, then every variant gating on
    /// that column answers its selection with one hash lookup instead
    /// of an O(delta) scan. Cleared at round start — a new round means
    /// new slices.
    gates: FxHashMap<(usize, usize), ColGroup>,
}

/// Pooled per-evaluation buffers: the slot environment and the index
/// probe-key scratch. Most rule evaluations derive nothing (a delta row
/// rarely matches more than a few of the rules scanning its table), and
/// with these pooled such evaluations allocate nothing at all.
#[derive(Default)]
struct EvalScratch {
    env: Vec<Option<Value>>,
    probe_vals: Vec<Value>,
    /// Typed probe-key scratch for the kernel path's `i64` index lookups.
    int_vals: Vec<i64>,
    /// Kernel assignment registers. (The kernel candidate-row stack is a
    /// per-call `Vec<&Row>` — it borrows table rows, so it cannot live in
    /// the pooled scratch.)
    kregs: Vec<Value>,
}

/// Captures, for each environment a rule body emits, the positive body
/// tuples that matched along the way. Disabled (and cost-free beyond a
/// branch per scan) unless provenance capture is on.
struct SupportSink {
    enabled: bool,
    cur: Vec<(String, Row)>,
    out: Vec<Vec<(String, Row)>>,
}

impl SupportSink {
    fn new(enabled: bool) -> Self {
        SupportSink {
            enabled,
            cur: Vec::new(),
            out: Vec::new(),
        }
    }

    fn into_supports(self) -> Option<Vec<Vec<(String, Row)>>> {
        if self.enabled {
            Some(self.out)
        } else {
            None
        }
    }
}

impl TickCtx {
    /// Clear for a fresh tick over `ntables` tables, keeping allocations.
    fn reset(&mut self, ntables: usize) {
        self.added.iter_mut().for_each(Vec::clear);
        self.added.resize_with(ntables, Vec::new);
        self.cursor.clear();
        self.cursor.resize(ntables, 0);
        self.hi.clear();
        self.hi.resize(ntables, 0);
        self.deferred_deletes.clear();
        self.deferred_inserts.clear();
        // Guarded clears: a pooled hash set keeps its high-water capacity,
        // and clearing one sweeps that capacity even when it holds nothing.
        if !self.deferred_seen.is_empty() {
            self.deferred_seen.clear();
        }
        if !self.delete_seen.is_empty() {
            self.delete_seen.clear();
        }
        self.outbox.clear();
        if !self.sent.is_empty() {
            self.sent.clear();
        }
        self.derivations = 0;
        self.attempts = 0;
        self.shrink_dirty.clear();
        self.grow_dirty.clear();
        self.changed_tables.clear();
        self.m_add.iter_mut().for_each(Vec::clear);
        self.m_add.resize_with(ntables, Vec::new);
        self.m_del.iter_mut().for_each(Vec::clear);
        self.m_del.resize_with(ntables, Vec::new);
        if !self.view_marks.is_empty() {
            self.view_marks.clear();
        }
    }
}

impl OverlogRuntime {
    /// Create a runtime identified by a node address.
    ///
    /// The runtime pre-declares the table `me(Addr)` holding its own
    /// address, so programs can bind their location:
    /// `response(@Src, Id) :- request(Src, Id), me(Me);`.
    pub fn new(addr: impl AsRef<str>) -> Self {
        let addr: Arc<str> = Arc::from(addr.as_ref());
        let mut rt = OverlogRuntime {
            addr: addr.clone(),
            decls: HashMap::new(),
            ids: TableIds::new(),
            tables: Vec::new(),
            rule_sources: Vec::new(),
            sources: Vec::new(),
            source_rule_spans: Vec::new(),
            host_inserted: HashSet::new(),
            plan: Arc::new(Plan::default()),
            plan_opts: plan::PlanOptions::default(),
            fact_counts: HashMap::new(),
            builtins: Builtins::standard(),
            timers: Vec::new(),
            watch_names: HashSet::new(),
            watch_ids: IdSet::new(),
            pending: VecDeque::new(),
            trace: VecDeque::new(),
            trace_cap: 100_000,
            trace_dropped: 0,
            trace_all: false,
            prov_on: false,
            prov: Vec::new(),
            prov_seen: FxHashSet::default(),
            prov_cap: 200_000,
            prov_dropped: 0,
            budget: 5_000_000,
            rule_stats: Vec::new(),
            shard_stats: Vec::new(),
            eval_stats: EvalStats::default(),
            tick_count: 0,
            now: 0,
            scratch: TickCtx::default(),
            agg_scratch: TickCtx::default(),
            durable_mode: DurableMode::Off,
            durable_ids: IdSet::new(),
            commit_log: Vec::new(),
            tap_names: HashSet::new(),
            tap_ids: IdSet::new(),
            tap_log: Vec::new(),
            tap_suspended: false,
            counters: Vec::new(),
            maint_support: FxHashMap::default(),
        };
        let me = TableDecl {
            name: "me".into(),
            keys: None,
            types: vec![TypeTag::Addr],
            kind: TableKind::Materialized,
            span: Span::default(),
        };
        rt.declare_table(me);
        rt.tables[0]
            .insert(Arc::new(vec![Value::Addr(addr)]))
            .expect("me fact matches its own declaration");
        rt
    }

    /// Create the table for `d`, assigning the next dense [`TableId`]:
    /// `ids` and `tables` grow in lockstep, so every interned name has a
    /// table at `tid.idx()`.
    fn declare_table(&mut self, d: TableDecl) {
        let tid = self.ids.intern(&d.name);
        debug_assert_eq!(
            tid.idx(),
            self.tables.len(),
            "table ids are assigned in creation order"
        );
        if self.watch_names.contains(&d.name) {
            self.watch_ids.insert(tid);
        }
        self.decls.insert(d.name.clone(), d.clone());
        self.tables.push(Table::new(d));
    }

    /// This runtime's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Virtual time of the last tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of ticks executed.
    pub fn ticks(&self) -> u64 {
        self.tick_count
    }

    /// Set the per-tick derivation budget (guards against diverging
    /// recursion through arithmetic).
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Enable or disable tracing of *every* derivation (experiment E7's
    /// monitoring toggle). `watch`ed tables are always traced.
    pub fn set_trace_all(&mut self, on: bool) {
        self.trace_all = on;
    }

    /// Register a host-provided builtin function.
    pub fn register_builtin<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.builtins.register(name, f);
    }

    /// Load an Overlog program, merging its declarations and rules with
    /// everything loaded before. Facts are queued for the next tick.
    pub fn load(&mut self, src: &str) -> Result<()> {
        let prog = parse_program(src)?;
        // Merge declarations first so facts and rules can target them.
        for stmt in &prog.statements {
            match stmt {
                Statement::Define(d) => {
                    if let Some(existing) = self.decls.get(&d.name) {
                        if !existing.same_schema(d) {
                            return Err(OverlogError::Redefinition {
                                table: d.name.clone(),
                                span: d.span,
                            });
                        }
                    } else {
                        self.declare_table(d.clone());
                    }
                }
                Statement::Timer {
                    name,
                    interval_ms,
                    span,
                } => {
                    if !self.decls.contains_key(name) {
                        self.declare_table(TableDecl {
                            name: name.clone(),
                            keys: None,
                            types: vec![TypeTag::Int],
                            kind: TableKind::Event,
                            span: *span,
                        });
                    } else {
                        let d = &self.decls[name];
                        if d.kind != TableKind::Event || d.arity() != 1 {
                            return Err(OverlogError::Redefinition {
                                table: name.clone(),
                                span: *span,
                            });
                        }
                    }
                    self.timers.push(TimerState {
                        tid: self.ids.get(name).expect("timer table declared above"),
                        interval: *interval_ms,
                        next: 0,
                    });
                }
                _ => {}
            }
        }
        // Watches: validated after the declaration pass so a watch may
        // precede its table's define in the same source.
        for stmt in &prog.statements {
            if let Statement::Watch { table, span } = stmt {
                if !self.decls.contains_key(table) {
                    return Err(OverlogError::UnknownTable {
                        table: table.clone(),
                        rule: None,
                        span: *span,
                    });
                }
                self.watch(table);
            }
        }
        // Facts: constant-fold and queue.
        for stmt in &prog.statements {
            if let Statement::Fact {
                table,
                values,
                span,
            } = stmt
            {
                if !self.decls.contains_key(table) {
                    return Err(OverlogError::UnknownTable {
                        table: table.clone(),
                        rule: None,
                        span: *span,
                    });
                }
                let mut row = Vec::with_capacity(values.len());
                for e in values {
                    let mut vars = Vec::new();
                    e.collect_vars(&mut vars);
                    if !vars.is_empty() || matches!(e, crate::ast::Expr::Wildcard) {
                        return Err(OverlogError::UnsafeRule {
                            rule: format!("fact {table}"),
                            var: vars.into_iter().next().unwrap_or_else(|| "_".into()),
                            span: *span,
                        });
                    }
                    let ce = plan::compile_fact_expr(e);
                    row.push(eval_cexpr(&ce, &[], &self.builtins)?);
                }
                *self.fact_counts.entry(table.clone()).or_default() += 1;
                let tid = self.ids.get(table).expect("declared tables are interned");
                self.pending.push_back(Pending::Insert(tid, Arc::new(row)));
            }
        }
        // Rules: append and recompile the whole plan.
        let before = self.rule_sources.len();
        self.rule_sources.extend(prog.rules().cloned());
        match self.recompile() {
            Ok(p) => {
                self.plan = Arc::new(p);
                self.rule_stats
                    .resize(self.plan.rules.len(), RuleStats::default());
                self.shard_stats.resize(
                    self.plan.rules.len(),
                    vec![ShardStats::default(); self.plan_opts.shards.max(1)],
                );
                self.build_indexes();
                self.sources.push(src.to_string());
                self.source_rule_spans
                    .push((before, self.rule_sources.len() - before));
                self.refresh_durable_ids();
                self.refresh_tap_ids();
                Ok(())
            }
            Err(e) => {
                self.rule_sources.truncate(before);
                // Restore the previous (still valid) plan.
                self.plan = Arc::new(self.recompile().expect("previous plan compiled before"));
                Err(e)
            }
        }
    }

    /// Remove the most recent load of `src`: its rules leave the plan (and
    /// their [`RuleStats`]/[`ShardStats`] slots go with them — rule ids are
    /// dense indexes, so surviving rules' counters shift down in lockstep
    /// with their new ids, never pointing at a removed rule's numbers).
    /// This is the uninstall half of dynamic metaprogramming: monitors and
    /// standing subscriptions install rules with [`OverlogRuntime::load`]
    /// and retire them here.
    ///
    /// Declarations, facts, timers and watches contributed by the source
    /// are kept — tables have dense ids and cannot be removed; use
    /// [`OverlogRuntime::unwatch`] and [`OverlogRuntime::clear_table`] to
    /// retire a generated table's watch and contents. Returns `Ok(false)`
    /// when no load of `src` exists. On a recompile error (a later load's
    /// rules depended on this source's derivations) the rules are restored
    /// and the runtime is unchanged.
    pub fn unload(&mut self, src: &str) -> Result<bool> {
        let Some(i) = self.sources.iter().rposition(|s| s == src) else {
            return Ok(false);
        };
        let (start, len) = self.source_rule_spans[i];
        let removed: Vec<Rule> = self.rule_sources.drain(start..start + len).collect();
        match self.recompile() {
            Ok(p) => {
                self.plan = Arc::new(p);
                // Drop the removed rules' stats slots so the dense
                // rule-id indexing stays aligned (the stale-stats fix).
                if start + len <= self.rule_stats.len() {
                    self.rule_stats.drain(start..start + len);
                }
                if start + len <= self.shard_stats.len() {
                    self.shard_stats.drain(start..start + len);
                }
                self.rule_stats
                    .resize(self.plan.rules.len(), RuleStats::default());
                self.shard_stats.resize(
                    self.plan.rules.len(),
                    vec![ShardStats::default(); self.plan_opts.shards.max(1)],
                );
                self.sources.remove(i);
                self.source_rule_spans.remove(i);
                for span in &mut self.source_rule_spans[i..] {
                    span.0 -= len;
                }
                self.build_indexes();
                self.refresh_durable_ids();
                self.refresh_tap_ids();
                Ok(true)
            }
            Err(e) => {
                // Splice the rules back where they were; the previous plan
                // compiled before, so this recompile cannot fail.
                self.rule_sources.splice(start..start, removed);
                self.plan = Arc::new(self.recompile().expect("previous plan compiled before"));
                Err(e)
            }
        }
    }

    /// Empty a table's rows from the host (retiring a generated
    /// observation table after [`OverlogRuntime::unload`]). Durable and
    /// tapped tables log the removals; views depending on the table are
    /// rebuilt. Returns the number of rows removed.
    pub fn clear_table(&mut self, name: &str) -> Result<usize> {
        let Some(tid) = self.ids.get(name) else {
            return Ok(0);
        };
        let old: Vec<Row> = self.tables[tid.idx()].scan().cloned().collect();
        if old.is_empty() {
            return Ok(0);
        }
        if self.durable_ids.contains(tid) {
            self.commit_log
                .extend(old.iter().map(|r| (tid, r.clone(), CommitOp::Delete)));
        }
        if self.tap_ids.contains(tid) {
            let (tick, now) = (self.tick_count, self.now);
            self.tap_log.extend(
                old.iter()
                    .map(|r| (tid, r.clone(), CommitOp::Delete, tick, now)),
            );
        }
        let n = old.len();
        self.tables[tid.idx()].clear();
        if self.plan.view_inputs.contains(tid) || self.plan.neg_view_inputs.contains(tid) {
            self.recompute_all_views()?;
        }
        Ok(n)
    }

    fn recompile(&mut self) -> Result<Plan> {
        // Any plan replacement shifts rule ids and maintenance strategies;
        // the Counting support counts accumulated under the old plan are
        // meaningless under the new one.
        self.maint_support.clear();
        plan::compile_with(
            &self.decls,
            &self.rule_sources,
            &self.fact_counts,
            self.plan_opts,
            &mut self.ids,
        )
    }

    /// Eagerly build every secondary index the plan's scans probe, so
    /// tick-path lookups go through `&self` (zero-copy candidate slices)
    /// instead of creating indexes lazily under `&mut self`.
    fn build_indexes(&mut self) {
        let plan = Arc::clone(&self.plan);
        for rule in plan.rules.iter() {
            for variant in &rule.variants {
                for op in &variant.ops {
                    let (tid, cols) = match op {
                        Op::Scan {
                            tid, index_cols, ..
                        }
                        | Op::NegScan {
                            tid, index_cols, ..
                        } => (tid, index_cols),
                        _ => continue,
                    };
                    if !cols.is_empty() {
                        self.tables[tid.idx()].ensure_index(cols);
                    }
                }
            }
        }
        // Typed `i64` twins for the column sets the compiled kernels
        // probe as all-`int`. Built *after* the generic pass above so
        // each twin clones its bucket order from the generic index it
        // mirrors (see [`Table::ensure_int_index`]).
        for rule in plan.rules.iter() {
            for variant in &rule.variants {
                let Some(kernel) = &variant.kernel else {
                    continue;
                };
                for kop in &kernel.ops {
                    let (tid, cols, int_probe) = match kop {
                        KOp::Scan {
                            tid,
                            index_cols,
                            int_probe,
                            ..
                        }
                        | KOp::NegScan {
                            tid,
                            index_cols,
                            int_probe,
                            ..
                        } => (tid, index_cols, *int_probe),
                        _ => continue,
                    };
                    if int_probe && !cols.is_empty() {
                        self.tables[tid.idx()].ensure_int_index(cols);
                    }
                }
            }
        }
    }

    /// Set the analysis-driven planner options (see
    /// [`plan::PlanOptions`]) and recompile the plan. Table contents are
    /// untouched, so hosts can flip options mid-run to A/B the optimizer.
    pub fn set_plan_options(&mut self, opts: plan::PlanOptions) {
        self.plan_opts = opts;
        let p = self.recompile().expect("loaded sources compiled before");
        self.plan = Arc::new(p);
        self.rule_stats
            .resize(self.plan.rules.len(), RuleStats::default());
        // Shard counters are keyed by the new shard count: reset them.
        self.shard_stats =
            vec![vec![ShardStats::default(); self.plan_opts.shards.max(1)]; self.plan.rules.len()];
        self.build_indexes();
    }

    /// The planner options currently in effect.
    pub fn plan_options(&self) -> plan::PlanOptions {
        self.plan_opts
    }

    /// Queue an external insertion for the next tick.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<()> {
        let tid = self
            .ids
            .get(table)
            .ok_or_else(|| OverlogError::unknown_table(table))?;
        self.tables[tid.idx()].typecheck(&row)?;
        self.host_inserted.insert(table.to_string());
        self.pending.push_back(Pending::Insert(tid, row));
        Ok(())
    }

    /// Queue an external deletion for the next tick.
    pub fn delete(&mut self, table: &str, row: Row) -> Result<()> {
        let tid = self
            .ids
            .get(table)
            .ok_or_else(|| OverlogError::unknown_table(table))?;
        self.host_inserted.insert(table.to_string());
        self.pending.push_back(Pending::Delete(tid, row));
        Ok(())
    }

    /// Deliver a network tuple (same queue as [`OverlogRuntime::insert`]).
    pub fn deliver(&mut self, net: &NetTuple) -> Result<()> {
        self.insert(&net.table, net.row.clone())
    }

    /// Whether any external work is queued (used by hosts to decide whether
    /// a tick is needed).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.ids.get(name).map(|tid| &self.tables[tid.idx()])
    }

    /// Sorted rows of a table (empty when the table is unknown).
    pub fn rows(&self, name: &str) -> Vec<Row> {
        self.table(name)
            .map(|t| t.sorted_rows())
            .unwrap_or_default()
    }

    /// Number of rows in a table.
    pub fn count(&self, name: &str) -> usize {
        self.table(name).map(|t| t.len()).unwrap_or(0)
    }

    /// Add a watch on a table at runtime. Unknown names are remembered:
    /// the watch takes effect if the table is declared later.
    pub fn watch(&mut self, table: &str) {
        if let Some(tid) = self.ids.get(table) {
            self.watch_ids.insert(tid);
        }
        self.watch_names.insert(table.to_string());
    }

    /// Remove a watch added by [`OverlogRuntime::watch`] or a loaded
    /// `watch(t);` statement — the revert half `uninstall_monitor` needs.
    /// Returns whether the table was watched.
    pub fn unwatch(&mut self, table: &str) -> bool {
        let was = self.watch_names.remove(table);
        if was {
            self.watch_ids.clear();
            for name in &self.watch_names {
                if let Some(tid) = self.ids.get(name) {
                    self.watch_ids.insert(tid);
                }
            }
        }
        was
    }

    /// Attach a *delta tap* to a materialized table: from now on every
    /// committed change to it (insert, retraction of an overwritten row,
    /// deletion, view shrink/regrow) is appended to the tap log for
    /// [`OverlogRuntime::take_tap_delta`] to drain. This is the serving
    /// tier's capture mechanism: cost is proportional to the table's
    /// churn, zero for untapped tables (one bitset test), and zero when no
    /// taps exist. Returns `false` for unknown or event tables (events
    /// clear every tick; subscribe to a view over them instead).
    pub fn add_tap(&mut self, table: &str) -> bool {
        match self.ids.get(table) {
            Some(tid) if !self.tables[tid.idx()].is_event() => {
                self.tap_names.insert(table.to_string());
                self.tap_ids.insert(tid);
                true
            }
            _ => false,
        }
    }

    /// Detach a delta tap. Already-captured records stay in the log until
    /// drained. Returns whether the table was tapped.
    pub fn remove_tap(&mut self, table: &str) -> bool {
        let was = self.tap_names.remove(table);
        if was {
            self.refresh_tap_ids();
        }
        was
    }

    /// Whether any table is tapped.
    pub fn taps_enabled(&self) -> bool {
        !self.tap_ids.is_empty()
    }

    /// Names of the tapped tables, sorted.
    pub fn tapped_tables(&self) -> Vec<String> {
        let mut out: Vec<String> = self.tap_names.iter().cloned().collect();
        out.sort();
        out
    }

    /// Drain the tap records captured since the last drain, in commit
    /// order. Empty (and free) unless taps are attached.
    pub fn take_tap_delta(&mut self) -> Vec<TapRecord> {
        self.tap_log
            .drain(..)
            .map(|(tid, row, op, tick, time)| TapRecord {
                table: self.ids.name(tid).to_string(),
                row,
                op,
                tick,
                time,
            })
            .collect()
    }

    /// Recompile `tap_names` into the hot-path id set (event tables are
    /// ineligible; unknown names wait for their declaration).
    fn refresh_tap_ids(&mut self) {
        self.tap_ids.clear();
        for name in &self.tap_names {
            if let Some(tid) = self.ids.get(name) {
                if !self.tables[tid.idx()].is_event() {
                    self.tap_ids.insert(tid);
                }
            }
        }
    }

    /// Drain the accumulated trace, discarding the drop counter. Prefer
    /// [`OverlogRuntime::drain_trace`], which reports losses.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.drain_trace().events
    }

    /// Drain the accumulated trace together with the number of records the
    /// ring buffer evicted since the last drain; resets the drop counter.
    pub fn drain_trace(&mut self) -> TraceDrain {
        TraceDrain {
            events: self.trace.drain(..).collect(),
            dropped: std::mem::take(&mut self.trace_dropped),
        }
    }

    /// Records evicted from the trace ring buffer since the last drain.
    pub fn trace_drops(&self) -> u64 {
        self.trace_dropped
    }

    /// Resize the trace ring buffer (evicting oldest records if shrinking).
    pub fn set_trace_cap(&mut self, cap: usize) {
        self.trace_cap = cap.max(1);
        while self.trace.len() > self.trace_cap {
            self.trace.pop_front();
            self.trace_dropped += 1;
        }
    }

    /// Enable or disable why-provenance capture (off by default; costs one
    /// `(table, row)` clone per joined body tuple while on).
    pub fn set_provenance(&mut self, on: bool) {
        self.prov_on = on;
    }

    /// Cap on retained provenance records; derivations past the cap are
    /// counted in [`OverlogRuntime::prov_drops`] instead of stored.
    pub fn set_prov_cap(&mut self, cap: usize) {
        self.prov_cap = cap;
    }

    /// Provenance records captured so far, in derivation order.
    pub fn provenance(&self) -> &[ProvRecord] {
        &self.prov
    }

    /// Derivations not recorded because the provenance store hit its cap.
    pub fn prov_drops(&self) -> u64 {
        self.prov_dropped
    }

    /// Drain captured provenance, resetting the first-witness set and drop
    /// counter (subsequent derivations are recorded afresh).
    pub fn take_provenance(&mut self) -> Vec<ProvRecord> {
        self.prov_seen.clear();
        self.prov_dropped = 0;
        std::mem::take(&mut self.prov)
    }

    /// Per-rule derivation counters, labeled.
    pub fn rule_fire_counts(&self) -> Vec<(String, u64)> {
        self.plan
            .rules
            .iter()
            .map(|r| (r.label.clone(), self.rule_stats[r.id].fires))
            .collect()
    }

    /// Per-rule profiler counters, labeled (see [`RuleStats`]).
    pub fn rule_stats(&self) -> Vec<(String, RuleStats)> {
        self.plan
            .rules
            .iter()
            .map(|r| (r.label.clone(), self.rule_stats[r.id]))
            .collect()
    }

    /// Per-rule, per-shard profiler counters, labeled (see
    /// [`ShardStats`]). Every rule reports `PlanOptions::shards.max(1)`
    /// entries; rules that never took the sharded path report zeros.
    pub fn shard_stats(&self) -> Vec<(String, Vec<ShardStats>)> {
        self.plan
            .rules
            .iter()
            .map(|r| {
                let per =
                    self.shard_stats.get(r.id).cloned().unwrap_or_else(|| {
                        vec![ShardStats::default(); self.plan_opts.shards.max(1)]
                    });
                (r.label.clone(), per)
            })
            .collect()
    }

    /// Tick-granularity evaluation counters.
    pub fn eval_stats(&self) -> EvalStats {
        self.eval_stats
    }

    /// Program texts successfully loaded so far, in load order.
    pub fn loaded_sources(&self) -> &[String] {
        &self.sources
    }

    /// All declared tables, including runtime-ambient ones.
    pub fn table_decls(&self) -> impl Iterator<Item = &TableDecl> {
        self.decls.values()
    }

    /// Tables currently watched, sorted.
    pub fn watched_tables(&self) -> Vec<String> {
        let mut w: Vec<String> = self.watch_names.iter().cloned().collect();
        w.sort();
        w
    }

    /// Head tables of loaded non-delete rules (tables the program derives
    /// into), sorted and deduplicated.
    pub fn derived_tables(&self) -> Vec<String> {
        let mut ts: Vec<String> = self
            .plan
            .rules
            .iter()
            .filter(|r| !r.delete)
            .map(|r| r.head_table.clone())
            .collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// Number of loaded rules.
    pub fn rule_count(&self) -> usize {
        self.plan.rules.len()
    }

    /// Statically analyze everything loaded so far (the `olgcheck` pass,
    /// without executing anything): every load-time check plus the lint
    /// suite. Tables the host has inserted into are treated as externally
    /// filled. Returns the diagnostics; see
    /// [`OverlogRuntime::check_with_sources`] to render them.
    pub fn check(&self) -> Vec<Diagnostic> {
        self.check_with_sources().0
    }

    /// Like [`OverlogRuntime::check`], also returning the [`SourceMap`]
    /// needed to render diagnostics with file/line/column positions.
    pub fn check_with_sources(&self) -> (Vec<Diagnostic>, SourceMap) {
        let mut ctx = analysis::ProgramContext::new();
        for d in analysis::ProgramContext::runtime_ambient() {
            ctx.add_ambient(d);
        }
        let mut map = SourceMap::new();
        for (i, src) in self.sources.iter().enumerate() {
            ctx.add_source(&format!("loaded#{i}"), src, &mut map);
        }
        for t in &self.host_inserted {
            ctx.mark_external(t);
        }
        (analysis::analyze(&ctx), map)
    }

    /// Tick repeatedly (at the same virtual time) until no queued or
    /// inductively-deferred work remains, collecting all network sends.
    /// Bounded; errors if the program does not quiesce within 64 ticks.
    /// Mark every eligible table durable: committed deltas of non-event,
    /// non-view tables (except the ambient `me` fact, which the
    /// constructor recreates) are appended to the commit log for the host
    /// to persist. Call after loading programs; later `load`s keep the
    /// marking current.
    pub fn set_durable_all(&mut self) {
        self.durable_mode = DurableMode::All;
        self.refresh_durable_ids();
    }

    /// Mark just the named tables durable (ineligible or unknown names are
    /// ignored; see [`OverlogRuntime::set_durable_all`] for eligibility).
    pub fn set_durable_tables(&mut self, names: &[&str]) {
        self.durable_mode = DurableMode::Named(names.iter().map(|s| s.to_string()).collect());
        self.refresh_durable_ids();
    }

    /// Whether any table is marked durable.
    pub fn durable_enabled(&self) -> bool {
        !self.durable_ids.is_empty()
    }

    /// Names of the tables currently marked durable, sorted.
    pub fn durable_tables(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .durable_ids
            .iter()
            .map(|tid| self.ids.name(tid).to_string())
            .collect();
        out.sort();
        out
    }

    /// Recompile `durable_mode` into the hot-path id set. Views are
    /// excluded — they are derived state, rebuilt from the restored bases
    /// by [`OverlogRuntime::restore`] — as are event tables (one-tick
    /// lifetime) and `me` (identity, recreated by the constructor and
    /// wrong to ship between nodes in a snapshot).
    fn refresh_durable_ids(&mut self) {
        self.durable_ids.clear();
        if self.durable_mode == DurableMode::Off {
            return;
        }
        for (i, t) in self.tables.iter().enumerate() {
            let tid = TableId(i as u32);
            if t.is_event() || self.plan.view_tables.contains(tid) || t.name() == "me" {
                continue;
            }
            // Observation-plane tables (monitor rowcounts, subscription
            // views) are never durable: they are rebuilt by re-installing
            // the monitor / re-subscribing, and keeping them out of the
            // WAL keeps its bytes identical with and without observers.
            if is_observation_table(t.name()) {
                continue;
            }
            let wanted = match &self.durable_mode {
                DurableMode::Off => false,
                DurableMode::All => true,
                DurableMode::Named(names) => names.iter().any(|n| n == t.name()),
            };
            if wanted {
                self.durable_ids.insert(tid);
            }
        }
    }

    /// Drain the committed deltas captured since the last drain — the
    /// host appends these to its write-ahead log. Empty (and free) unless
    /// durable tables are marked.
    pub fn take_commit_delta(&mut self) -> Vec<CommitRecord> {
        self.commit_log
            .drain(..)
            .map(|(tid, row, op)| CommitRecord {
                table: self.ids.name(tid).to_string(),
                row,
                op,
            })
            .collect()
    }

    /// Register a monotonically increasing host counter builtin: `name()`
    /// returns `base, base+1, ...`. Unlike [`register_builtin`] closures,
    /// tracked counters are captured in snapshots and restored with
    /// durable state, so physically recovered runtimes do not re-issue
    /// identifiers.
    ///
    /// [`register_builtin`]: OverlogRuntime::register_builtin
    pub fn register_counter(&mut self, name: &str, base: i64) {
        let cell = Arc::new(AtomicI64::new(base));
        let in_builtin = Arc::clone(&cell);
        self.builtins.register(name, move |_args| {
            Ok(Value::Int(in_builtin.fetch_add(1, Ordering::Relaxed)))
        });
        self.counters.retain(|(n, _)| n != name);
        self.counters.push((name.to_string(), cell));
    }

    /// Current values of all tracked counters (the next value each will
    /// return), in registration order.
    pub fn counter_values(&self) -> Vec<(String, i64)> {
        self.counters
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Set a tracked counter's next value (unknown names are ignored).
    pub fn set_counter(&mut self, name: &str, value: i64) {
        if let Some((_, c)) = self.counters.iter().find(|(n, _)| n == name) {
            c.store(value, Ordering::Relaxed);
        }
    }

    /// Snapshot the durable tables and tracked counters — the checkpoint
    /// a host pairs with write-ahead-log truncation. Deterministic: tables
    /// and rows are sorted.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        let mut tables: Vec<(String, Vec<Row>)> = self
            .durable_ids
            .iter()
            .map(|tid| {
                let t = &self.tables[tid.idx()];
                (t.name().to_string(), t.sorted_rows())
            })
            .collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        RuntimeSnapshot {
            tables,
            counters: self.counter_values(),
        }
    }

    /// Recover durable state into a factory-fresh runtime: apply the
    /// queued load-time facts directly (so the first tick cannot overwrite
    /// restored singletons with boot defaults), install the checkpoint
    /// snapshot, physically replay the write-ahead log, set the tracked
    /// counters to their recovered values, and rebuild every view over the
    /// restored bases. Returns the number of snapshot and log rows
    /// applied. Nothing here re-enters the commit log: restored state
    /// becomes durable again only via the next checkpoint.
    pub fn restore(
        &mut self,
        snapshot: Option<&RuntimeSnapshot>,
        log: &[CommitRecord],
        counters: &[(String, i64)],
    ) -> Result<usize> {
        // 1. Drain load-time facts without running rules.
        let work: Vec<Pending> = self.pending.drain(..).collect();
        for p in work {
            match p {
                Pending::Insert(tid, row) => {
                    let t = &mut self.tables[tid.idx()];
                    let row = t.coerce(row);
                    t.insert(row)?;
                }
                Pending::Delete(tid, row) => {
                    self.tables[tid.idx()].delete(&row);
                }
            }
        }
        let mut applied = 0usize;
        // 2. Install the checkpoint snapshot (clear-and-load per table).
        if let Some(snap) = snapshot {
            for (name, rows) in &snap.tables {
                let Some(tid) = self.ids.get(name) else {
                    continue;
                };
                let t = &mut self.tables[tid.idx()];
                t.clear();
                for row in rows {
                    let row = t.coerce(row.clone());
                    t.insert(row)?;
                    applied += 1;
                }
            }
            for (name, v) in &snap.counters {
                self.set_counter(name, *v);
            }
        }
        // 3. Physically replay the log (key-overwrite makes this exact).
        for rec in log {
            let Some(tid) = self.ids.get(&rec.table) else {
                continue;
            };
            let t = &mut self.tables[tid.idx()];
            match rec.op {
                CommitOp::Insert => {
                    let row = t.coerce(rec.row.clone());
                    t.insert(row)?;
                }
                CommitOp::Delete => {
                    t.delete(&rec.row);
                }
            }
            applied += 1;
        }
        // 4. Final counter values (the last batch's capture wins).
        for (name, v) in counters {
            self.set_counter(name, *v);
        }
        // 5. Derived state follows from the bases.
        self.recompute_all_views()?;
        // Tap records captured before the crash (or emitted by the restore
        // rebuild) describe a stream the restored runtime does not
        // continue — drop them; the serving tier resynchronizes
        // subscribers with a fresh snapshot instead.
        self.tap_log.clear();
        Ok(applied)
    }

    /// Install rows shipped from a peer (snapshot catch-up): clear each
    /// named table, load the rows, log them as durable inserts so the
    /// transfer itself reaches this node's write-ahead log, then rebuild
    /// views. Event and view tables are skipped — only base state can be
    /// installed. Returns rows installed.
    pub fn load_snapshot_rows(&mut self, tables: &[(String, Vec<Row>)]) -> Result<usize> {
        let mut applied = 0usize;
        for (name, rows) in tables {
            let Some(tid) = self.ids.get(name) else {
                continue;
            };
            if self.tables[tid.idx()].is_event() || self.plan.view_tables.contains(tid) {
                continue;
            }
            // The clear must reach the log too, or a later physical replay
            // would resurrect rows the install removed.
            if self.durable_ids.contains(tid) {
                let old: Vec<Row> = self.tables[tid.idx()].scan().cloned().collect();
                self.commit_log
                    .extend(old.into_iter().map(|r| (tid, r, CommitOp::Delete)));
            }
            if self.tap_ids.contains(tid) {
                let (tick, now) = (self.tick_count, self.now);
                let old: Vec<Row> = self.tables[tid.idx()].scan().cloned().collect();
                self.tap_log.extend(
                    old.into_iter()
                        .map(|r| (tid, r, CommitOp::Delete, tick, now)),
                );
            }
            self.tables[tid.idx()].clear();
            for row in rows {
                let t = &mut self.tables[tid.idx()];
                let row = t.coerce(row.clone());
                t.insert(row.clone())?;
                if self.durable_ids.contains(tid) {
                    self.commit_log.push((tid, row.clone(), CommitOp::Insert));
                }
                if self.tap_ids.contains(tid) {
                    self.tap_log
                        .push((tid, row, CommitOp::Insert, self.tick_count, self.now));
                }
                applied += 1;
            }
        }
        self.recompute_all_views()?;
        Ok(applied)
    }

    /// Force a full rebuild of every view table from current base state.
    /// Rebuilding is idempotent (views are deterministic functions of
    /// their inputs), so this never changes observable state — but it
    /// *does* seed views installed after their inputs were already
    /// populated, and tapped views report the rebuild as an exact diff.
    /// The serving tier calls this right after installing a standing
    /// query so the tap stream opens with the query's initial contents.
    pub fn refresh_views(&mut self) -> Result<()> {
        self.recompute_all_views()
    }

    /// Rebuild every view table from the current base state.
    fn recompute_all_views(&mut self) -> Result<()> {
        let affected = self.plan.view_tables.clone();
        if affected.is_empty() {
            return Ok(());
        }
        let mut ctx = std::mem::take(&mut self.scratch);
        ctx.reset(self.tables.len());
        let res = self.recompute_views(&affected, &mut ctx);
        self.scratch = ctx;
        res
    }

    pub fn settle(&mut self, now: u64) -> Result<Vec<NetTuple>> {
        let mut sends = Vec::new();
        for _ in 0..64 {
            let res = self.tick(now)?;
            sends.extend(res.sends);
            if !self.has_pending() {
                return Ok(sends);
            }
        }
        Err(OverlogError::Eval(
            "settle: runtime did not quiesce within 64 ticks".into(),
        ))
    }

    /// Execute one timestep at virtual time `now`.
    pub fn tick(&mut self, now: u64) -> Result<TickResult> {
        self.now = now;
        let plan = Arc::clone(&self.plan);
        let ntables = self.tables.len();
        let mut ctx = std::mem::take(&mut self.scratch);
        ctx.reset(ntables);

        // 1. Fire due timers.
        for t in &mut self.timers {
            if now >= t.next {
                self.pending.push_back(Pending::Insert(
                    t.tid,
                    Arc::new(vec![Value::Int(now as i64)]),
                ));
                t.next = now + t.interval;
            }
        }

        // 2. Apply externally queued work.
        let mut pre_dirty = false;
        let mut work = std::mem::take(&mut self.pending);
        for p in work.drain(..) {
            match p {
                Pending::Insert(tid, row) => {
                    self.apply_insert(tid, row, false, &mut ctx)?;
                }
                Pending::Delete(tid, row) => {
                    if self.tables[tid.idx()].delete(&row) {
                        ctx.changed_tables.insert(tid);
                        if self.durable_ids.contains(tid) {
                            self.commit_log.push((tid, row.clone(), CommitOp::Delete));
                        }
                        if self.tap_ids.contains(tid) {
                            self.tap_log.push((
                                tid,
                                row.clone(),
                                CommitOp::Delete,
                                self.tick_count,
                                self.now,
                            ));
                        }
                        self.record_trace(tid, &row, TraceOp::Delete);
                        if plan.view_inputs.contains(tid) {
                            pre_dirty = true;
                            ctx.shrink_dirty.insert(tid);
                            if plan.options.maintenance {
                                ctx.m_del[tid.idx()].push(row.clone());
                            }
                        }
                    }
                }
            }
        }
        self.pending = work;
        if pre_dirty {
            let affected = self.affected_views(&ctx.shrink_dirty, &ctx.grow_dirty);
            if plan.options.maintenance {
                self.update_views(&affected, &mut ctx, false)?;
            } else {
                self.recompute_views(&affected, &mut ctx)?;
            }
            ctx.shrink_dirty.clear();
            ctx.grow_dirty.clear();
        }

        // 3. Stratified semi-naive fixpoint. A round's delta for table `t`
        // is the log slice `ctx.added[t][cursor[t]..hi[t]]` — no cloning.
        for (stratum, stratum_delta) in plan.strata.iter().zip(&plan.strata_delta) {
            // Aggregates and body-less rules run once, at stratum entry.
            for &rid in stratum {
                let rule = &plan.rules[rid];
                if rule.aggregate {
                    // Inductive aggregates (event-fed, materialized head)
                    // run after the fixpoint: their outputs only become
                    // visible next tick anyway, and their event inputs may
                    // still be derived within this stratum.
                    if rule.inductive {
                        continue;
                    }
                    let inputs_changed = rule
                        .positive_tids
                        .iter()
                        .any(|t| ctx.changed_tables.contains(*t));
                    if inputs_changed && !self.scoped_aggregate(rule, &mut ctx)? {
                        self.eval_aggregate(rule, &mut ctx)?;
                    }
                } else if rule.variants[0].delta_pred.is_none() {
                    let t0 = std::time::Instant::now();
                    let (rows, sups) =
                        self.eval_variant(rule, &rule.variants[0], None, &mut ctx.eval)?;
                    if self.kernel_active(&rule.variants[0]) {
                        self.rule_stats[rid].kernel_evals += 1;
                    }
                    self.rule_stats[rid].eval_ns += t0.elapsed().as_nanos() as u64;
                    self.dispatch(rule, rows, sups, &mut ctx)?;
                }
            }
            // Seed the stratum with everything added so far this tick:
            // rewinding the cursors makes the whole log the first delta.
            // Rounds are driven by the plan's delta index: only the tables
            // some variant in this stratum consumes can extend the
            // fixpoint (rows logged for any other table are invisible
            // here and are picked up by later strata, which rewind the
            // cursors again), so `hi`/`cursor` maintenance and the
            // dirty-check touch just those tables, and only the variants
            // whose delta slice is non-empty run — sorted back to the
            // `(rule id, variant)` sweep order so derivation order (and
            // with it key-overwrite conflict resolution) is unchanged.
            ctx.cursor.iter_mut().for_each(|c| *c = 0);
            loop {
                let mut any = false;
                for (t, _) in stratum_delta {
                    ctx.hi[*t] = ctx.added[*t].len();
                    any |= ctx.cursor[*t] < ctx.hi[*t];
                }
                if !any {
                    break;
                }
                self.eval_stats.fixpoint_rounds += 1;
                // New round, new delta slices: drop the vectorized gate
                // groups built over the previous round's slices.
                ctx.gates.clear();
                ctx.pairs.clear();
                for (t, variants) in stratum_delta {
                    if ctx.cursor[*t] < ctx.hi[*t] {
                        ctx.pairs
                            .extend(variants.iter().map(|&(rid, vi)| (rid, vi, *t)));
                    }
                }
                ctx.pairs.sort_unstable();
                let mut pairs = std::mem::take(&mut ctx.pairs);
                for &(rid, vi, dt) in &pairs {
                    let rule = &plan.rules[rid];
                    let variant = &rule.variants[vi];
                    let (lo, hi) = (ctx.cursor[dt], ctx.hi[dt]);
                    self.rule_stats[rid].delta_in += (hi - lo) as u64;
                    // Delta-gate, vectorized: rows failing the scheduled
                    // delta scan's literal checks are rejected by that
                    // scan before any expression runs, so pruning them
                    // up front is observationally identical (see
                    // [`Variant::delta_gate`]). The round's slice is
                    // grouped once per gated column and shared by every
                    // variant gating on it — the protocol-dispatch
                    // pattern where dozens of handler rules disagree
                    // only on a literal discriminator column.
                    let mut pruned: Option<Vec<Row>> = None;
                    if !variant.delta_gate.is_empty() {
                        match gate_select(
                            &mut ctx.gates,
                            &ctx.added[dt][lo..hi],
                            dt,
                            &variant.delta_gate,
                            plan.options.kernels,
                        ) {
                            GateOutcome::Skip => continue,
                            GateOutcome::Full => {}
                            GateOutcome::Rows(rows) => pruned = Some(rows),
                        }
                    }
                    let delta: &[Row] = match &pruned {
                        Some(rows) => rows,
                        None => &ctx.added[dt][lo..hi],
                    };
                    let t0 = std::time::Instant::now();
                    // Shard-safe variants with a large enough delta fan out
                    // across worker threads; everything else (serial
                    // verdicts, small deltas, provenance capture) takes the
                    // ordinary serial call. Both paths produce byte-identical
                    // outputs: the sharded path concatenates contiguous
                    // delta-range results back in delta-log order before
                    // dispatching.
                    let (rows, sups) = if plan.options.shards > 1
                        && delta.len() >= SHARD_MIN_DELTA_ROWS
                        && !self.prov_on
                        && plan.shard.shard_key(rid, vi).is_some()
                    {
                        let (rows, per_shard) =
                            self.eval_variant_sharded(rule, variant, delta, plan.options.shards)?;
                        for (slot, s) in self.shard_stats[rid].iter_mut().zip(&per_shard) {
                            slot.delta_in += s.delta_in;
                            slot.rows_out += s.rows_out;
                            slot.eval_ns += s.eval_ns;
                        }
                        (rows, None)
                    } else {
                        self.eval_variant(rule, variant, Some(delta), &mut ctx.eval)?
                    };
                    if self.kernel_active(variant) {
                        self.rule_stats[rid].kernel_evals += 1;
                    }
                    // Stop the eval clock before dispatch: insert and
                    // index bookkeeping is shared by every engine and
                    // would dilute the per-rule evaluation attribution
                    // the kernel A/B (E15) and `boomtrace profile` read.
                    self.rule_stats[rid].eval_ns += t0.elapsed().as_nanos() as u64;
                    self.dispatch(rule, rows, sups, &mut ctx)?;
                }
                pairs.clear();
                ctx.pairs = pairs;
                // Rows appended during this round (beyond the `hi`
                // snapshot) become the next round's delta.
                for (t, _) in stratum_delta {
                    ctx.cursor[*t] = ctx.hi[*t];
                }
            }
        }

        // 3b. Inductive aggregates, now that all event derivations settled.
        for rule in plan.rules.iter().filter(|r| r.aggregate && r.inductive) {
            let inputs_changed = rule
                .positive_tids
                .iter()
                .any(|t| ctx.changed_tables.contains(*t));
            if inputs_changed {
                self.eval_aggregate(rule, &mut ctx)?;
            }
        }

        // 4. Apply deferred deletions.
        let mut deletions = 0usize;
        let deferred = std::mem::take(&mut ctx.deferred_deletes);
        for (tid, row) in &deferred {
            if !ctx.delete_seen.insert((*tid, row.clone())) {
                continue;
            }
            if self.tables[tid.idx()].delete(row) {
                deletions += 1;
                if self.durable_ids.contains(*tid) {
                    self.commit_log.push((*tid, row.clone(), CommitOp::Delete));
                }
                if self.tap_ids.contains(*tid) {
                    self.tap_log.push((
                        *tid,
                        row.clone(),
                        CommitOp::Delete,
                        self.tick_count,
                        self.now,
                    ));
                }
                self.record_trace(*tid, row, TraceOp::Delete);
                if plan.view_inputs.contains(*tid) {
                    ctx.shrink_dirty.insert(*tid);
                    if plan.options.maintenance {
                        ctx.m_del[tid.idx()].push(row.clone());
                    }
                }
            }
        }
        ctx.deferred_deletes = deferred;

        // 5. Clear event tables (skipping the untouched ones: `clear` on a
        // pooled hash map costs its capacity, not its length).
        for t in &mut self.tables {
            if t.is_event() && !t.is_empty() {
                t.clear();
            }
        }

        // 6. Propagate retractions into the affected views if any input
        // shrank (or a negated input of a non-monotonic view grew):
        // incrementally where the maintenance analysis certified a
        // strategy, by full recomputation otherwise. With maintenance on
        // this pass always runs, because Counting views must consume their
        // sources' insert logs every tick to keep support counts valid.
        let affected = self.affected_views(&ctx.shrink_dirty, &ctx.grow_dirty);
        let views_recomputed = !affected.is_empty();
        if plan.options.maintenance {
            self.update_views(&affected, &mut ctx, true)?;
        } else if views_recomputed {
            self.recompute_views(&affected, &mut ctx)?;
        }

        // 7. Queue inductive insertions for the next tick.
        for (tid, row) in ctx.deferred_inserts.drain(..) {
            self.pending.push_back(Pending::Insert(tid, row));
        }

        self.tick_count += 1;
        self.eval_stats.ticks += 1;
        for send in &ctx.outbox {
            if let Some(tid) = self.ids.get(&send.table) {
                self.record_trace(tid, &send.row, TraceOp::Send);
            }
        }
        let result = TickResult {
            sends: std::mem::take(&mut ctx.outbox),
            derivations: ctx.derivations,
            deletions,
            views_recomputed,
        };
        // Return the workspace to the pool so next tick reuses its buffers.
        self.scratch = ctx;
        Ok(result)
    }

    /// Insert a derived or external row into a local table; reports
    /// whether the insert was new, a key-overwrite, or a duplicate.
    fn apply_insert(
        &mut self,
        tid: TableId,
        row: Row,
        from_view_rule: bool,
        ctx: &mut TickCtx,
    ) -> Result<InsertOutcome> {
        let t = &mut self.tables[tid.idx()];
        // Deltas must hold exactly what the table holds (Addr coercion).
        let row = t.coerce(row);
        let outcome = t.insert(row.clone())?;
        match &outcome {
            InsertOutcome::New => {
                ctx.added[tid.idx()].push(row.clone());
                ctx.changed_tables.insert(tid);
                if self.durable_ids.contains(tid) {
                    self.commit_log.push((tid, row.clone(), CommitOp::Insert));
                }
                if self.tap_ids.contains(tid) && !self.tap_suspended {
                    self.tap_log.push((
                        tid,
                        row.clone(),
                        CommitOp::Insert,
                        self.tick_count,
                        self.now,
                    ));
                }
                self.record_trace(tid, &row, TraceOp::Insert);
                if self.plan.options.maintenance && self.plan.view_inputs.contains(tid) {
                    ctx.m_add[tid.idx()].push(row.clone());
                }
                // Negation is non-monotone: growing a table that appears
                // negated in a view rule can retract view tuples, so it
                // dirties views exactly like a deletion would — even when
                // the insert itself came from a view rule (one view can
                // feed another's negation).
                if self.plan.neg_view_inputs.contains(tid) {
                    ctx.grow_dirty.insert(tid);
                }
            }
            InsertOutcome::Replaced(old) => {
                ctx.added[tid.idx()].push(row.clone());
                ctx.changed_tables.insert(tid);
                if self.durable_ids.contains(tid) {
                    self.commit_log.push((tid, row.clone(), CommitOp::Insert));
                }
                if self.tap_ids.contains(tid) && !self.tap_suspended {
                    // Retraction semantics: the overwritten row leaves the
                    // table, so subscribers see an explicit Delete first.
                    self.tap_log.push((
                        tid,
                        old.clone(),
                        CommitOp::Delete,
                        self.tick_count,
                        self.now,
                    ));
                    self.tap_log.push((
                        tid,
                        row.clone(),
                        CommitOp::Insert,
                        self.tick_count,
                        self.now,
                    ));
                }
                self.record_trace(tid, &row, TraceOp::Insert);
                if self.plan.options.maintenance && self.plan.view_inputs.contains(tid) {
                    ctx.m_del[tid.idx()].push(old.clone());
                    ctx.m_add[tid.idx()].push(row.clone());
                }
                // A key-overwrite removes a tuple other derivations may have
                // consumed: views over this table must be rebuilt — unless
                // the overwrite came from a view rule itself (aggregates
                // refreshing their groups), which is self-consistent.
                // Negated inputs dirty unconditionally (see above).
                if !from_view_rule && self.plan.view_inputs.contains(tid) {
                    ctx.shrink_dirty.insert(tid);
                }
                if self.plan.neg_view_inputs.contains(tid) {
                    ctx.grow_dirty.insert(tid);
                }
            }
            InsertOutcome::Duplicate => {}
        }
        Ok(outcome)
    }

    fn record_trace(&mut self, tid: TableId, row: &Row, op: TraceOp) {
        if self.trace_all || self.watch_ids.contains(tid) {
            if self.trace.len() >= self.trace_cap {
                self.trace.pop_front();
                self.trace_dropped += 1;
            }
            self.trace.push_back(TraceEvent {
                tick: self.tick_count,
                time: self.now,
                table: self.ids.name(tid).to_string(),
                row: row.clone(),
                op,
            });
        }
    }

    /// First-witness why-provenance: remember which rule and body tuples
    /// produced `row` the first time it was derived.
    fn record_prov(&mut self, rule: &CompiledRule, row: &Row, inputs: &[(String, Row)]) {
        if !self.prov_on {
            return;
        }
        let key = (rule.head_tid, row.clone());
        if self.prov_seen.contains(&key) {
            return;
        }
        if self.prov.len() >= self.prov_cap {
            self.prov_dropped += 1;
            return;
        }
        self.prov_seen.insert(key);
        self.prov.push(ProvRecord {
            tick: self.tick_count,
            time: self.now,
            rule: rule.label.clone(),
            table: rule.head_table.clone(),
            row: row.clone(),
            inputs: inputs.to_vec(),
        });
    }

    /// Route derived rows for a rule: remote sends, deferred deletes, or
    /// local insertion. `supports[i]` (when provenance is on) holds the
    /// positive body tuples behind `rows[i]`.
    fn dispatch(
        &mut self,
        rule: &CompiledRule,
        rows: Vec<Row>,
        supports: Option<Vec<Vec<(String, Row)>>>,
        ctx: &mut TickCtx,
    ) -> Result<()> {
        for (i, row) in rows.into_iter().enumerate() {
            ctx.attempts += 1;
            self.rule_stats[rule.id].attempts += 1;
            if ctx.attempts > self.budget {
                return Err(OverlogError::Eval(format!(
                    "derivation budget exceeded in tick {} (rule `{}`)",
                    self.tick_count, rule.label
                )));
            }
            let inputs: &[(String, Row)] = supports
                .as_ref()
                .and_then(|s| s.get(i))
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            if rule.delete {
                ctx.derivations += 1;
                self.rule_stats[rule.id].fires += 1;
                ctx.deferred_deletes.push((rule.head_tid, row));
                continue;
            }
            if let Some(loc) = rule.head_loc {
                let dest = match &row[loc] {
                    Value::Addr(a) | Value::Str(a) => a.clone(),
                    other => {
                        return Err(OverlogError::Eval(format!(
                            "rule `{}`: location specifier is not an address: {other}",
                            rule.label
                        )))
                    }
                };
                if dest != self.addr {
                    // Set semantics: ship each distinct remote tuple once
                    // per tick, even if semi-naive re-derives it.
                    if ctx.sent.insert((dest.clone(), rule.head_tid, row.clone())) {
                        ctx.derivations += 1;
                        self.rule_stats[rule.id].fires += 1;
                        self.record_prov(rule, &row, inputs);
                        ctx.outbox.push(NetTuple {
                            dest,
                            table: rule.head_table.clone(),
                            row,
                        });
                    }
                    continue;
                }
            }
            if rule.inductive {
                // Dedalus-style induction: the update lands at the start of
                // the next timestep, so this tick's rules all read a
                // consistent pre-state.
                let key = (rule.head_tid, row.clone());
                if ctx.deferred_seen.insert(key) {
                    ctx.derivations += 1;
                    self.rule_stats[rule.id].fires += 1;
                    self.record_prov(rule, &row, inputs);
                    ctx.deferred_inserts.push((rule.head_tid, row));
                }
                continue;
            }
            // Effectiveness comes straight from the insert outcome: a new
            // row or a key-overwrite fires the rule, a duplicate does not.
            let outcome = self.apply_insert(rule.head_tid, row.clone(), rule.is_view, ctx)?;
            if !matches!(outcome, InsertOutcome::Duplicate) {
                ctx.derivations += 1;
                self.rule_stats[rule.id].fires += 1;
                self.record_prov(rule, &row, inputs);
            }
        }
        Ok(())
    }

    /// Evaluate one rule variant; returns projected head rows plus (when
    /// provenance capture is on) the body tuples behind each row.
    ///
    /// `delta_rows == None` makes the delta predicate read its full table
    /// (used for body-less variants, aggregates, and view recomputation).
    /// Takes `&self` — indexes are prebuilt, so the delta slice can borrow
    /// the tick context while tables are probed in place. `scratch` holds
    /// the pooled environment and probe-key buffers: most evaluations
    /// derive nothing, and with pooling they allocate nothing either.
    #[allow(clippy::type_complexity)]
    fn eval_variant(
        &self,
        rule: &CompiledRule,
        variant: &Variant,
        delta_rows: Option<&[Row]>,
        scratch: &mut EvalScratch,
    ) -> Result<(Vec<Row>, Option<Vec<Vec<(String, Row)>>>)> {
        // Kernelized variants bypass the environment machinery entirely
        // unless provenance capture needs the interpreted path's support
        // tracking. Both paths visit the same candidates in the same
        // order and emit the same rows — the kernel compiler mirrors
        // this function exactly (enforced by `tests/engine_equiv.rs`).
        if let Some(kernel) = &variant.kernel {
            if self.plan.options.kernels && !self.prov_on {
                return Ok((self.eval_kernel(kernel, delta_rows, scratch)?, None));
            }
        }
        let mut envs: Vec<Vec<Option<Value>>> = Vec::new();
        let EvalScratch {
            env, probe_vals, ..
        } = scratch;
        env.clear();
        env.resize(rule.nslots, None);
        let mut sup = SupportSink::new(self.prov_on);
        self.exec_ops(
            rule,
            &variant.ops,
            0,
            variant.delta_pred,
            delta_rows,
            env,
            &mut envs,
            &mut sup,
            probe_vals,
        )?;
        // Project heads (non-aggregate rules only reach here).
        let mut out = Vec::with_capacity(envs.len());
        for env in &envs {
            let mut row = Vec::with_capacity(rule.head_args.len());
            for arg in &rule.head_args {
                match arg {
                    CHeadArg::Expr(e) => row.push(eval_cexpr(e, env, &self.builtins)?),
                    CHeadArg::Agg(_, _) => {
                        return Err(OverlogError::Eval(format!(
                            "internal: aggregate rule `{}` evaluated as plain rule",
                            rule.label
                        )))
                    }
                }
            }
            out.push(Arc::new(row));
        }
        // Emission order follows the delta's arrival order (the outermost
        // ready dimension): within-tick key overwrites keep last-writer-wins
        // along the event stream. Inner join dimensions come from hash-map
        // lookups, so their relative order carries no semantics with or
        // without planner reordering.
        Ok((out, sup.into_supports()))
    }

    /// Is `variant` currently executed through its compiled kernel?
    /// Callers use this to attribute `RuleStats::kernel_evals`.
    fn kernel_active(&self, variant: &Variant) -> bool {
        variant.kernel.is_some() && self.plan.options.kernels && !self.prov_on
    }

    /// Evaluate a compiled kernel: the monomorphic twin of
    /// [`Self::eval_variant`]'s interpreted walk. Candidate selection,
    /// recheck exemption and emission order mirror the interpreter
    /// exactly; the wins are no per-row environment writes, direct
    /// column addressing, and `i64`-keyed join probes where column
    /// types allow ([`crate::table::Table::lookup_int`]).
    fn eval_kernel(
        &self,
        kernel: &Kernel,
        delta_rows: Option<&[Row]>,
        scratch: &mut EvalScratch,
    ) -> Result<Vec<Row>> {
        let EvalScratch {
            probe_vals,
            int_vals,
            kregs,
            ..
        } = scratch;
        kregs.clear();
        kregs.resize(kernel.regs, Value::Null);
        // The level stack borrows candidate rows straight out of the
        // tables (and the delta slice): one small allocation per kernel
        // evaluation instead of an `Arc` clone per scanned row.
        let mut klevels: Vec<&Row> = Vec::with_capacity(kernel.ops.len());
        let mut out = Vec::new();
        self.exec_kops(
            kernel,
            0,
            delta_rows,
            &mut klevels,
            kregs,
            &mut out,
            probe_vals,
            int_vals,
        )?;
        Ok(out)
    }

    /// Recursive nested-loop execution of a kernel's op sequence — the
    /// compiled mirror of [`Self::exec_ops`]. `levels` is the
    /// candidate-row stack (one row per scan depth); `regs` the
    /// assignment registers.
    #[allow(clippy::too_many_arguments)]
    fn exec_kops<'a>(
        &'a self,
        kernel: &Kernel,
        oi: usize,
        delta_rows: Option<&'a [Row]>,
        levels: &mut Vec<&'a Row>,
        regs: &mut Vec<Value>,
        out: &mut Vec<Row>,
        probe_vals: &mut Vec<Value>,
        int_vals: &mut Vec<i64>,
    ) -> Result<()> {
        if oi == kernel.ops.len() {
            let mut row = Vec::with_capacity(kernel.head.len());
            for e in &kernel.head {
                row.push(keval(e, levels, regs)?);
            }
            out.push(Arc::new(row));
            return Ok(());
        }
        match &kernel.ops[oi] {
            KOp::Assign(r, e) => {
                regs[*r] = keval(e, levels, regs)?;
                self.exec_kops(
                    kernel,
                    oi + 1,
                    delta_rows,
                    levels,
                    regs,
                    out,
                    probe_vals,
                    int_vals,
                )
            }
            KOp::Filter(e) => {
                if ktruthy(e, levels, regs)? {
                    self.exec_kops(
                        kernel,
                        oi + 1,
                        delta_rows,
                        levels,
                        regs,
                        out,
                        probe_vals,
                        int_vals,
                    )?;
                }
                Ok(())
            }
            KOp::NegScan {
                tid,
                arity,
                index_cols,
                probes,
                int_probe,
                const_checks,
                checks,
            } => {
                let (cands, exact) = self.kcandidates(
                    *tid, index_cols, probes, *int_probe, levels, regs, probe_vals, int_vals,
                )?;
                'rows: for row in cands {
                    if row.len() != *arity {
                        continue;
                    }
                    for (i, v) in const_checks {
                        if row[*i] != *v {
                            continue 'rows;
                        }
                    }
                    for ch in checks {
                        if exact && ch.indexed {
                            continue;
                        }
                        if !kcheck(ch, row, levels, regs)? {
                            continue 'rows;
                        }
                    }
                    // A match refutes the negation: prune this path.
                    return Ok(());
                }
                self.exec_kops(
                    kernel,
                    oi + 1,
                    delta_rows,
                    levels,
                    regs,
                    out,
                    probe_vals,
                    int_vals,
                )
            }
            KOp::Scan {
                tid,
                level: _,
                arity,
                is_delta,
                index_cols,
                probes,
                int_probe,
                const_checks,
                checks,
            } => {
                let use_delta = *is_delta && delta_rows.is_some();
                let (cands, exact) = if use_delta {
                    (
                        Candidates::Slice(delta_rows.expect("use_delta implies delta_rows").iter()),
                        false,
                    )
                } else {
                    self.kcandidates(
                        *tid, index_cols, probes, *int_probe, levels, regs, probe_vals, int_vals,
                    )?
                };
                // In tail position the scan emits heads inline — no
                // recursion frame per matched row on the innermost (and
                // hottest) join level.
                let tail = oi + 1 == kernel.ops.len();
                'rows: for row in cands {
                    if row.len() != *arity {
                        continue;
                    }
                    for (i, v) in const_checks {
                        if row[*i] != *v {
                            continue 'rows;
                        }
                    }
                    // Stack the row, then check: duplicate-variable
                    // patterns reference same-row columns (the
                    // interpreter binds before checking for the same
                    // reason).
                    levels.push(row);
                    let mut ok = true;
                    for ch in checks {
                        if exact && ch.indexed {
                            continue;
                        }
                        if !kcheck(ch, row, levels, regs)? {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        if tail {
                            let mut hrow = Vec::with_capacity(kernel.head.len());
                            for e in &kernel.head {
                                hrow.push(keval(e, levels, regs)?);
                            }
                            out.push(Arc::new(hrow));
                        } else {
                            self.exec_kops(
                                kernel,
                                oi + 1,
                                delta_rows,
                                levels,
                                regs,
                                out,
                                probe_vals,
                                int_vals,
                            )?;
                        }
                    }
                    levels.pop();
                }
                Ok(())
            }
        }
    }

    /// Candidate rows for a kernel scan — [`Self::candidates`] with the
    /// typed fast path in front: when every probed column is declared
    /// `int` *and* every runtime probe value is an `int`, the lookup
    /// hashes raw `i64`s through the typed twin index. The typed bucket
    /// holds the same rows in the same order as the generic one (see
    /// [`Table::ensure_int_index`]), and int columns never coerce, so
    /// the bucket is recheck-exempt exactly when the generic path's
    /// would be.
    #[allow(clippy::too_many_arguments)]
    fn kcandidates(
        &self,
        tid: TableId,
        index_cols: &[usize],
        probes: &[KExpr],
        int_probe: bool,
        levels: &[&Row],
        regs: &[Value],
        probe_vals: &mut Vec<Value>,
        int_vals: &mut Vec<i64>,
    ) -> Result<(Candidates<'_>, bool)> {
        let t = &self.tables[tid.idx()];
        if index_cols.is_empty() {
            return Ok((t.all_candidates(), false));
        }
        probe_vals.clear();
        if let [KExpr::Operand(op)] = probes {
            // Single-operand probe — the dominant join shape. Resolve by
            // borrow and hash the raw `i64` straight into the typed
            // single-column index: no `Value` clone, no probe-tuple
            // staging.
            let v = kresolve(op, levels, regs);
            if int_probe {
                if let Value::Int(k) = v {
                    int_vals.clear();
                    int_vals.push(*k);
                    if let Some(bucket) = t.lookup_int(index_cols, int_vals) {
                        return Ok((Candidates::Slice(bucket.iter()), true));
                    }
                }
            }
            probe_vals.push(v.clone());
        } else {
            for p in probes {
                probe_vals.push(keval(p, levels, regs)?);
            }
            if int_probe && probe_vals.iter().all(|v| matches!(v, Value::Int(_))) {
                int_vals.clear();
                int_vals.extend(probe_vals.iter().filter_map(Value::as_int));
                if let Some(bucket) = t.lookup_int(index_cols, int_vals) {
                    return Ok((Candidates::Slice(bucket.iter()), true));
                }
            }
        }
        // Fallback lattice, middle rung: a non-int runtime value (or a
        // missing typed index) probes the generic `Value`-keyed index,
        // identically to the interpreter.
        let coerced = t.coerce_probe(index_cols, probe_vals);
        let (cands, bucket) = t.candidates(index_cols, probe_vals);
        Ok((cands, bucket && !coerced))
    }

    /// Evaluate a shard-safe variant by splitting the delta slice into
    /// contiguous ranges over `nshards` worker threads (see
    /// [`crate::analysis::shard`]).
    ///
    /// The shard-safety pass certifies that the variant's per-delta-row
    /// evaluations are independent (co-partitioned on the head key, or
    /// closed under broadcasting the small probe relations) — which means
    /// *any* assignment of delta rows to workers produces the same row
    /// set. The shared-memory runtime picks the assignment that costs
    /// nothing to undo: contiguous delta ranges, one [`Self::eval_variant`]
    /// call per worker, concatenated back in range order. Because the
    /// planner always schedules the delta scan outermost, serial
    /// evaluation emits rows in delta-arrival order, so the concatenation
    /// is byte-identical to the serial output at every shard count — and
    /// dispatch (which stays serial; within-tick key overwrites are
    /// last-writer-wins along that order) sees the same row sequence. A
    /// distributed deployment would hash-partition on the verdict's key
    /// instead; the verdict is what certifies both placements.
    fn eval_variant_sharded(
        &self,
        rule: &CompiledRule,
        variant: &Variant,
        delta: &[Row],
        nshards: usize,
    ) -> Result<(Vec<Row>, Vec<ShardStats>)> {
        let chunk = delta.len().div_ceil(nshards);
        let eval_chunk = |slice: &[Row]| {
            let t0 = std::time::Instant::now();
            let mut scratch = EvalScratch::default();
            let res = self
                .eval_variant(rule, variant, Some(slice), &mut scratch)
                .map(|(rows, _)| rows);
            (res, slice.len(), t0.elapsed().as_nanos() as u64)
        };
        // Shard 0 runs on the calling thread, overlapping the spawned
        // workers — one fewer thread spawn per call, which is most of the
        // fan-out overhead at small deltas.
        let results: Vec<(Result<Vec<Row>>, usize, u64)> = std::thread::scope(|scope| {
            let mut chunks = delta.chunks(chunk);
            let first = chunks.next().expect("delta is non-empty");
            let handles: Vec<_> = chunks
                .map(|slice| scope.spawn(move || eval_chunk(slice)))
                .collect();
            let mut out = vec![eval_chunk(first)];
            out.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked")),
            );
            out
        });
        // Errors surface in range order so failure reporting is stable.
        let mut stats = vec![ShardStats::default(); nshards];
        let mut rows = Vec::new();
        for (si, (res, delta_in, ns)) in results.into_iter().enumerate() {
            let mut r = res?;
            stats[si].delta_in += delta_in as u64;
            stats[si].rows_out += r.len() as u64;
            stats[si].eval_ns += ns;
            rows.append(&mut r);
        }
        Ok((rows, stats))
    }

    /// Recursive nested-loop execution of a scheduled op sequence.
    /// `probe_vals` is a shared probe-key scratch buffer: every index
    /// probe refills it in place instead of allocating a fresh `Vec`.
    #[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
    fn exec_ops(
        &self,
        rule: &CompiledRule,
        ops: &[Op],
        oi: usize,
        delta_pred: Option<usize>,
        delta_rows: Option<&[Row]>,
        env: &mut Vec<Option<Value>>,
        out: &mut Vec<Vec<Option<Value>>>,
        sup: &mut SupportSink,
        probe_vals: &mut Vec<Value>,
    ) -> Result<()> {
        if oi == ops.len() {
            out.push(env.clone());
            if sup.enabled {
                sup.out.push(sup.cur.clone());
            }
            return Ok(());
        }
        match &ops[oi] {
            Op::Assign(slot, e) => {
                let v = eval_cexpr(e, env, &self.builtins)?;
                let prev = env[*slot].replace(v);
                self.exec_ops(
                    rule,
                    ops,
                    oi + 1,
                    delta_pred,
                    delta_rows,
                    env,
                    out,
                    sup,
                    probe_vals,
                )?;
                env[*slot] = prev;
                Ok(())
            }
            Op::Filter(e) => {
                if eval_cexpr(e, env, &self.builtins)?.truthy() {
                    self.exec_ops(
                        rule,
                        ops,
                        oi + 1,
                        delta_pred,
                        delta_rows,
                        env,
                        out,
                        sup,
                        probe_vals,
                    )?;
                }
                Ok(())
            }
            Op::NegScan {
                tid,
                pats,
                index_cols,
                const_checks,
            } => {
                let matched = self.probe(*tid, index_cols, pats, const_checks, env, probe_vals)?;
                if !matched {
                    self.exec_ops(
                        rule,
                        ops,
                        oi + 1,
                        delta_pred,
                        delta_rows,
                        env,
                        out,
                        sup,
                        probe_vals,
                    )?;
                }
                Ok(())
            }
            Op::Scan {
                tid,
                pred_idx,
                pats,
                index_cols,
                bind_slots,
                const_checks,
            } => {
                let use_delta = delta_pred == Some(*pred_idx) && delta_rows.is_some();
                // Candidates are borrowed — a delta slice, an index bucket,
                // or the full table — never cloned into a scratch vector.
                // `exact` marks rows proven equal to the probe key on every
                // indexed column, whose checks can therefore be skipped.
                let (candidates, exact) = if use_delta {
                    (
                        Candidates::Slice(delta_rows.expect("use_delta implies delta_rows").iter()),
                        false,
                    )
                } else {
                    self.candidates(*tid, index_cols, pats, env, probe_vals)?
                };
                'rows: for row in candidates {
                    if row.len() != pats.len() {
                        continue;
                    }
                    // Literal checks first: reject a non-matching row with
                    // direct comparisons before touching the environment
                    // (comparing the literal equals evaluating its `Lit`).
                    for (i, v) in const_checks {
                        if row[*i] != *v {
                            continue 'rows;
                        }
                    }
                    // Bind, then check (duplicate-variable patterns
                    // reference same-row binds).
                    for (val, pat) in row.iter().zip(pats) {
                        if let Pat::Bind(slot) = pat {
                            env[*slot] = Some(val.clone());
                        }
                    }
                    let mut ok = true;
                    for (i, (val, pat)) in row.iter().zip(pats).enumerate() {
                        if let Pat::Check(e) = pat {
                            if matches!(e, CExpr::Lit(_)) || (exact && index_cols.contains(&i)) {
                                continue;
                            }
                            if eval_cexpr(e, env, &self.builtins)? != *val {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        if sup.enabled {
                            sup.cur.push((self.ids.name(*tid).to_string(), row.clone()));
                        }
                        self.exec_ops(
                            rule,
                            ops,
                            oi + 1,
                            delta_pred,
                            delta_rows,
                            env,
                            out,
                            sup,
                            probe_vals,
                        )?;
                        if sup.enabled {
                            sup.cur.pop();
                        }
                    }
                    for s in bind_slots {
                        env[*s] = None;
                    }
                }
                Ok(())
            }
        }
    }

    /// Candidate rows for a scan: the prebuilt index over the plan's
    /// statically-bound check columns, or a full scan when there are none.
    /// The flag is true when the rows are an exact-match index bucket for
    /// an *uncoerced* probe — every indexed column of every returned row
    /// is already known equal to its check expression, so the caller can
    /// skip rechecking those columns. A coerced probe (`Str` widened to
    /// `Addr`) is excluded: the recheck compares the uncoerced value and
    /// is the binding semantics.
    fn candidates(
        &self,
        tid: TableId,
        index_cols: &[usize],
        pats: &[Pat],
        env: &[Option<Value>],
        vals: &mut Vec<Value>,
    ) -> Result<(Candidates<'_>, bool)> {
        let t = &self.tables[tid.idx()];
        if index_cols.is_empty() {
            return Ok((t.all_candidates(), false));
        }
        vals.clear();
        for &i in index_cols {
            let Pat::Check(e) = &pats[i] else {
                return Err(OverlogError::Eval(
                    "internal: index column is not a check pattern".into(),
                ));
            };
            vals.push(eval_cexpr(e, env, &self.builtins)?);
        }
        let coerced = t.coerce_probe(index_cols, vals);
        let (cands, bucket) = t.candidates(index_cols, vals);
        Ok((cands, bucket && !coerced))
    }

    /// Does any row match the (fully-bound) patterns?
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        tid: TableId,
        index_cols: &[usize],
        pats: &[Pat],
        const_checks: &[(usize, Value)],
        env: &[Option<Value>],
        vals: &mut Vec<Value>,
    ) -> Result<bool> {
        let (rows, exact) = self.candidates(tid, index_cols, pats, env, vals)?;
        'row: for row in rows {
            if row.len() != pats.len() {
                continue;
            }
            for (i, v) in const_checks {
                if row[*i] != *v {
                    continue 'row;
                }
            }
            for (i, (val, pat)) in row.iter().zip(pats).enumerate() {
                match pat {
                    Pat::Wild => {}
                    Pat::Check(e) => {
                        if matches!(e, CExpr::Lit(_)) || (exact && index_cols.contains(&i)) {
                            continue;
                        }
                        if eval_cexpr(e, env, &self.builtins)? != *val {
                            continue 'row;
                        }
                    }
                    Pat::Bind(_) => {
                        return Err(OverlogError::Eval(
                            "internal: bind pattern in negated scan".into(),
                        ))
                    }
                }
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Full recomputation of an aggregate rule: evaluate the body, group,
    /// fold, and key-overwrite the head table.
    fn eval_aggregate(&mut self, rule: &CompiledRule, ctx: &mut TickCtx) -> Result<()> {
        let t0 = std::time::Instant::now();
        let variant = &rule.variants[0];
        let mut envs: Vec<Vec<Option<Value>>> = Vec::new();
        let EvalScratch {
            env, probe_vals, ..
        } = &mut ctx.eval;
        env.clear();
        env.resize(rule.nslots, None);
        // Aggregate provenance records empty inputs: the support of a fold
        // is the whole group, not a single join path.
        let mut sup = SupportSink::new(false);
        self.exec_ops(
            rule,
            &variant.ops,
            0,
            None,
            None,
            env,
            &mut envs,
            &mut sup,
            probe_vals,
        )?;
        let rows: Vec<Row> = self
            .fold_groups(rule, &envs)?
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        self.rule_stats[rule.id].eval_ns += t0.elapsed().as_nanos() as u64;
        self.dispatch(rule, rows, None, ctx)
    }

    /// Scoped aggregate evaluation: run the body with `anchor_rows` as the
    /// delta of the variant's anchor predicate (the remaining predicates
    /// join against live tables) and fold the resulting groups.
    fn eval_aggregate_scoped(
        &self,
        rule: &CompiledRule,
        variant: &Variant,
        anchor_rows: &[Row],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<(Vec<Value>, Row)>> {
        let mut envs: Vec<Vec<Option<Value>>> = Vec::new();
        let EvalScratch {
            env, probe_vals, ..
        } = scratch;
        env.clear();
        env.resize(rule.nslots, None);
        let mut sup = SupportSink::new(false);
        self.exec_ops(
            rule,
            &variant.ops,
            0,
            variant.delta_pred,
            Some(anchor_rows),
            env,
            &mut envs,
            &mut sup,
            probe_vals,
        )?;
        self.fold_groups(rule, &envs)
    }

    /// Group and fold an aggregate rule's body environments into
    /// `(group key, head row)` pairs, sorted by group key for
    /// deterministic emission. The group key is the tuple of non-aggregate
    /// head columns, in head order.
    fn fold_groups(
        &self,
        rule: &CompiledRule,
        envs: &[Vec<Option<Value>>],
    ) -> Result<Vec<(Vec<Value>, Row)>> {
        #[derive(Clone)]
        enum Acc {
            Count(i64),
            Sum(Value),
            Min(Value),
            Max(Value),
            Avg(f64, i64),
            Set(std::collections::BTreeSet<Value>),
        }
        let mut groups: FxHashMap<Vec<Value>, Vec<Acc>> = FxHashMap::default();
        for env in envs {
            let mut key = Vec::new();
            for arg in &rule.head_args {
                if let CHeadArg::Expr(e) = arg {
                    key.push(eval_cexpr(e, env, &self.builtins)?);
                }
            }
            let accs = groups.entry(key).or_insert_with(|| {
                rule.head_args
                    .iter()
                    .filter_map(|a| match a {
                        CHeadArg::Agg(k, _) => Some(match k {
                            AggKind::Count => Acc::Count(0),
                            AggKind::Sum => Acc::Sum(Value::Int(0)),
                            AggKind::Min => Acc::Min(Value::Null),
                            AggKind::Max => Acc::Max(Value::Null),
                            AggKind::Avg => Acc::Avg(0.0, 0),
                            AggKind::Set => Acc::Set(Default::default()),
                        }),
                        CHeadArg::Expr(_) => None,
                    })
                    .collect()
            });
            let mut ai = 0usize;
            for arg in &rule.head_args {
                if let CHeadArg::Agg(kind, slot) = arg {
                    let input = match slot {
                        Some(s) => env[*s].clone().ok_or_else(|| {
                            OverlogError::Eval(format!(
                                "aggregate input unbound in `{}`",
                                rule.label
                            ))
                        })?,
                        None => Value::Int(1),
                    };
                    match (&mut accs[ai], kind) {
                        (Acc::Count(c), AggKind::Count) => *c += 1,
                        (Acc::Sum(s), AggKind::Sum) => {
                            *s = add_values(s, &input)?;
                        }
                        (Acc::Min(mv), AggKind::Min) => {
                            if *mv == Value::Null || input < *mv {
                                *mv = input;
                            }
                        }
                        (Acc::Max(mv), AggKind::Max) => {
                            if *mv == Value::Null || input > *mv {
                                *mv = input;
                            }
                        }
                        (Acc::Set(set), AggKind::Set) => {
                            set.insert(input);
                        }
                        (Acc::Avg(sum, n), AggKind::Avg) => {
                            *sum += input.as_float().ok_or_else(|| {
                                OverlogError::Eval("avg over non-numeric value".into())
                            })?;
                            *n += 1;
                        }
                        _ => unreachable!("accumulator kinds align with head args"),
                    }
                    ai += 1;
                }
            }
        }
        // Deterministic emission order.
        let mut keys: Vec<Vec<Value>> = groups.keys().cloned().collect();
        keys.sort();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let accs = &groups[&key];
            let mut row = Vec::with_capacity(rule.head_args.len());
            let (mut ki, mut ai) = (0usize, 0usize);
            for arg in &rule.head_args {
                match arg {
                    CHeadArg::Expr(_) => {
                        row.push(key[ki].clone());
                        ki += 1;
                    }
                    CHeadArg::Agg(_, _) => {
                        row.push(match &accs[ai] {
                            Acc::Count(c) => Value::Int(*c),
                            Acc::Sum(s) => s.clone(),
                            Acc::Min(v) | Acc::Max(v) => v.clone(),
                            Acc::Avg(sum, n) => {
                                if *n == 0 {
                                    Value::Null
                                } else {
                                    Value::Float(sum / *n as f64)
                                }
                            }
                            Acc::Set(set) => Value::list(set.iter().cloned().collect()),
                        });
                        ai += 1;
                    }
                }
            }
            out.push((key, Arc::new(row)));
        }
        Ok(out)
    }

    /// Which view tables must be rebuilt, given the inputs that shrank
    /// (deletions, key-overwrites) and the negated inputs that grew.
    /// With scoping disabled this is all-or-nothing, the pre-analysis
    /// behavior; with scoping on, only views whose transitive dependency
    /// closure intersects the dirty set are affected — and growth skips
    /// the CALM-certified monotonic views entirely, because insertions
    /// were already propagated incrementally by the delta path.
    fn affected_views(&self, shrink: &IdSet, grow: &IdSet) -> IdSet {
        if shrink.is_empty() && grow.is_empty() {
            return IdSet::new();
        }
        if !self.plan.options.scoped_views {
            return self.plan.view_tables.clone();
        }
        let mut out = IdSet::new();
        for (&v, deps) in &self.plan.view_deps {
            let shrunk = shrink.contains(v) || deps.intersects(shrink);
            let grown = !self.plan.monotonic_views.contains(v)
                && (grow.contains(v) || deps.intersects(grow));
            if shrunk || grown {
                out.insert(v);
            }
        }
        out
    }

    /// Clear the `affected` view tables and re-derive them, treating every
    /// other materialized table (bases *and* unaffected views) as stable
    /// seed state. Uses the same cursor-over-log delta representation as
    /// `tick`, local to this call.
    fn recompute_views(&mut self, affected: &IdSet, ctx: &mut TickCtx) -> Result<()> {
        self.eval_stats.view_recomputes += 1;
        // A from-scratch rebuild severs the delta lineage the Counting
        // support counts were accumulated along; drop them (the next
        // maintenance round rebuilds the map from the rebuilt state).
        if !self.maint_support.is_empty() {
            for v in affected.iter() {
                self.maint_support.remove(&v);
            }
        }
        // Tapped views are about to be cleared and rebuilt wholesale;
        // snapshot them so the rebuild can be reported to subscribers as
        // an exact retract/insert diff (cost is bounded by the recompute
        // that is happening anyway).
        let tap_before: Vec<(TableId, Vec<Row>)> = if self.tap_ids.intersects(affected) {
            affected
                .iter()
                .filter(|v| self.tap_ids.contains(*v))
                .map(|v| (v, self.tables[v.idx()].sorted_rows()))
                .collect()
        } else {
            Vec::new()
        };
        for v in affected.iter() {
            self.tables[v.idx()].clear();
        }
        self.tap_suspended = !tap_before.is_empty();
        let res = self.rebuild_affected_views(affected, ctx);
        self.tap_suspended = false;
        res?;
        // Emit the rebuild diff for tapped views: rows that vanished are
        // retractions, rows that appeared are inserts (sorted merge over
        // the before/after snapshots).
        for (tid, before) in tap_before {
            let after = self.tables[tid.idx()].sorted_rows();
            let (tick, now) = (self.tick_count, self.now);
            let (mut i, mut j) = (0usize, 0usize);
            while i < before.len() || j < after.len() {
                match (before.get(i), after.get(j)) {
                    (Some(b), Some(a)) if b == a => {
                        i += 1;
                        j += 1;
                    }
                    (Some(b), Some(a)) if b < a => {
                        self.tap_log
                            .push((tid, b.clone(), CommitOp::Delete, tick, now));
                        i += 1;
                    }
                    (Some(_), Some(a)) => {
                        self.tap_log
                            .push((tid, a.clone(), CommitOp::Insert, tick, now));
                        j += 1;
                    }
                    (Some(b), None) => {
                        self.tap_log
                            .push((tid, b.clone(), CommitOp::Delete, tick, now));
                        i += 1;
                    }
                    (None, Some(a)) => {
                        self.tap_log
                            .push((tid, a.clone(), CommitOp::Insert, tick, now));
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
        }
        Ok(())
    }

    /// The rebuild loop of [`Self::recompute_views`], split out so tap
    /// suspension brackets every exit path (including `?` errors).
    fn rebuild_affected_views(&mut self, affected: &IdSet, ctx: &mut TickCtx) -> Result<()> {
        let plan = Arc::clone(&self.plan);
        let ntables = self.tables.len();
        // Seed: full contents of every materialized table that is not
        // being rebuilt *and* is actually consumed by an affected rule's
        // positive body. Negated bodies and aggregate inputs read the live
        // tables directly, so they need no seed rows; everything else is
        // dead weight in the delta logs.
        let mut needed = IdSet::new();
        for rule in plan.rules.iter() {
            if rule.is_view && !rule.aggregate && affected.contains(rule.head_tid) {
                for t in &rule.positive_tids {
                    needed.insert(*t);
                }
            }
        }
        let mut added: Vec<Vec<Row>> = vec![Vec::new(); ntables];
        let mut cursor = vec![0usize; ntables];
        let mut hi = vec![0usize; ntables];
        for (i, t) in self.tables.iter().enumerate() {
            let tid = TableId(i as u32);
            if t.is_event() || affected.contains(tid) || !needed.contains(tid) {
                continue;
            }
            added[i].extend(t.scan().cloned());
        }
        for stratum in &plan.strata {
            for &rid in stratum {
                let rule = &plan.rules[rid];
                if rule.is_view && rule.aggregate && affected.contains(rule.head_tid) {
                    // Recompute into the cleared table.
                    self.eval_agg_into(rule, &mut added, ctx)?;
                }
            }
            // Reseed each stratum with the cumulative log, as in `tick`.
            cursor.iter_mut().for_each(|c| *c = 0);
            loop {
                let mut any = false;
                for t in 0..ntables {
                    hi[t] = added[t].len();
                    any |= cursor[t] < hi[t];
                }
                if !any {
                    break;
                }
                for &rid in stratum {
                    let rule = &plan.rules[rid];
                    if !rule.is_view || rule.aggregate || !affected.contains(rule.head_tid) {
                        continue;
                    }
                    for variant in &rule.variants {
                        let Some(d) = variant.delta_pred else {
                            continue;
                        };
                        let dt = rule.positive_tids[d].idx();
                        let (lo, h) = (cursor[dt], hi[dt]);
                        if lo == h {
                            continue;
                        }
                        let (rows, sups) = self.eval_variant(
                            rule,
                            variant,
                            Some(&added[dt][lo..h]),
                            &mut ctx.eval,
                        )?;
                        for (i, row) in rows.into_iter().enumerate() {
                            ctx.derivations += 1;
                            if ctx.derivations > self.budget {
                                return Err(OverlogError::Eval(
                                    "derivation budget exceeded during view recomputation".into(),
                                ));
                            }
                            match self.tables[rule.head_tid.idx()].insert(row.clone())? {
                                InsertOutcome::New | InsertOutcome::Replaced(_) => {
                                    let inputs: &[(String, Row)] = sups
                                        .as_ref()
                                        .and_then(|s| s.get(i))
                                        .map(|v| v.as_slice())
                                        .unwrap_or(&[]);
                                    self.record_prov(rule, &row, inputs);
                                    added[rule.head_tid.idx()].push(row);
                                }
                                InsertOutcome::Duplicate => {}
                            }
                        }
                    }
                }
                cursor.copy_from_slice(&hi);
            }
        }
        Ok(())
    }

    /// Aggregate recomputation used inside `recompute_views`.
    fn eval_agg_into(
        &mut self,
        rule: &CompiledRule,
        added: &mut [Vec<Row>],
        ctx: &mut TickCtx,
    ) -> Result<()> {
        // Reuse eval_aggregate but capture its insertions via the pooled
        // sub-context (a fresh `TickCtx` per recompute would re-allocate
        // every per-table buffer each time a view aggregate rebuilds).
        let mut sub = std::mem::take(&mut self.agg_scratch);
        sub.reset(self.tables.len());
        self.eval_aggregate(rule, &mut sub)?;
        ctx.derivations += sub.derivations;
        for (i, rows) in sub.added.iter_mut().enumerate() {
            added[i].append(rows);
        }
        self.agg_scratch = sub;
        Ok(())
    }

    ///////////////////////////////////////////////////////////////////////
    // Incremental view maintenance (analysis-driven; strategies certified
    // by `crate::analysis::maint`, threaded through `Plan::maint`).
    ///////////////////////////////////////////////////////////////////////

    /// The maintenance replacement for [`Self::recompute_views`]: update
    /// each affected view in place from its inputs' per-tick delta logs
    /// where the analysis certified a strategy, and recompute the rest in
    /// one batch. Falling back never changes results — a maintained view
    /// and a recomputed view hold byte-identical rows — only cost.
    ///
    /// `final_drain` marks the end-of-tick call, which runs even with an
    /// empty affected set: Counting views must consume their sources'
    /// insert logs every tick to keep support counts complete.
    fn update_views(
        &mut self,
        affected: &IdSet,
        ctx: &mut TickCtx,
        final_drain: bool,
    ) -> Result<()> {
        let plan = Arc::clone(&self.plan);
        if affected.is_empty() && !final_drain {
            return Ok(());
        }
        // Split the affected set: strategy views are ordered topologically
        // (a view reading another view updates after it, so scoped
        // re-evaluation joins against settled upstream state); the rest
        // fall back immediately.
        let mut fallback = IdSet::new();
        let mut remaining: Vec<TableId> = Vec::new();
        for v in affected.iter() {
            if plan.maint.views.contains_key(&v) {
                remaining.push(v);
            } else {
                fallback.insert(v);
            }
        }
        remaining.sort_by_key(|&v| {
            let s = plan
                .table_stratum
                .get(self.ids.name(v))
                .copied()
                .unwrap_or(0);
            (s, v.idx())
        });
        let mut ordered = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut rest = Vec::new();
            let before = ordered.len();
            for &v in &remaining {
                let deps = plan.view_deps.get(&v);
                let blocked = remaining
                    .iter()
                    .any(|&w| w != v && deps.is_some_and(|d| d.contains(w)));
                if blocked {
                    rest.push(v);
                } else {
                    ordered.push(v);
                }
            }
            if ordered.len() == before {
                // Unreachable (strategy views are acyclic — recursion
                // disqualifies a strategy), but never loop on it.
                for v in rest {
                    fallback.insert(v);
                }
                break;
            }
            remaining = rest;
        }
        let mut maintained = 0u64;
        for v in ordered {
            // A source rebuilt from scratch leaves no delta lineage to
            // consume: views downstream of a fallback fall back with it.
            if plan
                .view_deps
                .get(&v)
                .is_some_and(|d| d.intersects(&fallback))
            {
                fallback.insert(v);
                continue;
            }
            let ok = match plan
                .maint
                .views
                .get(&v)
                .expect("ordered views have strategies")
            {
                ViewMaint::Counting { rules, sources } => {
                    self.maintain_counting(v, rules, sources, true, &plan, ctx)?
                }
                ViewMaint::GroupRecompute {
                    rule,
                    anchor,
                    sources,
                    key_map,
                    ..
                } => self.maintain_groups(v, *rule, anchor, sources, key_map, &plan, ctx)?,
                ViewMaint::KeyRederive { rules, sources, .. } => {
                    self.maintain_keys(v, rules, sources, &plan, ctx)?
                }
            };
            if ok {
                maintained += 1;
            } else {
                fallback.insert(v);
            }
        }
        if maintained > 0 {
            self.eval_stats.maint_rounds += 1;
            self.eval_stats.views_maintained += maintained;
        }
        if !fallback.is_empty() {
            self.recompute_views(&fallback, ctx)?;
            // The rebuild subsumed everything in the fallback views' logs:
            // advance their marks past the logs, and recount Counting
            // supports from the rebuilt state so the next round maintains.
            for v in fallback.iter() {
                match plan.maint.views.get(&v) {
                    Some(ViewMaint::Counting { rules, sources }) => {
                        self.rebuild_support(v, rules, &plan, ctx)?;
                        self.advance_marks(v, sources.iter().copied(), ctx);
                    }
                    Some(ViewMaint::GroupRecompute { sources, .. })
                    | Some(ViewMaint::KeyRederive { sources, .. }) => {
                        self.advance_marks(v, sources.iter().map(|s| s.tid), ctx);
                    }
                    None => {}
                }
            }
        }
        if final_drain {
            // Counting views not touched above still consume their insert
            // logs (support must count every derivation this tick made),
            // and deletions they were never asked to act on invalidate
            // them — the recompute engine would have left those rows stale
            // this tick, so acting here would diverge.
            for (&v, strat) in plan.maint.views.iter() {
                let ViewMaint::Counting { rules, sources } = strat else {
                    continue;
                };
                if affected.contains(v) {
                    continue;
                }
                self.maintain_counting(v, rules, sources, false, &plan, ctx)?;
            }
        }
        Ok(())
    }

    /// Maintain a Counting view: every derivation named by a source's
    /// delta log adjusts the derived row's support count by ±1; rows whose
    /// support appears are inserted, rows whose support drains to zero are
    /// deleted. With `act = false` (view not affected this round) the
    /// table is not touched — the semi-naive path already propagated the
    /// inserts — and only the counts advance.
    fn maintain_counting(
        &mut self,
        v: TableId,
        rules: &[(usize, usize)],
        sources: &[TableId],
        act: bool,
        plan: &Plan,
        ctx: &mut TickCtx,
    ) -> Result<bool> {
        let Some(mut support) = self.maint_support.remove(&v) else {
            if act {
                // Invalid counts cannot drive deletions: fall back (the
                // recompute revalidates via `rebuild_support`).
                return Ok(false);
            }
            // Invalid and idle: stay invalid, just consume the logs.
            self.advance_marks(v, sources.iter().copied(), ctx);
            return Ok(true);
        };
        if !act {
            let deleted = sources.iter().any(|&s| {
                let (_, d0) = ctx.view_marks.get(&(v, s)).copied().unwrap_or((0, 0));
                ctx.m_del[s.idx()].len() > d0
            });
            if deleted {
                // A source shrank without dirtying this view (an aggregate
                // refreshed its own groups mid-tick): the recompute engine
                // leaves the stale rows until the view is next affected,
                // so the counts can no longer be kept truthful — drop them.
                self.advance_marks(v, sources.iter().copied(), ctx);
                return Ok(true);
            }
        }
        // Insert side first: a row that gains and loses a derivation in
        // the same tick never transits zero support.
        for (&(rid, vi), &s) in rules.iter().zip(sources) {
            let (a0, _) = ctx.view_marks.get(&(v, s)).copied().unwrap_or((0, 0));
            if ctx.m_add[s.idx()].len() == a0 {
                continue;
            }
            let rule = &plan.rules[rid];
            let t0 = std::time::Instant::now();
            let (rows, sups) = self.eval_variant(
                rule,
                &rule.variants[vi],
                Some(&ctx.m_add[s.idx()][a0..]),
                &mut ctx.eval,
            )?;
            self.rule_stats[rid].maint_evals += 1;
            if self.kernel_active(&rule.variants[vi]) {
                self.rule_stats[rid].kernel_evals += 1;
            }
            self.rule_stats[rid].eval_ns += t0.elapsed().as_nanos() as u64;
            for (i, row) in rows.into_iter().enumerate() {
                *support.entry(row.clone()).or_insert(0) += 1;
                if act {
                    let inputs: &[(String, Row)] = sups
                        .as_ref()
                        .and_then(|sv| sv.get(i))
                        .map(|x| x.as_slice())
                        .unwrap_or(&[]);
                    self.maint_insert(v, rule, row, inputs, ctx)?;
                }
            }
        }
        for (&(rid, vi), &s) in rules.iter().zip(sources) {
            let (_, d0) = ctx.view_marks.get(&(v, s)).copied().unwrap_or((0, 0));
            if ctx.m_del[s.idx()].len() == d0 {
                continue;
            }
            let rule = &plan.rules[rid];
            let t0 = std::time::Instant::now();
            let (rows, _) = self.eval_variant(
                rule,
                &rule.variants[vi],
                Some(&ctx.m_del[s.idx()][d0..]),
                &mut ctx.eval,
            )?;
            self.rule_stats[rid].maint_evals += 1;
            if self.kernel_active(&rule.variants[vi]) {
                self.rule_stats[rid].kernel_evals += 1;
            }
            self.rule_stats[rid].eval_ns += t0.elapsed().as_nanos() as u64;
            for row in rows {
                let n = support.entry(row.clone()).or_insert(0);
                *n -= 1;
                if *n <= 0 {
                    support.remove(&row);
                    if self.tables[v.idx()].delete(&row) {
                        self.log_maint_delete(v, &row, ctx);
                    }
                }
            }
        }
        self.advance_marks(v, sources.iter().copied(), ctx);
        self.maint_support.insert(v, support);
        Ok(true)
    }

    /// Maintain a GroupRecompute view: re-fold exactly the groups the
    /// delta logs touched, overwriting changed group rows and deleting
    /// emptied groups' rows by primary key.
    #[allow(clippy::too_many_arguments)]
    fn maintain_groups(
        &mut self,
        v: TableId,
        rid: usize,
        anchor: &AnchorEval,
        sources: &[SourceDep],
        key_map: &[usize],
        plan: &Plan,
        ctx: &mut TickCtx,
    ) -> Result<bool> {
        let Some(keys) = self.touched_keys(v, sources, ctx) else {
            return Ok(false);
        };
        if keys.is_empty() {
            self.advance_marks(v, sources.iter().map(|s| s.tid), ctx);
            return Ok(true);
        }
        let t0 = std::time::Instant::now();
        let anchor_rows = self.collect_anchor_rows(anchor, &keys);
        let rule = &plan.rules[rid];
        let pairs = self.eval_aggregate_scoped(
            rule,
            &rule.variants[anchor.variant],
            &anchor_rows,
            &mut ctx.eval,
        )?;
        self.rule_stats[rid].maint_evals += 1;
        self.rule_stats[rid].eval_ns += t0.elapsed().as_nanos() as u64;
        let mut pi = 0usize;
        for key in &keys {
            if pairs.get(pi).is_some_and(|(k, _)| k == key) {
                let row = pairs[pi].1.clone();
                pi += 1;
                self.maint_insert(v, rule, row, &[], ctx)?;
            } else {
                // The touched group is empty now: its head row is stale.
                let pk: Vec<Value> = key_map.iter().map(|&i| key[i].clone()).collect();
                if let Some(old) = self.tables[v.idx()].delete_by_key(&pk) {
                    self.log_maint_delete(v, &old, ctx);
                }
            }
        }
        debug_assert_eq!(pi, pairs.len(), "scoped fold produced an untouched group");
        self.advance_marks(v, sources.iter().map(|s| s.tid), ctx);
        Ok(true)
    }

    /// Maintain a KeyRederive view: delete every touched key's row, then
    /// re-derive those keys rule by rule in rule order — the same
    /// key-overwrite conflict resolution a from-scratch rebuild applies.
    fn maintain_keys(
        &mut self,
        v: TableId,
        anchors: &[AnchorEval],
        sources: &[SourceDep],
        plan: &Plan,
        ctx: &mut TickCtx,
    ) -> Result<bool> {
        let Some(keys) = self.touched_keys(v, sources, ctx) else {
            return Ok(false);
        };
        if keys.is_empty() {
            self.advance_marks(v, sources.iter().map(|s| s.tid), ctx);
            return Ok(true);
        }
        for key in &keys {
            if let Some(old) = self.tables[v.idx()].delete_by_key(key) {
                self.log_maint_delete(v, &old, ctx);
            }
        }
        for a in anchors {
            let anchor_rows = self.collect_anchor_rows(a, &keys);
            if anchor_rows.is_empty() {
                continue;
            }
            let t0 = std::time::Instant::now();
            let rule = &plan.rules[a.rule];
            let (rows, sups) = self.eval_variant(
                rule,
                &rule.variants[a.variant],
                Some(&anchor_rows),
                &mut ctx.eval,
            )?;
            self.rule_stats[a.rule].maint_evals += 1;
            if self.kernel_active(&rule.variants[a.variant]) {
                self.rule_stats[a.rule].kernel_evals += 1;
            }
            self.rule_stats[a.rule].eval_ns += t0.elapsed().as_nanos() as u64;
            for (i, row) in rows.into_iter().enumerate() {
                let inputs: &[(String, Row)] = sups
                    .as_ref()
                    .and_then(|sv| sv.get(i))
                    .map(|x| x.as_slice())
                    .unwrap_or(&[]);
                self.maint_insert(v, rule, row, inputs, ctx)?;
            }
        }
        self.advance_marks(v, sources.iter().map(|s| s.tid), ctx);
        Ok(true)
    }

    /// Scoped stratum-entry evaluation of a certified aggregate view: fold
    /// only the groups this tick's delta logs touched and dispatch them
    /// exactly as the full evaluation would. Unchanged groups dispatch as
    /// duplicates in the full path too, so restricting to touched groups
    /// is invisible; emptied groups emit nothing in both paths (their
    /// stale rows fall to the end-of-tick maintenance pass). Returns
    /// `false` when the rule is not certified or a dirty source cannot
    /// name its groups — the caller runs the full evaluation.
    fn scoped_aggregate(&mut self, rule: &CompiledRule, ctx: &mut TickCtx) -> Result<bool> {
        let plan = Arc::clone(&self.plan);
        if !plan.options.maintenance || !rule.is_view {
            return Ok(false);
        }
        let Some(ViewMaint::GroupRecompute {
            rule: rid,
            anchor,
            sources,
            ..
        }) = plan.maint.views.get(&rule.head_tid)
        else {
            return Ok(false);
        };
        if *rid != rule.id {
            return Ok(false);
        }
        // Read from the consumption marks without advancing them: the
        // end-of-tick pass re-folds anything consumed here (idempotent —
        // the values cannot change between stratum entry and commit
        // without dirtying the source logs again).
        let Some(keys) = self.touched_keys(rule.head_tid, sources, ctx) else {
            return Ok(false);
        };
        if keys.is_empty() {
            return Ok(true);
        }
        let t0 = std::time::Instant::now();
        let anchor_rows = self.collect_anchor_rows(anchor, &keys);
        let pairs = self.eval_aggregate_scoped(
            rule,
            &rule.variants[anchor.variant],
            &anchor_rows,
            &mut ctx.eval,
        )?;
        let rows: Vec<Row> = pairs.into_iter().map(|(_, r)| r).collect();
        self.rule_stats[rule.id].maint_evals += 1;
        self.dispatch(rule, rows, None, ctx)?;
        self.rule_stats[rule.id].eval_ns += t0.elapsed().as_nanos() as u64;
        Ok(true)
    }

    /// The set of view keys (or group keys) named by the unconsumed delta
    /// log entries of `sources`, or `None` when some dirty source cannot
    /// name them (`binds` is `None`) — the caller falls back.
    fn touched_keys(
        &self,
        v: TableId,
        sources: &[SourceDep],
        ctx: &TickCtx,
    ) -> Option<std::collections::BTreeSet<Vec<Value>>> {
        let mut keys = std::collections::BTreeSet::new();
        for dep in sources {
            let (a0, d0) = ctx.view_marks.get(&(v, dep.tid)).copied().unwrap_or((0, 0));
            let adds = &ctx.m_add[dep.tid.idx()][a0..];
            let dels = &ctx.m_del[dep.tid.idx()][d0..];
            if adds.is_empty() && dels.is_empty() {
                continue;
            }
            let binds = dep.binds.as_ref()?;
            for row in adds.iter().chain(dels.iter()) {
                keys.insert(
                    binds
                        .iter()
                        .map(|b| match b {
                            Bind::Col(c) => row[*c].clone(),
                            Bind::Const(val) => val.clone(),
                        })
                        .collect::<Vec<Value>>(),
                );
            }
        }
        Some(keys)
    }

    /// Gather the anchor-table rows whose key projection lands in `keys`
    /// (they become the scoped re-evaluation's delta). `Col` binds form an
    /// index probe; `Const` binds filter keys the rule can never derive.
    /// Distinct keys probe disjoint rows, so the result has no duplicates.
    fn collect_anchor_rows(
        &mut self,
        anchor: &AnchorEval,
        keys: &std::collections::BTreeSet<Vec<Value>>,
    ) -> Vec<Row> {
        let cols: Vec<usize> = anchor
            .binds
            .iter()
            .filter_map(|b| match b {
                Bind::Col(c) => Some(*c),
                Bind::Const(_) => None,
            })
            .collect();
        let mut out = Vec::new();
        if cols.is_empty() {
            // Fully constant projection: the rule derives exactly one key;
            // if it is touched, every anchor row re-derives it.
            let want: Vec<Value> = anchor
                .binds
                .iter()
                .map(|b| match b {
                    Bind::Const(val) => val.clone(),
                    Bind::Col(_) => unreachable!("cols is empty"),
                })
                .collect();
            if keys.contains(&want) {
                out.extend(self.tables[anchor.tid.idx()].scan().cloned());
            }
            return out;
        }
        self.tables[anchor.tid.idx()].ensure_index(&cols);
        let mut vals: Vec<Value> = Vec::with_capacity(cols.len());
        'keys: for key in keys {
            vals.clear();
            for (b, kv) in anchor.binds.iter().zip(key) {
                match b {
                    Bind::Const(val) => {
                        if val != kv {
                            continue 'keys;
                        }
                    }
                    Bind::Col(_) => vals.push(kv.clone()),
                }
            }
            if let Some(rows) = self.tables[anchor.tid.idx()].lookup(&cols, &vals) {
                out.extend(rows.iter().cloned());
            }
        }
        out
    }

    /// Recount a Counting view's support from the current source tables
    /// (used right after a fallback recompute revalidated its contents).
    fn rebuild_support(
        &mut self,
        v: TableId,
        rules: &[(usize, usize)],
        plan: &Plan,
        ctx: &mut TickCtx,
    ) -> Result<()> {
        let mut support: FxHashMap<Row, i64> = FxHashMap::default();
        for &(rid, vi) in rules {
            let rule = &plan.rules[rid];
            let src = rule.positive_tids[0];
            let all: Vec<Row> = self.tables[src.idx()].scan().cloned().collect();
            if all.is_empty() {
                continue;
            }
            let (rows, _) =
                self.eval_variant(rule, &rule.variants[vi], Some(&all), &mut ctx.eval)?;
            for row in rows {
                *support.entry(row).or_insert(0) += 1;
            }
        }
        self.maint_support.insert(v, support);
        Ok(())
    }

    /// Mark every `(view, source)` delta-log pair fully consumed.
    fn advance_marks(&self, v: TableId, sources: impl Iterator<Item = TableId>, ctx: &mut TickCtx) {
        for s in sources {
            ctx.view_marks
                .insert((v, s), (ctx.m_add[s.idx()].len(), ctx.m_del[s.idx()].len()));
        }
    }

    /// Direct insert into a maintained view, mirroring the rebuild path's
    /// semantics (no semi-naive delta log, no coercion, no WAL — views are
    /// never durable) plus incremental tap records and the view's own
    /// delta log for downstream maintained views.
    fn maint_insert(
        &mut self,
        v: TableId,
        rule: &CompiledRule,
        row: Row,
        inputs: &[(String, Row)],
        ctx: &mut TickCtx,
    ) -> Result<()> {
        ctx.derivations += 1;
        if ctx.derivations > self.budget {
            return Err(OverlogError::Eval(
                "derivation budget exceeded during view maintenance".into(),
            ));
        }
        match self.tables[v.idx()].insert(row.clone())? {
            InsertOutcome::New => {
                self.record_prov(rule, &row, inputs);
                self.record_trace(v, &row, TraceOp::Insert);
                if self.tap_ids.contains(v) {
                    self.tap_log.push((
                        v,
                        row.clone(),
                        CommitOp::Insert,
                        self.tick_count,
                        self.now,
                    ));
                }
                if self.plan.view_inputs.contains(v) {
                    ctx.m_add[v.idx()].push(row);
                }
            }
            InsertOutcome::Replaced(old) => {
                self.record_prov(rule, &row, inputs);
                self.record_trace(v, &row, TraceOp::Insert);
                if self.tap_ids.contains(v) {
                    self.tap_log.push((
                        v,
                        old.clone(),
                        CommitOp::Delete,
                        self.tick_count,
                        self.now,
                    ));
                    self.tap_log.push((
                        v,
                        row.clone(),
                        CommitOp::Insert,
                        self.tick_count,
                        self.now,
                    ));
                }
                if self.plan.view_inputs.contains(v) {
                    ctx.m_del[v.idx()].push(old);
                    ctx.m_add[v.idx()].push(row);
                }
            }
            InsertOutcome::Duplicate => {}
        }
        Ok(())
    }

    /// Log a deletion the maintenance executor performed (the row is
    /// already out of the table): tap retraction, watch trace, and the
    /// view's own delta log for downstream maintained views.
    fn log_maint_delete(&mut self, v: TableId, row: &Row, ctx: &mut TickCtx) {
        if self.tap_ids.contains(v) {
            self.tap_log
                .push((v, row.clone(), CommitOp::Delete, self.tick_count, self.now));
        }
        self.record_trace(v, row, TraceOp::Delete);
        if self.plan.view_inputs.contains(v) {
            ctx.m_del[v.idx()].push(row.clone());
        }
    }
}

fn add_values(a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(*y))),
        _ => {
            let (x, y) = (
                a.as_float()
                    .ok_or_else(|| OverlogError::Eval(format!("sum over non-numeric {a}")))?,
                b.as_float()
                    .ok_or_else(|| OverlogError::Eval(format!("sum over non-numeric {b}")))?,
            );
            Ok(Value::Float(x + y))
        }
    }
}

fn raw_str(v: &Value) -> String {
    match v {
        Value::Str(s) | Value::Addr(s) => s.to_string(),
        other => other.to_string(),
    }
}

/// Evaluate a compiled expression against an environment.
pub fn eval_cexpr(e: &CExpr, env: &[Option<Value>], builtins: &Builtins) -> Result<Value> {
    match e {
        CExpr::Lit(v) => Ok(v.clone()),
        CExpr::Slot(s) => env
            .get(*s)
            .and_then(|v| v.clone())
            .ok_or_else(|| OverlogError::Eval(format!("unbound variable slot {s}"))),
        CExpr::Unary(op, a) => {
            let v = eval_cexpr(a, env, builtins)?;
            match op {
                UnOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(OverlogError::Eval(format!("cannot negate {other}"))),
                },
                UnOp::Not => Ok(Value::Bool(!v.truthy())),
            }
        }
        CExpr::Binary(op, a, b) => {
            // Short-circuit boolean operators.
            if *op == BinOp::And {
                let va = eval_cexpr(a, env, builtins)?;
                if !va.truthy() {
                    return Ok(Value::Bool(false));
                }
                return Ok(Value::Bool(eval_cexpr(b, env, builtins)?.truthy()));
            }
            if *op == BinOp::Or {
                let va = eval_cexpr(a, env, builtins)?;
                if va.truthy() {
                    return Ok(Value::Bool(true));
                }
                return Ok(Value::Bool(eval_cexpr(b, env, builtins)?.truthy()));
            }
            let va = eval_cexpr(a, env, builtins)?;
            let vb = eval_cexpr(b, env, builtins)?;
            eval_binop(*op, &va, &vb)
        }
        CExpr::Call(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_cexpr(a, env, builtins)?);
            }
            builtins.call(f, &vals)
        }
        CExpr::List(items) => {
            let mut vals = Vec::with_capacity(items.len());
            for i in items {
                vals.push(eval_cexpr(i, env, builtins)?);
            }
            Ok(Value::list(vals))
        }
    }
}

/// Apply a non-short-circuit binary operator to two already-evaluated
/// values. This is the single implementation both the interpreted path
/// ([`eval_cexpr`]) and the compiled kernels share, so a specialized
/// kernel can never drift from interpreter semantics on comparisons,
/// concatenation or arithmetic. `And`/`Or` stay in [`eval_cexpr`]: they
/// short-circuit over unevaluated subexpressions.
pub fn eval_binop(op: BinOp, va: &Value, vb: &Value) -> Result<Value> {
    match op {
        BinOp::Eq => Ok(Value::Bool(va == vb)),
        BinOp::Ne => Ok(Value::Bool(va != vb)),
        BinOp::Lt => Ok(Value::Bool(va < vb)),
        BinOp::Le => Ok(Value::Bool(va <= vb)),
        BinOp::Gt => Ok(Value::Bool(va > vb)),
        BinOp::Ge => Ok(Value::Bool(va >= vb)),
        BinOp::Concat => match (va, vb) {
            (Value::List(x), Value::List(y)) => {
                let mut out = x.to_vec();
                out.extend(y.iter().cloned());
                Ok(Value::list(out))
            }
            _ => Ok(Value::str(format!("{}{}", raw_str(va), raw_str(vb)))),
        },
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, va, vb),
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops never reach eval_binop"),
    }
}

/// Minimum delta rows before a gate is answered through the vectorized
/// column-group cache; below this the per-row scan is cheaper than
/// building the group.
const GATE_MIN_ROWS: usize = 8;

/// Outcome of the delta-gate pre-pass for one variant.
enum GateOutcome {
    /// No delta row passes the gate: skip the variant entirely.
    Skip,
    /// Every row passes (or the gate was not vectorizable): evaluate
    /// over the full slice.
    Full,
    /// A strict subset passes: evaluate over just those rows, kept in
    /// delta-arrival order.
    Rows(Vec<Row>),
}

/// Answer a variant's single-column delta gate from the round's
/// column-group cache, building the group on first touch. A group
/// answers `Some` only when its typed layout decides the literal's
/// equality exactly as `Value` equality would (see
/// [`ColGroup::select`]); otherwise — and for multi-column gates, tiny
/// slices, and `vectorize: false` (the `BOOM_KERNELS=0` interpreted
/// engine, which must keep the pre-kernel evaluation path byte for
/// byte) — this falls back to the original per-row all-fail scan.
fn gate_select(
    gates: &mut FxHashMap<(usize, usize), ColGroup>,
    slice: &[Row],
    dt: usize,
    gate: &[(usize, Value)],
    vectorize: bool,
) -> GateOutcome {
    if let [(col, v)] = gate {
        if vectorize && slice.len() >= GATE_MIN_ROWS {
            let group = gates
                .entry((dt, *col))
                .or_insert_with(|| Column::from_rows(slice, *col).group());
            if let Some(sel) = group.select(v) {
                return if sel.is_empty() {
                    GateOutcome::Skip
                } else if sel.len() == slice.len() {
                    GateOutcome::Full
                } else {
                    GateOutcome::Rows(sel.iter().map(|&i| slice[i as usize].clone()).collect())
                };
            }
        }
    }
    if slice.iter().all(|r| gate.iter().any(|(i, v)| r[*i] != *v)) {
        GateOutcome::Skip
    } else {
        GateOutcome::Full
    }
}

/// Resolve a kernel operand to its place: a borrowed value, no
/// environment consulted. `levels` holds *borrowed* candidate rows —
/// the kernel stack never clones an `Arc` per scanned row.
fn kresolve<'a>(op: &'a KOperand, levels: &[&'a Row], regs: &'a [Value]) -> &'a Value {
    match op {
        KOperand::Const(v) => v,
        KOperand::Col { level, col } => &levels[*level][*col],
        KOperand::Reg(r) => &regs[*r],
    }
}

/// Evaluate a kernel expression to an owned value (head projection,
/// probes, assignments).
fn keval(e: &KExpr, levels: &[&Row], regs: &[Value]) -> Result<Value> {
    match e {
        KExpr::Operand(o) => Ok(kresolve(o, levels, regs).clone()),
        KExpr::Binary(op, a, b) => {
            eval_binop(*op, kresolve(a, levels, regs), kresolve(b, levels, regs))
        }
    }
}

/// Truthiness of a kernel expression (filters), without cloning operands.
fn ktruthy(e: &KExpr, levels: &[&Row], regs: &[Value]) -> Result<bool> {
    match e {
        KExpr::Operand(o) => Ok(kresolve(o, levels, regs).truthy()),
        KExpr::Binary(op, a, b) => {
            Ok(eval_binop(*op, kresolve(a, levels, regs), kresolve(b, levels, regs))?.truthy())
        }
    }
}

/// Does the candidate row satisfy one kernel column check? Operand
/// checks (the common case — join columns) compare borrowed values with
/// zero clones.
fn kcheck(ch: &KCheck, row: &Row, levels: &[&Row], regs: &[Value]) -> Result<bool> {
    let val = &row[ch.col];
    match &ch.expr {
        KExpr::Operand(o) => Ok(kresolve(o, levels, regs) == val),
        KExpr::Binary(op, a, b) => {
            Ok(&eval_binop(*op, kresolve(a, levels, regs), kresolve(b, levels, regs))? == val)
        }
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return match op {
            BinOp::Add => Ok(Value::Int(x.wrapping_add(*y))),
            BinOp::Sub => Ok(Value::Int(x.wrapping_sub(*y))),
            BinOp::Mul => Ok(Value::Int(x.wrapping_mul(*y))),
            BinOp::Div => {
                if *y == 0 {
                    Err(OverlogError::Eval("integer division by zero".into()))
                } else {
                    Ok(Value::Int(x.wrapping_div(*y)))
                }
            }
            BinOp::Mod => {
                if *y == 0 {
                    Err(OverlogError::Eval("integer modulo by zero".into()))
                } else {
                    Ok(Value::Int(x.wrapping_rem(*y)))
                }
            }
            _ => unreachable!("arith called with arithmetic op"),
        };
    }
    let (x, y) = (
        a.as_float()
            .ok_or_else(|| OverlogError::Eval(format!("arithmetic on non-number {a}")))?,
        b.as_float()
            .ok_or_else(|| OverlogError::Eval(format!("arithmetic on non-number {b}")))?,
    );
    Ok(match op {
        BinOp::Add => Value::Float(x + y),
        BinOp::Sub => Value::Float(x - y),
        BinOp::Mul => Value::Float(x * y),
        BinOp::Div => Value::Float(x / y),
        BinOp::Mod => Value::Float(x % y),
        _ => unreachable!("arith called with arithmetic op"),
    })
}
