//! The Overlog runtime: timestep driver and semi-naive stratified evaluator.
//!
//! One [`OverlogRuntime`] corresponds to one JOL instance on one node. The
//! host (a simulator actor, a test, or an example binary) drives it:
//!
//! 1. queue external tuples with [`OverlogRuntime::insert`] /
//!    [`OverlogRuntime::delete`] / network deliveries,
//! 2. call [`OverlogRuntime::tick`] with the current virtual time,
//! 3. deliver the returned [`NetTuple`]s to their destination runtimes.
//!
//! ## Timestep semantics
//!
//! Within a tick, deductive rules run to fixpoint (semi-naive, stratum by
//! stratum). Three kinds of derivation cross the tick boundary instead of
//! taking effect immediately (Dedalus-style induction):
//!
//! * **deletions** from `delete` rules,
//! * **insertions into materialized tables by event-triggered rules** —
//!   every rule in a tick reads a consistent pre-state, and programs may
//!   check a table (`notin fqpath(...)`) and update it in the same rule
//!   body without a stratification cycle,
//! * **tuples addressed to remote nodes**, which are shipped at the
//!   boundary.
//!
//! Event-table tuples live for exactly one tick; event-to-event rules fire
//! within the tick. Pure materialized-to-materialized rules are *views*,
//! maintained immediately.
//!
//! ## View maintenance
//!
//! Rules whose head and entire body are materialized (and carry no location
//! specifier) define *views*. Views are maintained incrementally on
//! insertion; any deletion or key-overwrite of a view input triggers a full
//! recomputation of all view tables at the end of the tick — a simple,
//! sound replacement for JOL's incremental delete propagation.

use crate::analysis::{self, Diagnostic, SourceMap};
use crate::ast::{AggKind, BinOp, UnOp};
use crate::ast::{Rule, Span, Statement, TableDecl, TableKind};
use crate::builtins::Builtins;
use crate::error::{OverlogError, Result};
use crate::parser::parse_program;
use crate::plan::{self, CExpr, CHeadArg, CompiledRule, Op, Pat, Plan, Variant};
use crate::table::{InsertOutcome, Table};
use crate::value::{Row, TypeTag, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A tuple addressed to another node, produced by a rule whose head carries
/// a location specifier.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTuple {
    /// Destination address (matches another runtime's `addr`).
    pub dest: Arc<str>,
    /// Target table at the destination.
    pub table: String,
    /// The tuple.
    pub row: Row,
}

/// What a single tick did.
#[derive(Debug, Default)]
pub struct TickResult {
    /// Tuples to deliver to other nodes.
    pub sends: Vec<NetTuple>,
    /// Number of rule derivations performed.
    pub derivations: u64,
    /// Number of tuples deleted at the tick boundary.
    pub deletions: usize,
    /// Whether view tables were recomputed from scratch.
    pub views_recomputed: bool,
}

/// Kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Tuple inserted (new or replacing).
    Insert,
    /// Tuple deleted.
    Delete,
    /// Tuple shipped to a remote node.
    Send,
}

/// One record in the watch trace (the paper's monitoring hook).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Tick counter when the event happened.
    pub tick: u64,
    /// Virtual time of the tick.
    pub time: u64,
    /// Affected table.
    pub table: String,
    /// The tuple.
    pub row: Row,
    /// Operation kind.
    pub op: TraceOp,
}

/// A drained watch trace plus the number of records lost to the ring
/// buffer's capacity since the previous drain.
#[derive(Debug, Default)]
pub struct TraceDrain {
    /// The surviving records, oldest first.
    pub events: Vec<TraceEvent>,
    /// Records evicted because the buffer hit `trace_cap` — silently lost
    /// history the consumer must account for.
    pub dropped: u64,
}

/// One why-provenance record: a derived tuple, the rule that produced it,
/// and the positive body tuples that matched (the *first witness* — later
/// re-derivations of the same tuple are not recorded).
#[derive(Debug, Clone)]
pub struct ProvRecord {
    /// Tick counter when the derivation happened.
    pub tick: u64,
    /// Virtual time of the tick.
    pub time: u64,
    /// Label of the deriving rule. Aggregate rules record empty `inputs`
    /// (their support is the whole group).
    pub rule: String,
    /// Head table of the derivation.
    pub table: String,
    /// The derived tuple.
    pub row: Row,
    /// The positive body tuples joined to produce the head, in scan order.
    pub inputs: Vec<(String, Row)>,
}

/// Per-rule evaluation statistics — the rule-level profiler. All fields
/// except `eval_ns` are deterministic for a fixed program and input
/// schedule; `eval_ns` is wall-clock and varies run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Effective derivations (new tuple, remote send, deferred insert, or
    /// deferred delete).
    pub fires: u64,
    /// Head rows produced by body evaluation before set-semantics dedup —
    /// the rule's join fanout.
    pub attempts: u64,
    /// Delta rows consumed by this rule's semi-naive variants.
    pub delta_in: u64,
    /// Wall-clock nanoseconds spent evaluating the body and dispatching
    /// heads (non-deterministic; excluded from reproducibility checks).
    pub eval_ns: u64,
}

/// Tick-granularity evaluation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Total semi-naive fixpoint rounds across all strata and ticks.
    pub fixpoint_rounds: u64,
    /// Full view recomputations triggered by deletions/overwrites.
    pub view_recomputes: u64,
}

#[derive(Debug)]
enum Pending {
    Insert(String, Row),
    Delete(String, Row),
}

#[derive(Debug)]
struct TimerState {
    name: String,
    interval: u64,
    next: u64,
}

/// A single-node Overlog runtime (the JOL equivalent).
pub struct OverlogRuntime {
    addr: Arc<str>,
    decls: HashMap<String, TableDecl>,
    tables: HashMap<String, Table>,
    rule_sources: Vec<Rule>,
    /// Program texts successfully loaded, in order (static re-analysis).
    sources: Vec<String>,
    /// Tables the host has inserted into or deleted from directly; the
    /// analyzer treats them as externally filled.
    host_inserted: HashSet<String>,
    plan: Plan,
    plan_opts: plan::PlanOptions,
    /// Ground facts loaded per table — feeds the planner's cardinality
    /// model so join orders reflect actual configuration sizes.
    fact_counts: HashMap<String, usize>,
    builtins: Builtins,
    timers: Vec<TimerState>,
    watches: HashSet<String>,
    pending: VecDeque<Pending>,
    trace: VecDeque<TraceEvent>,
    trace_cap: usize,
    /// Records evicted from `trace` since the last drain.
    trace_dropped: u64,
    /// Count every derivation into the trace, not just watched tables
    /// (the "monitoring revision" toggle measured by experiment E7).
    trace_all: bool,
    /// Why-provenance capture (off by default; see [`ProvRecord`]).
    prov_on: bool,
    prov: Vec<ProvRecord>,
    prov_seen: HashSet<(String, Row)>,
    prov_cap: usize,
    prov_dropped: u64,
    budget: u64,
    rule_stats: Vec<RuleStats>,
    eval_stats: EvalStats,
    tick_count: u64,
    now: u64,
}

impl std::fmt::Debug for OverlogRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlogRuntime")
            .field("addr", &self.addr)
            .field("tables", &self.tables.len())
            .field("rules", &self.plan.rules.len())
            .field("tick", &self.tick_count)
            .finish()
    }
}

struct TickCtx {
    added: HashMap<String, Vec<Row>>,
    round_delta: HashMap<String, Vec<Row>>,
    next_delta: HashMap<String, Vec<Row>>,
    deferred_deletes: Vec<(String, Row)>,
    deferred_inserts: Vec<(String, Row)>,
    deferred_seen: HashSet<(String, Row)>,
    outbox: Vec<NetTuple>,
    sent: HashSet<(Arc<str>, String, Row)>,
    derivations: u64,
    attempts: u64,
    /// View inputs that *shrank* this tick (deletions, key-overwrites):
    /// every view depending on one of these must be rebuilt.
    shrink_dirty: HashSet<String>,
    /// Negated view inputs that *grew* this tick: only non-monotonic
    /// views (negation/aggregation in their closure) can lose tuples to
    /// growth, so the CALM-certified ones skip the rebuild.
    grow_dirty: HashSet<String>,
    changed_tables: HashSet<String>,
}

/// Captures, for each environment a rule body emits, the positive body
/// tuples that matched along the way. Disabled (and cost-free beyond a
/// branch per scan) unless provenance capture is on.
struct SupportSink {
    enabled: bool,
    cur: Vec<(String, Row)>,
    out: Vec<Vec<(String, Row)>>,
}

impl SupportSink {
    fn new(enabled: bool) -> Self {
        SupportSink {
            enabled,
            cur: Vec::new(),
            out: Vec::new(),
        }
    }

    fn into_supports(self) -> Option<Vec<Vec<(String, Row)>>> {
        if self.enabled {
            Some(self.out)
        } else {
            None
        }
    }
}

impl TickCtx {
    fn new() -> Self {
        TickCtx {
            added: HashMap::new(),
            round_delta: HashMap::new(),
            next_delta: HashMap::new(),
            deferred_deletes: Vec::new(),
            deferred_inserts: Vec::new(),
            deferred_seen: HashSet::new(),
            outbox: Vec::new(),
            sent: HashSet::new(),
            derivations: 0,
            attempts: 0,
            shrink_dirty: HashSet::new(),
            grow_dirty: HashSet::new(),
            changed_tables: HashSet::new(),
        }
    }
}

impl OverlogRuntime {
    /// Create a runtime identified by a node address.
    ///
    /// The runtime pre-declares the table `me(Addr)` holding its own
    /// address, so programs can bind their location:
    /// `response(@Src, Id) :- request(Src, Id), me(Me);`.
    pub fn new(addr: impl AsRef<str>) -> Self {
        let addr: Arc<str> = Arc::from(addr.as_ref());
        let mut rt = OverlogRuntime {
            addr: addr.clone(),
            decls: HashMap::new(),
            tables: HashMap::new(),
            rule_sources: Vec::new(),
            sources: Vec::new(),
            host_inserted: HashSet::new(),
            plan: Plan::default(),
            plan_opts: plan::PlanOptions::default(),
            fact_counts: HashMap::new(),
            builtins: Builtins::standard(),
            timers: Vec::new(),
            watches: HashSet::new(),
            pending: VecDeque::new(),
            trace: VecDeque::new(),
            trace_cap: 100_000,
            trace_dropped: 0,
            trace_all: false,
            prov_on: false,
            prov: Vec::new(),
            prov_seen: HashSet::new(),
            prov_cap: 200_000,
            prov_dropped: 0,
            budget: 5_000_000,
            rule_stats: Vec::new(),
            eval_stats: EvalStats::default(),
            tick_count: 0,
            now: 0,
        };
        let me = TableDecl {
            name: "me".into(),
            keys: None,
            types: vec![TypeTag::Addr],
            kind: TableKind::Materialized,
            span: Span::default(),
        };
        rt.decls.insert("me".into(), me.clone());
        let mut t = Table::new(me);
        t.insert(Arc::new(vec![Value::Addr(addr)]))
            .expect("me fact matches its own declaration");
        rt.tables.insert("me".into(), t);
        rt
    }

    /// This runtime's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Virtual time of the last tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of ticks executed.
    pub fn ticks(&self) -> u64 {
        self.tick_count
    }

    /// Set the per-tick derivation budget (guards against diverging
    /// recursion through arithmetic).
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Enable or disable tracing of *every* derivation (experiment E7's
    /// monitoring toggle). `watch`ed tables are always traced.
    pub fn set_trace_all(&mut self, on: bool) {
        self.trace_all = on;
    }

    /// Register a host-provided builtin function.
    pub fn register_builtin<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.builtins.register(name, f);
    }

    /// Load an Overlog program, merging its declarations and rules with
    /// everything loaded before. Facts are queued for the next tick.
    pub fn load(&mut self, src: &str) -> Result<()> {
        let prog = parse_program(src)?;
        // Merge declarations first so facts and rules can target them.
        for stmt in &prog.statements {
            match stmt {
                Statement::Define(d) => {
                    if let Some(existing) = self.decls.get(&d.name) {
                        if !existing.same_schema(d) {
                            return Err(OverlogError::Redefinition {
                                table: d.name.clone(),
                                span: d.span,
                            });
                        }
                    } else {
                        self.decls.insert(d.name.clone(), d.clone());
                        self.tables.insert(d.name.clone(), Table::new(d.clone()));
                    }
                }
                Statement::Timer {
                    name,
                    interval_ms,
                    span,
                } => {
                    if !self.decls.contains_key(name) {
                        let d = TableDecl {
                            name: name.clone(),
                            keys: None,
                            types: vec![TypeTag::Int],
                            kind: TableKind::Event,
                            span: *span,
                        };
                        self.decls.insert(name.clone(), d.clone());
                        self.tables.insert(name.clone(), Table::new(d));
                    } else {
                        let d = &self.decls[name];
                        if d.kind != TableKind::Event || d.arity() != 1 {
                            return Err(OverlogError::Redefinition {
                                table: name.clone(),
                                span: *span,
                            });
                        }
                    }
                    self.timers.push(TimerState {
                        name: name.clone(),
                        interval: *interval_ms,
                        next: 0,
                    });
                }
                _ => {}
            }
        }
        // Watches: validated after the declaration pass so a watch may
        // precede its table's define in the same source.
        for stmt in &prog.statements {
            if let Statement::Watch { table, span } = stmt {
                if !self.decls.contains_key(table) {
                    return Err(OverlogError::UnknownTable {
                        table: table.clone(),
                        rule: None,
                        span: *span,
                    });
                }
                self.watches.insert(table.clone());
            }
        }
        // Facts: constant-fold and queue.
        for stmt in &prog.statements {
            if let Statement::Fact {
                table,
                values,
                span,
            } = stmt
            {
                if !self.decls.contains_key(table) {
                    return Err(OverlogError::UnknownTable {
                        table: table.clone(),
                        rule: None,
                        span: *span,
                    });
                }
                let mut row = Vec::with_capacity(values.len());
                for e in values {
                    let mut vars = Vec::new();
                    e.collect_vars(&mut vars);
                    if !vars.is_empty() || matches!(e, crate::ast::Expr::Wildcard) {
                        return Err(OverlogError::UnsafeRule {
                            rule: format!("fact {table}"),
                            var: vars.into_iter().next().unwrap_or_else(|| "_".into()),
                            span: *span,
                        });
                    }
                    let ce = plan::compile_fact_expr(e);
                    row.push(eval_cexpr(&ce, &[], &self.builtins)?);
                }
                *self.fact_counts.entry(table.clone()).or_default() += 1;
                self.pending
                    .push_back(Pending::Insert(table.clone(), Arc::new(row)));
            }
        }
        // Rules: append and recompile the whole plan.
        let before = self.rule_sources.len();
        self.rule_sources.extend(prog.rules().cloned());
        match self.recompile() {
            Ok(p) => {
                self.plan = p;
                self.rule_stats
                    .resize(self.plan.rules.len(), RuleStats::default());
                self.sources.push(src.to_string());
                Ok(())
            }
            Err(e) => {
                self.rule_sources.truncate(before);
                // Restore the previous (still valid) plan.
                self.plan = self.recompile().expect("previous plan compiled before");
                Err(e)
            }
        }
    }

    fn recompile(&self) -> Result<Plan> {
        plan::compile_with(
            &self.decls,
            &self.rule_sources,
            &self.fact_counts,
            self.plan_opts,
        )
    }

    /// Set the analysis-driven planner options (see
    /// [`plan::PlanOptions`]) and recompile the plan. Table contents are
    /// untouched, so hosts can flip options mid-run to A/B the optimizer.
    pub fn set_plan_options(&mut self, opts: plan::PlanOptions) {
        self.plan_opts = opts;
        self.plan = self.recompile().expect("loaded sources compiled before");
        self.rule_stats
            .resize(self.plan.rules.len(), RuleStats::default());
    }

    /// The planner options currently in effect.
    pub fn plan_options(&self) -> plan::PlanOptions {
        self.plan_opts
    }

    /// Queue an external insertion for the next tick.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<()> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| OverlogError::unknown_table(table))?;
        t.typecheck(&row)?;
        self.host_inserted.insert(table.to_string());
        self.pending
            .push_back(Pending::Insert(table.to_string(), row));
        Ok(())
    }

    /// Queue an external deletion for the next tick.
    pub fn delete(&mut self, table: &str, row: Row) -> Result<()> {
        if !self.tables.contains_key(table) {
            return Err(OverlogError::unknown_table(table));
        }
        self.host_inserted.insert(table.to_string());
        self.pending
            .push_back(Pending::Delete(table.to_string(), row));
        Ok(())
    }

    /// Deliver a network tuple (same queue as [`OverlogRuntime::insert`]).
    pub fn deliver(&mut self, net: &NetTuple) -> Result<()> {
        self.insert(&net.table, net.row.clone())
    }

    /// Whether any external work is queued (used by hosts to decide whether
    /// a tick is needed).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Sorted rows of a table (empty when the table is unknown).
    pub fn rows(&self, name: &str) -> Vec<Row> {
        self.tables
            .get(name)
            .map(|t| t.sorted_rows())
            .unwrap_or_default()
    }

    /// Number of rows in a table.
    pub fn count(&self, name: &str) -> usize {
        self.tables.get(name).map(|t| t.len()).unwrap_or(0)
    }

    /// Add a watch on a table at runtime.
    pub fn watch(&mut self, table: &str) {
        self.watches.insert(table.to_string());
    }

    /// Drain the accumulated trace, discarding the drop counter. Prefer
    /// [`OverlogRuntime::drain_trace`], which reports losses.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.drain_trace().events
    }

    /// Drain the accumulated trace together with the number of records the
    /// ring buffer evicted since the last drain; resets the drop counter.
    pub fn drain_trace(&mut self) -> TraceDrain {
        TraceDrain {
            events: self.trace.drain(..).collect(),
            dropped: std::mem::take(&mut self.trace_dropped),
        }
    }

    /// Records evicted from the trace ring buffer since the last drain.
    pub fn trace_drops(&self) -> u64 {
        self.trace_dropped
    }

    /// Resize the trace ring buffer (evicting oldest records if shrinking).
    pub fn set_trace_cap(&mut self, cap: usize) {
        self.trace_cap = cap.max(1);
        while self.trace.len() > self.trace_cap {
            self.trace.pop_front();
            self.trace_dropped += 1;
        }
    }

    /// Enable or disable why-provenance capture (off by default; costs one
    /// `(table, row)` clone per joined body tuple while on).
    pub fn set_provenance(&mut self, on: bool) {
        self.prov_on = on;
    }

    /// Cap on retained provenance records; derivations past the cap are
    /// counted in [`OverlogRuntime::prov_drops`] instead of stored.
    pub fn set_prov_cap(&mut self, cap: usize) {
        self.prov_cap = cap;
    }

    /// Provenance records captured so far, in derivation order.
    pub fn provenance(&self) -> &[ProvRecord] {
        &self.prov
    }

    /// Derivations not recorded because the provenance store hit its cap.
    pub fn prov_drops(&self) -> u64 {
        self.prov_dropped
    }

    /// Drain captured provenance, resetting the first-witness set and drop
    /// counter (subsequent derivations are recorded afresh).
    pub fn take_provenance(&mut self) -> Vec<ProvRecord> {
        self.prov_seen.clear();
        self.prov_dropped = 0;
        std::mem::take(&mut self.prov)
    }

    /// Per-rule derivation counters, labeled.
    pub fn rule_fire_counts(&self) -> Vec<(String, u64)> {
        self.plan
            .rules
            .iter()
            .map(|r| (r.label.clone(), self.rule_stats[r.id].fires))
            .collect()
    }

    /// Per-rule profiler counters, labeled (see [`RuleStats`]).
    pub fn rule_stats(&self) -> Vec<(String, RuleStats)> {
        self.plan
            .rules
            .iter()
            .map(|r| (r.label.clone(), self.rule_stats[r.id]))
            .collect()
    }

    /// Tick-granularity evaluation counters.
    pub fn eval_stats(&self) -> EvalStats {
        self.eval_stats
    }

    /// Program texts successfully loaded so far, in load order.
    pub fn loaded_sources(&self) -> &[String] {
        &self.sources
    }

    /// All declared tables, including runtime-ambient ones.
    pub fn table_decls(&self) -> impl Iterator<Item = &TableDecl> {
        self.decls.values()
    }

    /// Tables currently watched, sorted.
    pub fn watched_tables(&self) -> Vec<String> {
        let mut w: Vec<String> = self.watches.iter().cloned().collect();
        w.sort();
        w
    }

    /// Head tables of loaded non-delete rules (tables the program derives
    /// into), sorted and deduplicated.
    pub fn derived_tables(&self) -> Vec<String> {
        let mut ts: Vec<String> = self
            .plan
            .rules
            .iter()
            .filter(|r| !r.delete)
            .map(|r| r.head_table.clone())
            .collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// Number of loaded rules.
    pub fn rule_count(&self) -> usize {
        self.plan.rules.len()
    }

    /// Statically analyze everything loaded so far (the `olgcheck` pass,
    /// without executing anything): every load-time check plus the lint
    /// suite. Tables the host has inserted into are treated as externally
    /// filled. Returns the diagnostics; see
    /// [`OverlogRuntime::check_with_sources`] to render them.
    pub fn check(&self) -> Vec<Diagnostic> {
        self.check_with_sources().0
    }

    /// Like [`OverlogRuntime::check`], also returning the [`SourceMap`]
    /// needed to render diagnostics with file/line/column positions.
    pub fn check_with_sources(&self) -> (Vec<Diagnostic>, SourceMap) {
        let mut ctx = analysis::ProgramContext::new();
        for d in analysis::ProgramContext::runtime_ambient() {
            ctx.add_ambient(d);
        }
        let mut map = SourceMap::new();
        for (i, src) in self.sources.iter().enumerate() {
            ctx.add_source(&format!("loaded#{i}"), src, &mut map);
        }
        for t in &self.host_inserted {
            ctx.mark_external(t);
        }
        (analysis::analyze(&ctx), map)
    }

    /// Tick repeatedly (at the same virtual time) until no queued or
    /// inductively-deferred work remains, collecting all network sends.
    /// Bounded; errors if the program does not quiesce within 64 ticks.
    pub fn settle(&mut self, now: u64) -> Result<Vec<NetTuple>> {
        let mut sends = Vec::new();
        for _ in 0..64 {
            let res = self.tick(now)?;
            sends.extend(res.sends);
            if !self.has_pending() {
                return Ok(sends);
            }
        }
        Err(OverlogError::Eval(
            "settle: runtime did not quiesce within 64 ticks".into(),
        ))
    }

    /// Execute one timestep at virtual time `now`.
    pub fn tick(&mut self, now: u64) -> Result<TickResult> {
        self.now = now;
        let mut ctx = TickCtx::new();

        // 1. Fire due timers.
        for t in &mut self.timers {
            if now >= t.next {
                self.pending.push_back(Pending::Insert(
                    t.name.clone(),
                    Arc::new(vec![Value::Int(now as i64)]),
                ));
                t.next = now + t.interval;
            }
        }

        // 2. Apply externally queued work.
        let mut pre_dirty = false;
        let work: Vec<Pending> = self.pending.drain(..).collect();
        for p in work {
            match p {
                Pending::Insert(table, row) => {
                    self.apply_insert(&table, row, false, &mut ctx)?;
                }
                Pending::Delete(table, row) => {
                    let t = self
                        .tables
                        .get_mut(&table)
                        .ok_or_else(|| OverlogError::unknown_table(table.clone()))?;
                    if t.delete(&row) {
                        ctx.changed_tables.insert(table.clone());
                        self.record_trace(&table, &row, TraceOp::Delete);
                        if self.plan.view_inputs.contains(&table) {
                            pre_dirty = true;
                            ctx.shrink_dirty.insert(table.clone());
                        }
                    }
                }
            }
        }
        if pre_dirty {
            let affected = self.affected_views(&ctx.shrink_dirty, &ctx.grow_dirty);
            self.recompute_views(&affected, &mut ctx)?;
            ctx.shrink_dirty.clear();
            ctx.grow_dirty.clear();
        }
        // Everything queued so far is already in `added`, which seeds every
        // stratum; drop it from `next_delta` so the first stratum's rounds
        // don't process it twice.
        ctx.next_delta.clear();

        // 3. Stratified semi-naive fixpoint.
        let strata: Vec<Vec<usize>> = self.plan.strata.clone();
        for stratum in &strata {
            // Aggregates and body-less rules run once, at stratum entry.
            for &rid in stratum {
                let rule = self.plan.rules[rid].clone();
                if rule.aggregate {
                    // Inductive aggregates (event-fed, materialized head)
                    // run after the fixpoint: their outputs only become
                    // visible next tick anyway, and their event inputs may
                    // still be derived within this stratum.
                    if rule.inductive {
                        continue;
                    }
                    let inputs_changed = rule
                        .positive_tables
                        .iter()
                        .any(|t| ctx.changed_tables.contains(t));
                    if inputs_changed {
                        self.eval_aggregate(&rule, &mut ctx)?;
                    }
                } else if rule.variants[0].delta_pred.is_none() {
                    let t0 = std::time::Instant::now();
                    let (rows, sups) =
                        self.eval_variant(&rule, &rule.variants[0], None, &mut ctx)?;
                    self.dispatch(&rule, rows, sups, &mut ctx)?;
                    self.rule_stats[rid].eval_ns += t0.elapsed().as_nanos() as u64;
                }
            }
            // Seed the stratum with everything added so far this tick.
            ctx.round_delta = ctx.added.clone();
            loop {
                let current = std::mem::take(&mut ctx.round_delta);
                if current.values().all(|v| v.is_empty()) {
                    break;
                }
                self.eval_stats.fixpoint_rounds += 1;
                for &rid in stratum {
                    let rule = self.plan.rules[rid].clone();
                    if rule.aggregate {
                        continue;
                    }
                    for variant in &rule.variants {
                        let Some(d) = variant.delta_pred else {
                            continue;
                        };
                        let dtable = &rule.positive_tables[d];
                        let Some(delta_rows) = current.get(dtable) else {
                            continue;
                        };
                        if delta_rows.is_empty() {
                            continue;
                        }
                        let delta_rows = delta_rows.clone();
                        self.rule_stats[rid].delta_in += delta_rows.len() as u64;
                        let t0 = std::time::Instant::now();
                        let (rows, sups) =
                            self.eval_variant(&rule, variant, Some(&delta_rows), &mut ctx)?;
                        self.dispatch(&rule, rows, sups, &mut ctx)?;
                        self.rule_stats[rid].eval_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
                // Aggregates whose inputs changed within this stratum's
                // rounds cannot exist (strictly lower strata), so only
                // non-aggregate next_delta carries over.
                ctx.round_delta = std::mem::take(&mut ctx.next_delta);
            }
        }

        // 3b. Inductive aggregates, now that all event derivations settled.
        let agg_rules: Vec<_> = self
            .plan
            .rules
            .iter()
            .filter(|r| r.aggregate && r.inductive)
            .cloned()
            .collect();
        for rule in agg_rules {
            let inputs_changed = rule
                .positive_tables
                .iter()
                .any(|t| ctx.changed_tables.contains(t));
            if inputs_changed {
                self.eval_aggregate(&rule, &mut ctx)?;
            }
        }

        // 4. Apply deferred deletions.
        let mut deletions = 0usize;
        let deferred = std::mem::take(&mut ctx.deferred_deletes);
        let mut seen: HashSet<(String, Row)> = HashSet::new();
        for (table, row) in deferred {
            if !seen.insert((table.clone(), row.clone())) {
                continue;
            }
            if let Some(t) = self.tables.get_mut(&table) {
                if t.delete(&row) {
                    deletions += 1;
                    self.record_trace(&table, &row, TraceOp::Delete);
                    if self.plan.view_inputs.contains(&table) {
                        ctx.shrink_dirty.insert(table.clone());
                    }
                }
            }
        }

        // 5. Clear event tables.
        for t in self.tables.values_mut() {
            if t.is_event() {
                t.clear();
            }
        }

        // 6. Recompute the affected views if any input shrank (or a
        // negated input of a non-monotonic view grew).
        let affected = self.affected_views(&ctx.shrink_dirty, &ctx.grow_dirty);
        let views_recomputed = !affected.is_empty();
        if views_recomputed {
            self.recompute_views(&affected, &mut ctx)?;
        }

        // 7. Queue inductive insertions for the next tick.
        for (table, row) in std::mem::take(&mut ctx.deferred_inserts) {
            self.pending.push_back(Pending::Insert(table, row));
        }

        self.tick_count += 1;
        self.eval_stats.ticks += 1;
        for send in &ctx.outbox {
            self.record_trace(&send.table, &send.row, TraceOp::Send);
        }
        Ok(TickResult {
            sends: std::mem::take(&mut ctx.outbox),
            derivations: ctx.derivations,
            deletions,
            views_recomputed,
        })
    }

    /// Insert a derived or external row into a local table; reports
    /// whether the insert was new, a key-overwrite, or a duplicate.
    fn apply_insert(
        &mut self,
        table: &str,
        row: Row,
        from_view_rule: bool,
        ctx: &mut TickCtx,
    ) -> Result<InsertOutcome> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| OverlogError::unknown_table(table))?;
        // Deltas must hold exactly what the table holds (Addr coercion).
        let row = t.coerce(row);
        let outcome = t.insert(row.clone())?;
        match &outcome {
            InsertOutcome::New => {
                ctx.added
                    .entry(table.to_string())
                    .or_default()
                    .push(row.clone());
                ctx.next_delta
                    .entry(table.to_string())
                    .or_default()
                    .push(row.clone());
                ctx.changed_tables.insert(table.to_string());
                self.record_trace(table, &row, TraceOp::Insert);
                // Negation is non-monotone: growing a table that appears
                // negated in a view rule can retract view tuples, so it
                // dirties views exactly like a deletion would — even when
                // the insert itself came from a view rule (one view can
                // feed another's negation).
                if self.plan.neg_view_inputs.contains(table) {
                    ctx.grow_dirty.insert(table.to_string());
                }
            }
            InsertOutcome::Replaced(_old) => {
                ctx.added
                    .entry(table.to_string())
                    .or_default()
                    .push(row.clone());
                ctx.next_delta
                    .entry(table.to_string())
                    .or_default()
                    .push(row.clone());
                ctx.changed_tables.insert(table.to_string());
                self.record_trace(table, &row, TraceOp::Insert);
                // A key-overwrite removes a tuple other derivations may have
                // consumed: views over this table must be rebuilt — unless
                // the overwrite came from a view rule itself (aggregates
                // refreshing their groups), which is self-consistent.
                // Negated inputs dirty unconditionally (see above).
                if !from_view_rule && self.plan.view_inputs.contains(table) {
                    ctx.shrink_dirty.insert(table.to_string());
                }
                if self.plan.neg_view_inputs.contains(table) {
                    ctx.grow_dirty.insert(table.to_string());
                }
            }
            InsertOutcome::Duplicate => {}
        }
        Ok(outcome)
    }

    fn record_trace(&mut self, table: &str, row: &Row, op: TraceOp) {
        if self.trace_all || self.watches.contains(table) {
            if self.trace.len() >= self.trace_cap {
                self.trace.pop_front();
                self.trace_dropped += 1;
            }
            self.trace.push_back(TraceEvent {
                tick: self.tick_count,
                time: self.now,
                table: table.to_string(),
                row: row.clone(),
                op,
            });
        }
    }

    /// First-witness why-provenance: remember which rule and body tuples
    /// produced `row` the first time it was derived.
    fn record_prov(&mut self, rule: &CompiledRule, row: &Row, inputs: &[(String, Row)]) {
        if !self.prov_on {
            return;
        }
        let key = (rule.head_table.clone(), row.clone());
        if self.prov_seen.contains(&key) {
            return;
        }
        if self.prov.len() >= self.prov_cap {
            self.prov_dropped += 1;
            return;
        }
        self.prov_seen.insert(key);
        self.prov.push(ProvRecord {
            tick: self.tick_count,
            time: self.now,
            rule: rule.label.clone(),
            table: rule.head_table.clone(),
            row: row.clone(),
            inputs: inputs.to_vec(),
        });
    }

    /// Route derived rows for a rule: remote sends, deferred deletes, or
    /// local insertion. `supports[i]` (when provenance is on) holds the
    /// positive body tuples behind `rows[i]`.
    fn dispatch(
        &mut self,
        rule: &CompiledRule,
        rows: Vec<Row>,
        supports: Option<Vec<Vec<(String, Row)>>>,
        ctx: &mut TickCtx,
    ) -> Result<()> {
        for (i, row) in rows.into_iter().enumerate() {
            ctx.attempts += 1;
            self.rule_stats[rule.id].attempts += 1;
            if ctx.attempts > self.budget {
                return Err(OverlogError::Eval(format!(
                    "derivation budget exceeded in tick {} (rule `{}`)",
                    self.tick_count, rule.label
                )));
            }
            let inputs: &[(String, Row)] = supports
                .as_ref()
                .and_then(|s| s.get(i))
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            if rule.delete {
                ctx.derivations += 1;
                self.rule_stats[rule.id].fires += 1;
                ctx.deferred_deletes.push((rule.head_table.clone(), row));
                continue;
            }
            if let Some(loc) = rule.head_loc {
                let dest = match &row[loc] {
                    Value::Addr(a) | Value::Str(a) => a.clone(),
                    other => {
                        return Err(OverlogError::Eval(format!(
                            "rule `{}`: location specifier is not an address: {other}",
                            rule.label
                        )))
                    }
                };
                if dest != self.addr {
                    // Set semantics: ship each distinct remote tuple once
                    // per tick, even if semi-naive re-derives it.
                    if ctx
                        .sent
                        .insert((dest.clone(), rule.head_table.clone(), row.clone()))
                    {
                        ctx.derivations += 1;
                        self.rule_stats[rule.id].fires += 1;
                        self.record_prov(rule, &row, inputs);
                        ctx.outbox.push(NetTuple {
                            dest,
                            table: rule.head_table.clone(),
                            row,
                        });
                    }
                    continue;
                }
            }
            if rule.inductive {
                // Dedalus-style induction: the update lands at the start of
                // the next timestep, so this tick's rules all read a
                // consistent pre-state.
                let key = (rule.head_table.clone(), row.clone());
                if ctx.deferred_seen.insert(key) {
                    ctx.derivations += 1;
                    self.rule_stats[rule.id].fires += 1;
                    self.record_prov(rule, &row, inputs);
                    ctx.deferred_inserts.push((rule.head_table.clone(), row));
                }
                continue;
            }
            // Effectiveness comes straight from the insert outcome: a new
            // row or a key-overwrite fires the rule, a duplicate does not.
            let outcome = self.apply_insert(&rule.head_table, row.clone(), rule.is_view, ctx)?;
            if !matches!(outcome, InsertOutcome::Duplicate) {
                ctx.derivations += 1;
                self.rule_stats[rule.id].fires += 1;
                self.record_prov(rule, &row, inputs);
            }
        }
        Ok(())
    }

    /// Evaluate one rule variant; returns projected head rows plus (when
    /// provenance capture is on) the body tuples behind each row.
    ///
    /// `delta_rows == None` makes the delta predicate read its full table
    /// (used for body-less variants, aggregates, and view recomputation).
    #[allow(clippy::type_complexity)]
    fn eval_variant(
        &mut self,
        rule: &CompiledRule,
        variant: &Variant,
        delta_rows: Option<&[Row]>,
        _ctx: &mut TickCtx,
    ) -> Result<(Vec<Row>, Option<Vec<Vec<(String, Row)>>>)> {
        let mut envs: Vec<Vec<Option<Value>>> = Vec::new();
        let mut env = vec![None; rule.nslots];
        let mut sup = SupportSink::new(self.prov_on);
        self.exec_ops(
            rule,
            &variant.ops,
            0,
            variant.delta_pred,
            delta_rows,
            &mut env,
            &mut envs,
            &mut sup,
        )?;
        // Project heads (non-aggregate rules only reach here).
        let mut out = Vec::with_capacity(envs.len());
        for env in &envs {
            let mut row = Vec::with_capacity(rule.head_args.len());
            for arg in &rule.head_args {
                match arg {
                    CHeadArg::Expr(e) => row.push(eval_cexpr(e, env, &self.builtins)?),
                    CHeadArg::Agg(_, _) => {
                        return Err(OverlogError::Eval(format!(
                            "internal: aggregate rule `{}` evaluated as plain rule",
                            rule.label
                        )))
                    }
                }
            }
            out.push(Arc::new(row));
        }
        // Emission order follows the delta's arrival order (the outermost
        // ready dimension): within-tick key overwrites keep last-writer-wins
        // along the event stream. Inner join dimensions come from hash-map
        // lookups, so their relative order carries no semantics with or
        // without planner reordering.
        Ok((out, sup.into_supports()))
    }

    /// Recursive nested-loop execution of a scheduled op sequence.
    #[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
    fn exec_ops(
        &mut self,
        rule: &CompiledRule,
        ops: &[Op],
        oi: usize,
        delta_pred: Option<usize>,
        delta_rows: Option<&[Row]>,
        env: &mut Vec<Option<Value>>,
        out: &mut Vec<Vec<Option<Value>>>,
        sup: &mut SupportSink,
    ) -> Result<()> {
        if oi == ops.len() {
            out.push(env.clone());
            if sup.enabled {
                sup.out.push(sup.cur.clone());
            }
            return Ok(());
        }
        match &ops[oi] {
            Op::Assign(slot, e) => {
                let v = eval_cexpr(e, env, &self.builtins)?;
                let prev = env[*slot].replace(v);
                self.exec_ops(rule, ops, oi + 1, delta_pred, delta_rows, env, out, sup)?;
                env[*slot] = prev;
                Ok(())
            }
            Op::Filter(e) => {
                if eval_cexpr(e, env, &self.builtins)?.truthy() {
                    self.exec_ops(rule, ops, oi + 1, delta_pred, delta_rows, env, out, sup)?;
                }
                Ok(())
            }
            Op::NegScan { table, pats } => {
                let matched = self.probe(table, pats, env)?;
                if !matched {
                    self.exec_ops(rule, ops, oi + 1, delta_pred, delta_rows, env, out, sup)?;
                }
                Ok(())
            }
            Op::Scan {
                table,
                pred_idx,
                pats,
            } => {
                let use_delta = delta_pred == Some(*pred_idx) && delta_rows.is_some();
                let candidates: Vec<Row> = if use_delta {
                    delta_rows.expect("use_delta implies delta_rows").to_vec()
                } else {
                    self.candidates(table, pats, env)?
                };
                // Slots bound by this op (for check-vs-bind separation and
                // backtracking).
                let bind_slots: Vec<usize> = pats
                    .iter()
                    .filter_map(|p| match p {
                        Pat::Bind(s) => Some(*s),
                        _ => None,
                    })
                    .collect();
                for row in candidates {
                    if row.len() != pats.len() {
                        continue;
                    }
                    // Bind first, then check (duplicate-variable patterns
                    // reference same-row binds).
                    for (val, pat) in row.iter().zip(pats) {
                        if let Pat::Bind(slot) = pat {
                            env[*slot] = Some(val.clone());
                        }
                    }
                    let mut ok = true;
                    for (val, pat) in row.iter().zip(pats) {
                        if let Pat::Check(e) = pat {
                            if eval_cexpr(e, env, &self.builtins)? != *val {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        if sup.enabled {
                            sup.cur.push((table.clone(), row.clone()));
                        }
                        self.exec_ops(rule, ops, oi + 1, delta_pred, delta_rows, env, out, sup)?;
                        if sup.enabled {
                            sup.cur.pop();
                        }
                    }
                    for s in &bind_slots {
                        env[*s] = None;
                    }
                }
                Ok(())
            }
        }
    }

    /// Candidate rows for a scan, using a maintained index when any check
    /// column is evaluable from the current environment.
    fn candidates(&mut self, table: &str, pats: &[Pat], env: &[Option<Value>]) -> Result<Vec<Row>> {
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for (i, p) in pats.iter().enumerate() {
            if let Pat::Check(e) = p {
                if cexpr_bound(e, env) {
                    cols.push(i);
                    vals.push(eval_cexpr(e, env, &self.builtins)?);
                }
            }
        }
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| OverlogError::unknown_table(table))?;
        Ok(if cols.is_empty() {
            t.scan().cloned().collect()
        } else {
            t.lookup(&cols, &vals)
        })
    }

    /// Does any row match the (fully-bound) patterns?
    fn probe(&mut self, table: &str, pats: &[Pat], env: &[Option<Value>]) -> Result<bool> {
        let rows = self.candidates(table, pats, env)?;
        'row: for row in rows {
            if row.len() != pats.len() {
                continue;
            }
            for (val, pat) in row.iter().zip(pats) {
                match pat {
                    Pat::Wild => {}
                    Pat::Check(e) => {
                        if eval_cexpr(e, env, &self.builtins)? != *val {
                            continue 'row;
                        }
                    }
                    Pat::Bind(_) => {
                        return Err(OverlogError::Eval(
                            "internal: bind pattern in negated scan".into(),
                        ))
                    }
                }
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Full recomputation of an aggregate rule: evaluate the body, group,
    /// fold, and key-overwrite the head table.
    fn eval_aggregate(&mut self, rule: &CompiledRule, ctx: &mut TickCtx) -> Result<()> {
        let t0 = std::time::Instant::now();
        let variant = &rule.variants[0];
        let mut envs: Vec<Vec<Option<Value>>> = Vec::new();
        let mut env = vec![None; rule.nslots];
        // Aggregate provenance records empty inputs: the support of a fold
        // is the whole group, not a single join path.
        let mut sup = SupportSink::new(false);
        self.exec_ops(
            rule,
            &variant.ops,
            0,
            None,
            None,
            &mut env,
            &mut envs,
            &mut sup,
        )?;

        #[derive(Clone)]
        enum Acc {
            Count(i64),
            Sum(Value),
            Min(Value),
            Max(Value),
            Avg(f64, i64),
            Set(std::collections::BTreeSet<Value>),
        }
        let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
        for env in &envs {
            let mut key = Vec::new();
            for arg in &rule.head_args {
                if let CHeadArg::Expr(e) = arg {
                    key.push(eval_cexpr(e, env, &self.builtins)?);
                }
            }
            let accs = groups.entry(key).or_insert_with(|| {
                rule.head_args
                    .iter()
                    .filter_map(|a| match a {
                        CHeadArg::Agg(k, _) => Some(match k {
                            AggKind::Count => Acc::Count(0),
                            AggKind::Sum => Acc::Sum(Value::Int(0)),
                            AggKind::Min => Acc::Min(Value::Null),
                            AggKind::Max => Acc::Max(Value::Null),
                            AggKind::Avg => Acc::Avg(0.0, 0),
                            AggKind::Set => Acc::Set(Default::default()),
                        }),
                        CHeadArg::Expr(_) => None,
                    })
                    .collect()
            });
            let mut ai = 0usize;
            for arg in &rule.head_args {
                if let CHeadArg::Agg(kind, slot) = arg {
                    let input = match slot {
                        Some(s) => env[*s].clone().ok_or_else(|| {
                            OverlogError::Eval(format!(
                                "aggregate input unbound in `{}`",
                                rule.label
                            ))
                        })?,
                        None => Value::Int(1),
                    };
                    match (&mut accs[ai], kind) {
                        (Acc::Count(c), AggKind::Count) => *c += 1,
                        (Acc::Sum(s), AggKind::Sum) => {
                            *s = add_values(s, &input)?;
                        }
                        (Acc::Min(mv), AggKind::Min) => {
                            if *mv == Value::Null || input < *mv {
                                *mv = input;
                            }
                        }
                        (Acc::Max(mv), AggKind::Max) => {
                            if *mv == Value::Null || input > *mv {
                                *mv = input;
                            }
                        }
                        (Acc::Set(set), AggKind::Set) => {
                            set.insert(input);
                        }
                        (Acc::Avg(sum, n), AggKind::Avg) => {
                            *sum += input.as_float().ok_or_else(|| {
                                OverlogError::Eval("avg over non-numeric value".into())
                            })?;
                            *n += 1;
                        }
                        _ => unreachable!("accumulator kinds align with head args"),
                    }
                    ai += 1;
                }
            }
        }
        // Deterministic emission order.
        let mut keys: Vec<Vec<Value>> = groups.keys().cloned().collect();
        keys.sort();
        let mut rows = Vec::with_capacity(keys.len());
        for key in keys {
            let accs = &groups[&key];
            let mut row = Vec::with_capacity(rule.head_args.len());
            let (mut ki, mut ai) = (0usize, 0usize);
            for arg in &rule.head_args {
                match arg {
                    CHeadArg::Expr(_) => {
                        row.push(key[ki].clone());
                        ki += 1;
                    }
                    CHeadArg::Agg(_, _) => {
                        row.push(match &accs[ai] {
                            Acc::Count(c) => Value::Int(*c),
                            Acc::Sum(s) => s.clone(),
                            Acc::Min(v) | Acc::Max(v) => v.clone(),
                            Acc::Avg(sum, n) => {
                                if *n == 0 {
                                    Value::Null
                                } else {
                                    Value::Float(sum / *n as f64)
                                }
                            }
                            Acc::Set(set) => Value::list(set.iter().cloned().collect()),
                        });
                        ai += 1;
                    }
                }
            }
            rows.push(Arc::new(row));
        }
        let res = self.dispatch(rule, rows, None, ctx);
        self.rule_stats[rule.id].eval_ns += t0.elapsed().as_nanos() as u64;
        res
    }

    /// Which view tables must be rebuilt, given the inputs that shrank
    /// (deletions, key-overwrites) and the negated inputs that grew.
    /// With scoping disabled this is all-or-nothing, the pre-analysis
    /// behavior; with scoping on, only views whose transitive dependency
    /// closure intersects the dirty set are affected — and growth skips
    /// the CALM-certified monotonic views entirely, because insertions
    /// were already propagated incrementally by the delta path.
    fn affected_views(&self, shrink: &HashSet<String>, grow: &HashSet<String>) -> HashSet<String> {
        if shrink.is_empty() && grow.is_empty() {
            return HashSet::new();
        }
        if !self.plan.options.scoped_views {
            return self.plan.view_tables.clone();
        }
        let mut out = HashSet::new();
        for (v, deps) in &self.plan.view_deps {
            let shrunk = shrink.contains(v) || deps.iter().any(|d| shrink.contains(d));
            let grown = !self.plan.monotonic_views.contains(v)
                && (grow.contains(v) || deps.iter().any(|d| grow.contains(d)));
            if shrunk || grown {
                out.insert(v.clone());
            }
        }
        out
    }

    /// Clear the `affected` view tables and re-derive them, treating every
    /// other materialized table (bases *and* unaffected views) as stable
    /// seed state.
    fn recompute_views(&mut self, affected: &HashSet<String>, ctx: &mut TickCtx) -> Result<()> {
        self.eval_stats.view_recomputes += 1;
        for v in affected {
            if let Some(t) = self.tables.get_mut(v) {
                t.clear();
            }
        }
        // Seed: full contents of every materialized table that is not
        // being rebuilt *and* is actually consumed by an affected rule's
        // positive body. Negated bodies and aggregate inputs read the live
        // tables directly, so they need no seed rows; everything else is
        // dead weight in the delta maps.
        let mut needed: HashSet<&str> = HashSet::new();
        for rule in self.plan.rules.iter() {
            if rule.is_view && !rule.aggregate && affected.contains(&rule.head_table) {
                for t in &rule.positive_tables {
                    needed.insert(t.as_str());
                }
            }
        }
        let mut delta: HashMap<String, Vec<Row>> = HashMap::new();
        for (name, t) in &self.tables {
            if t.is_event() || affected.contains(name) || !needed.contains(name.as_str()) {
                continue;
            }
            if !t.is_empty() {
                delta.insert(name.clone(), t.scan().cloned().collect());
            }
        }
        let strata: Vec<Vec<usize>> = self.plan.strata.clone();
        let mut added: HashMap<String, Vec<Row>> = delta;
        for stratum in &strata {
            for &rid in stratum {
                let rule = self.plan.rules[rid].clone();
                if rule.is_view && rule.aggregate && affected.contains(&rule.head_table) {
                    // Recompute into the cleared table.
                    self.eval_agg_into(&rule, &mut added, ctx)?;
                }
            }
            let mut round: HashMap<String, Vec<Row>> = added.clone();
            loop {
                if round.values().all(|v| v.is_empty()) {
                    break;
                }
                let current = std::mem::take(&mut round);
                let mut next: HashMap<String, Vec<Row>> = HashMap::new();
                for &rid in stratum {
                    let rule = self.plan.rules[rid].clone();
                    if !rule.is_view || rule.aggregate || !affected.contains(&rule.head_table) {
                        continue;
                    }
                    for variant in &rule.variants {
                        let Some(d) = variant.delta_pred else {
                            continue;
                        };
                        let dtable = &rule.positive_tables[d];
                        let Some(delta_rows) = current.get(dtable) else {
                            continue;
                        };
                        if delta_rows.is_empty() {
                            continue;
                        }
                        let delta_rows = delta_rows.clone();
                        let (rows, sups) =
                            self.eval_variant(&rule, variant, Some(&delta_rows), ctx)?;
                        for (i, row) in rows.into_iter().enumerate() {
                            ctx.derivations += 1;
                            if ctx.derivations > self.budget {
                                return Err(OverlogError::Eval(
                                    "derivation budget exceeded during view recomputation".into(),
                                ));
                            }
                            let t = self.tables.get_mut(&rule.head_table).ok_or_else(|| {
                                OverlogError::unknown_table(rule.head_table.clone())
                            })?;
                            match t.insert(row.clone())? {
                                InsertOutcome::New | InsertOutcome::Replaced(_) => {
                                    let inputs: &[(String, Row)] = sups
                                        .as_ref()
                                        .and_then(|s| s.get(i))
                                        .map(|v| v.as_slice())
                                        .unwrap_or(&[]);
                                    self.record_prov(&rule, &row, inputs);
                                    added
                                        .entry(rule.head_table.clone())
                                        .or_default()
                                        .push(row.clone());
                                    next.entry(rule.head_table.clone()).or_default().push(row);
                                }
                                InsertOutcome::Duplicate => {}
                            }
                        }
                    }
                }
                round = next;
            }
        }
        Ok(())
    }

    /// Aggregate recomputation used inside `recompute_views`.
    fn eval_agg_into(
        &mut self,
        rule: &CompiledRule,
        added: &mut HashMap<String, Vec<Row>>,
        ctx: &mut TickCtx,
    ) -> Result<()> {
        // Reuse eval_aggregate but capture its insertions via a fresh ctx.
        let mut sub = TickCtx::new();
        self.eval_aggregate(rule, &mut sub)?;
        ctx.derivations += sub.derivations;
        for (t, rows) in sub.added {
            added.entry(t).or_default().extend(rows);
        }
        Ok(())
    }
}

fn cexpr_bound(e: &CExpr, env: &[Option<Value>]) -> bool {
    match e {
        CExpr::Lit(_) => true,
        CExpr::Slot(s) => env.get(*s).map(|v| v.is_some()).unwrap_or(false),
        CExpr::Binary(_, a, b) => cexpr_bound(a, env) && cexpr_bound(b, env),
        CExpr::Unary(_, a) => cexpr_bound(a, env),
        CExpr::Call(_, args) | CExpr::List(args) => args.iter().all(|a| cexpr_bound(a, env)),
    }
}

fn add_values(a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(*y))),
        _ => {
            let (x, y) = (
                a.as_float()
                    .ok_or_else(|| OverlogError::Eval(format!("sum over non-numeric {a}")))?,
                b.as_float()
                    .ok_or_else(|| OverlogError::Eval(format!("sum over non-numeric {b}")))?,
            );
            Ok(Value::Float(x + y))
        }
    }
}

fn raw_str(v: &Value) -> String {
    match v {
        Value::Str(s) | Value::Addr(s) => s.to_string(),
        other => other.to_string(),
    }
}

/// Evaluate a compiled expression against an environment.
pub fn eval_cexpr(e: &CExpr, env: &[Option<Value>], builtins: &Builtins) -> Result<Value> {
    match e {
        CExpr::Lit(v) => Ok(v.clone()),
        CExpr::Slot(s) => env
            .get(*s)
            .and_then(|v| v.clone())
            .ok_or_else(|| OverlogError::Eval(format!("unbound variable slot {s}"))),
        CExpr::Unary(op, a) => {
            let v = eval_cexpr(a, env, builtins)?;
            match op {
                UnOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(OverlogError::Eval(format!("cannot negate {other}"))),
                },
                UnOp::Not => Ok(Value::Bool(!v.truthy())),
            }
        }
        CExpr::Binary(op, a, b) => {
            // Short-circuit boolean operators.
            if *op == BinOp::And {
                let va = eval_cexpr(a, env, builtins)?;
                if !va.truthy() {
                    return Ok(Value::Bool(false));
                }
                return Ok(Value::Bool(eval_cexpr(b, env, builtins)?.truthy()));
            }
            if *op == BinOp::Or {
                let va = eval_cexpr(a, env, builtins)?;
                if va.truthy() {
                    return Ok(Value::Bool(true));
                }
                return Ok(Value::Bool(eval_cexpr(b, env, builtins)?.truthy()));
            }
            let va = eval_cexpr(a, env, builtins)?;
            let vb = eval_cexpr(b, env, builtins)?;
            match op {
                BinOp::Eq => Ok(Value::Bool(va == vb)),
                BinOp::Ne => Ok(Value::Bool(va != vb)),
                BinOp::Lt => Ok(Value::Bool(va < vb)),
                BinOp::Le => Ok(Value::Bool(va <= vb)),
                BinOp::Gt => Ok(Value::Bool(va > vb)),
                BinOp::Ge => Ok(Value::Bool(va >= vb)),
                BinOp::Concat => match (&va, &vb) {
                    (Value::List(x), Value::List(y)) => {
                        let mut out = x.to_vec();
                        out.extend(y.iter().cloned());
                        Ok(Value::list(out))
                    }
                    _ => Ok(Value::str(format!("{}{}", raw_str(&va), raw_str(&vb)))),
                },
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    arith(*op, &va, &vb)
                }
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        CExpr::Call(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_cexpr(a, env, builtins)?);
            }
            builtins.call(f, &vals)
        }
        CExpr::List(items) => {
            let mut vals = Vec::with_capacity(items.len());
            for i in items {
                vals.push(eval_cexpr(i, env, builtins)?);
            }
            Ok(Value::list(vals))
        }
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return match op {
            BinOp::Add => Ok(Value::Int(x.wrapping_add(*y))),
            BinOp::Sub => Ok(Value::Int(x.wrapping_sub(*y))),
            BinOp::Mul => Ok(Value::Int(x.wrapping_mul(*y))),
            BinOp::Div => {
                if *y == 0 {
                    Err(OverlogError::Eval("integer division by zero".into()))
                } else {
                    Ok(Value::Int(x.wrapping_div(*y)))
                }
            }
            BinOp::Mod => {
                if *y == 0 {
                    Err(OverlogError::Eval("integer modulo by zero".into()))
                } else {
                    Ok(Value::Int(x.wrapping_rem(*y)))
                }
            }
            _ => unreachable!("arith called with arithmetic op"),
        };
    }
    let (x, y) = (
        a.as_float()
            .ok_or_else(|| OverlogError::Eval(format!("arithmetic on non-number {a}")))?,
        b.as_float()
            .ok_or_else(|| OverlogError::Eval(format!("arithmetic on non-number {b}")))?,
    );
    Ok(match op {
        BinOp::Add => Value::Float(x + y),
        BinOp::Sub => Value::Float(x - y),
        BinOp::Mul => Value::Float(x * y),
        BinOp::Div => Value::Float(x / y),
        BinOp::Mod => Value::Float(x % y),
        _ => unreachable!("arith called with arithmetic op"),
    })
}
