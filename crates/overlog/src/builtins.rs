//! Builtin function registry.
//!
//! JOL let Overlog rules call out to Java methods; this runtime replaces
//! that escape hatch with a registry of named Rust functions. The standard
//! library below covers everything the BOOM programs need (string
//! manipulation for path handling, stable hashing for partitioning, list
//! helpers for chunk sets).

use crate::error::{OverlogError, Result};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Signature of a builtin function.
pub type BuiltinFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// The names of the standard library: pure functions of their arguments
/// with no hidden state. Both the planner and the shard-safety analysis
/// consult this list — a pure call may be reordered across joins and
/// evaluated concurrently, while a host-registered builtin (paxos's
/// `qid()` draws from a counter) may be stateful and pins its rule to
/// the serial, source-order schedule.
pub const PURE_BUILTINS: &[&str] = &[
    "tostr",
    "toint",
    "tofloat",
    "toaddr",
    "strlen",
    "substr",
    "startswith",
    "dirname",
    "basename",
    "hash",
    "hashmod",
    "abs",
    "min2",
    "max2",
    "size",
    "nth",
    "contains",
    "append",
    "pick",
    "ifelse",
];

/// A name → function map with the standard library pre-registered.
#[derive(Clone)]
pub struct Builtins {
    fns: HashMap<String, BuiltinFn>,
}

impl std::fmt::Debug for Builtins {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("Builtins").field("fns", &names).finish()
    }
}

fn eval_err(msg: impl Into<String>) -> OverlogError {
    OverlogError::Eval(msg.into())
}

macro_rules! builtin {
    ($map:expr, $name:expr, $arity:expr, $f:expr) => {{
        let name: &str = $name;
        let arity: usize = $arity;
        let f = $f;
        let wrapped: BuiltinFn = Arc::new(move |args: &[Value]| {
            if args.len() != arity {
                return Err(eval_err(format!(
                    "{name} expects {arity} argument(s), got {}",
                    args.len()
                )));
            }
            f(args)
        });
        $map.insert(name.to_string(), wrapped);
    }};
}

/// Deterministic FNV-1a hash of a value (stable across runs and platforms,
/// unlike `DefaultHasher`). Used by the partitioned-NameNode revision.
pub fn stable_hash(v: &Value) -> u64 {
    fn feed(h: &mut u64, bytes: &[u8]) {
        for b in bytes {
            *h ^= u64::from(*b);
            *h = h.wrapping_mul(0x100000001b3);
        }
    }
    fn go(h: &mut u64, v: &Value) {
        match v {
            Value::Null => feed(h, b"\x00"),
            Value::Bool(b) => feed(h, &[1, u8::from(*b)]),
            Value::Int(i) => {
                feed(h, b"\x02");
                feed(h, &i.to_le_bytes());
            }
            Value::Float(f) => {
                feed(h, b"\x03");
                feed(h, &f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                feed(h, b"\x04");
                feed(h, s.as_bytes());
            }
            Value::Addr(s) => {
                feed(h, b"\x05");
                feed(h, s.as_bytes());
            }
            Value::List(l) => {
                feed(h, b"\x06");
                for item in l.iter() {
                    go(h, item);
                }
            }
        }
    }
    let mut h = 0xcbf29ce484222325u64;
    go(&mut h, v);
    h
}

impl Default for Builtins {
    fn default() -> Self {
        Self::standard()
    }
}

impl Builtins {
    /// The standard library.
    pub fn standard() -> Self {
        let mut m: HashMap<String, BuiltinFn> = HashMap::new();

        // --- conversions ---
        builtin!(m, "tostr", 1, |a: &[Value]| {
            Ok(match &a[0] {
                Value::Str(s) => Value::Str(s.clone()),
                Value::Addr(s) => Value::Str(s.clone()),
                other => Value::str(other.to_string()),
            })
        });
        builtin!(m, "toint", 1, |a: &[Value]| {
            match &a[0] {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => Ok(Value::Int(*f as i64)),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| eval_err(format!("toint: cannot parse `{s}`"))),
                Value::Bool(b) => Ok(Value::Int(i64::from(*b))),
                other => Err(eval_err(format!("toint: bad operand {other}"))),
            }
        });
        builtin!(m, "tofloat", 1, |a: &[Value]| {
            a[0].as_float()
                .map(Value::Float)
                .ok_or_else(|| eval_err(format!("tofloat: bad operand {}", a[0])))
        });
        builtin!(m, "toaddr", 1, |a: &[Value]| {
            match &a[0] {
                Value::Addr(s) => Ok(Value::Addr(s.clone())),
                Value::Str(s) => Ok(Value::Addr(s.clone())),
                other => Err(eval_err(format!("toaddr: bad operand {other}"))),
            }
        });

        // --- strings ---
        builtin!(m, "strlen", 1, |a: &[Value]| {
            a[0].as_str()
                .map(|s| Value::Int(s.chars().count() as i64))
                .ok_or_else(|| eval_err("strlen: not a string"))
        });
        builtin!(m, "substr", 3, |a: &[Value]| {
            let s = a[0]
                .as_str()
                .ok_or_else(|| eval_err("substr: not a string"))?;
            let start = a[1].as_int().ok_or_else(|| eval_err("substr: bad start"))? as usize;
            let len = a[2].as_int().ok_or_else(|| eval_err("substr: bad len"))? as usize;
            Ok(Value::str(
                s.chars().skip(start).take(len).collect::<String>(),
            ))
        });
        builtin!(m, "startswith", 2, |a: &[Value]| {
            let (s, p) = (
                a[0].as_str()
                    .ok_or_else(|| eval_err("startswith: not a string"))?,
                a[1].as_str()
                    .ok_or_else(|| eval_err("startswith: not a string"))?,
            );
            Ok(Value::Bool(s.starts_with(p)))
        });
        // Parent directory of a slash-separated path ("" for the root).
        builtin!(m, "dirname", 1, |a: &[Value]| {
            let s = a[0]
                .as_str()
                .ok_or_else(|| eval_err("dirname: not a string"))?;
            Ok(Value::str(match s.rfind('/') {
                Some(0) | None => "/",
                Some(i) => &s[..i],
            }))
        });
        builtin!(m, "basename", 1, |a: &[Value]| {
            let s = a[0]
                .as_str()
                .ok_or_else(|| eval_err("basename: not a string"))?;
            Ok(Value::str(match s.rfind('/') {
                Some(i) => &s[i + 1..],
                None => s,
            }))
        });

        // --- hashing & arithmetic helpers ---
        builtin!(m, "hash", 1, |a: &[Value]| {
            Ok(Value::Int(
                (stable_hash(&a[0]) & 0x7fff_ffff_ffff_ffff) as i64,
            ))
        });
        builtin!(m, "hashmod", 2, |a: &[Value]| {
            let md = a[1]
                .as_int()
                .ok_or_else(|| eval_err("hashmod: bad modulus"))?;
            if md <= 0 {
                return Err(eval_err("hashmod: modulus must be positive"));
            }
            Ok(Value::Int((stable_hash(&a[0]) % md as u64) as i64))
        });
        builtin!(m, "abs", 1, |a: &[Value]| {
            match &a[0] {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(eval_err(format!("abs: bad operand {other}"))),
            }
        });
        builtin!(m, "min2", 2, |a: &[Value]| {
            Ok(if a[0] <= a[1] {
                a[0].clone()
            } else {
                a[1].clone()
            })
        });
        builtin!(m, "max2", 2, |a: &[Value]| {
            Ok(if a[0] >= a[1] {
                a[0].clone()
            } else {
                a[1].clone()
            })
        });

        // --- lists ---
        builtin!(m, "size", 1, |a: &[Value]| {
            a[0].as_list()
                .map(|l| Value::Int(l.len() as i64))
                .ok_or_else(|| eval_err("size: not a list"))
        });
        builtin!(m, "nth", 2, |a: &[Value]| {
            let l = a[0].as_list().ok_or_else(|| eval_err("nth: not a list"))?;
            let i = a[1].as_int().ok_or_else(|| eval_err("nth: bad index"))?;
            usize::try_from(i)
                .ok()
                .and_then(|i| l.get(i))
                .cloned()
                .ok_or_else(|| eval_err(format!("nth: index {i} out of bounds (len {})", l.len())))
        });
        builtin!(m, "contains", 2, |a: &[Value]| {
            let l = a[0]
                .as_list()
                .ok_or_else(|| eval_err("contains: not a list"))?;
            Ok(Value::Bool(l.contains(&a[1])))
        });
        builtin!(m, "append", 2, |a: &[Value]| {
            let l = a[0]
                .as_list()
                .ok_or_else(|| eval_err("append: not a list"))?;
            let mut out = l.to_vec();
            out.push(a[1].clone());
            Ok(Value::list(out))
        });

        // Deterministic pseudo-random choice of `k` elements from a list,
        // keyed by a seed value (used for chunk placement: different seeds
        // spread replicas across nodes, same seed reproduces the choice).
        builtin!(m, "pick", 3, |a: &[Value]| {
            let l = a[0].as_list().ok_or_else(|| eval_err("pick: not a list"))?;
            let k = a[1].as_int().ok_or_else(|| eval_err("pick: bad k"))? as usize;
            let seed = &a[2];
            let mut scored: Vec<(u64, &Value)> = l
                .iter()
                .map(|item| {
                    (
                        stable_hash(&Value::list(vec![seed.clone(), item.clone()])),
                        item,
                    )
                })
                .collect();
            scored.sort_by(|x, y| x.0.cmp(&y.0).then_with(|| x.1.cmp(y.1)));
            Ok(Value::list(
                scored.into_iter().take(k).map(|(_, v)| v.clone()).collect(),
            ))
        });

        // --- misc ---
        builtin!(m, "ifelse", 3, |a: &[Value]| {
            Ok(if a[0].truthy() {
                a[1].clone()
            } else {
                a[2].clone()
            })
        });

        Builtins { fns: m }
    }

    /// Register (or replace) a builtin.
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.fns.insert(name.to_string(), Arc::new(f));
    }

    /// Invoke a builtin by name.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value> {
        match self.fns.get(name) {
            Some(f) => f(args),
            None => Err(eval_err(format!("unknown builtin function `{name}`"))),
        }
    }

    /// Whether a builtin with this name exists.
    pub fn has(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let b = Builtins::standard();
        assert_eq!(b.call("tostr", &[Value::Int(5)]).unwrap(), Value::str("5"));
        assert_eq!(
            b.call("toint", &[Value::str(" 42 ")]).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            b.call("tofloat", &[Value::Int(2)]).unwrap(),
            Value::Float(2.0)
        );
        assert!(b.call("toint", &[Value::str("x")]).is_err());
    }

    #[test]
    fn path_helpers() {
        let b = Builtins::standard();
        assert_eq!(
            b.call("dirname", &[Value::str("/a/b/c")]).unwrap(),
            Value::str("/a/b")
        );
        assert_eq!(
            b.call("dirname", &[Value::str("/a")]).unwrap(),
            Value::str("/")
        );
        assert_eq!(
            b.call("basename", &[Value::str("/a/b/c")]).unwrap(),
            Value::str("c")
        );
    }

    #[test]
    fn stable_hash_is_stable_and_spread() {
        let a = stable_hash(&Value::str("/some/path"));
        let b = stable_hash(&Value::str("/some/path"));
        let c = stable_hash(&Value::str("/some/patj"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hashmod_bounds() {
        let b = Builtins::standard();
        for i in 0..100 {
            let v = b
                .call("hashmod", &[Value::Int(i), Value::Int(4)])
                .unwrap()
                .as_int()
                .unwrap();
            assert!((0..4).contains(&v));
        }
        assert!(b.call("hashmod", &[Value::Int(1), Value::Int(0)]).is_err());
    }

    #[test]
    fn list_builtins() {
        let b = Builtins::standard();
        let l = Value::list(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(
            b.call("size", std::slice::from_ref(&l)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            b.call("nth", &[l.clone(), Value::Int(1)]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            b.call("contains", &[l.clone(), Value::Int(2)]).unwrap(),
            Value::Bool(true)
        );
        let l2 = b.call("append", &[l, Value::Int(3)]).unwrap();
        assert_eq!(b.call("size", &[l2]).unwrap(), Value::Int(3));
        assert!(b
            .call("nth", &[Value::list(vec![]), Value::Int(0)])
            .is_err());
    }

    #[test]
    fn arity_checked() {
        let b = Builtins::standard();
        assert!(b.call("strlen", &[]).is_err());
        assert!(b.call("nope", &[]).is_err());
    }

    #[test]
    fn custom_registration_overrides() {
        let mut b = Builtins::standard();
        b.register("strlen", |_| Ok(Value::Int(-1)));
        assert_eq!(
            b.call("strlen", &[Value::str("abc")]).unwrap(),
            Value::Int(-1)
        );
    }
}
