//! Materialized tables: primary-key storage plus maintained secondary
//! indexes used by the rule evaluator's join lookups.

use crate::ast::{TableDecl, TableKind};
use crate::error::{OverlogError, Result};
use crate::fx::FxHashMap;
use crate::value::{Row, Value};
use std::collections::hash_map::Entry;

/// Outcome of inserting a row into a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The row is new.
    New,
    /// A row with the same primary key but different contents was replaced
    /// (JOL's key-overwrite update semantics). Carries the displaced row.
    Replaced(Row),
    /// An identical row was already present; no change.
    Duplicate,
}

/// Borrowed candidate rows for a scan: either one index bucket or the
/// whole table. Lets the evaluator iterate join candidates without
/// cloning them into a `Vec<Row>` first (the zero-copy hot path).
pub enum Candidates<'a> {
    /// Rows of one secondary-index bucket (or a delta slice).
    Slice(std::slice::Iter<'a, Row>),
    /// Every stored row (full scan).
    All(std::collections::hash_map::Values<'a, Vec<Value>, Row>),
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a Row;

    fn next(&mut self) -> Option<&'a Row> {
        match self {
            Candidates::Slice(it) => it.next(),
            Candidates::All(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Candidates::Slice(it) => it.size_hint(),
            Candidates::All(it) => it.size_hint(),
        }
    }
}

/// One stored relation.
///
/// Rows are stored in a primary-key map (`keys(...)` columns from the
/// declaration, or the whole row when no key was declared). Secondary
/// indexes over arbitrary column sets are created lazily by the evaluator
/// and maintained on every mutation.
#[derive(Debug)]
pub struct Table {
    def: TableDecl,
    rows: FxHashMap<Vec<Value>, Row>,
    indexes: FxHashMap<Vec<usize>, FxHashMap<Vec<Value>, Vec<Row>>>,
}

impl Table {
    /// Create an empty table from its declaration.
    pub fn new(def: TableDecl) -> Self {
        Table {
            def,
            rows: FxHashMap::default(),
            indexes: FxHashMap::default(),
        }
    }

    /// The table's declaration.
    pub fn def(&self) -> &TableDecl {
        &self.def
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// True for event tables.
    pub fn is_event(&self) -> bool {
        self.def.kind == TableKind::Event
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Extract the primary-key columns of a row.
    fn key_of(&self, row: &Row) -> Vec<Value> {
        match &self.def.keys {
            Some(cols) => cols.iter().map(|&c| row[c].clone()).collect(),
            None => row.as_ref().clone(),
        }
    }

    /// Validate arity and declared types.
    pub fn typecheck(&self, row: &Row) -> Result<()> {
        if row.len() != self.def.arity() {
            return Err(OverlogError::ArityMismatch {
                table: self.def.name.clone(),
                expected: self.def.arity(),
                got: row.len(),
                rule: None,
                span: crate::ast::Span::default(),
            });
        }
        for (i, (tag, v)) in self.def.types.iter().zip(row.iter()).enumerate() {
            if !tag.admits(v) {
                return Err(OverlogError::TypeMismatch {
                    table: self.def.name.clone(),
                    col: i,
                    expected: tag.to_string(),
                    got: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Coerce a row to declared column types: columns declared `Addr`
    /// convert string values into addresses, so address joins never fail
    /// on representation (string literals in facts, computed strings).
    /// Public so the runtime can record *coerced* rows in its delta sets —
    /// a delta row must compare equal to the stored row.
    pub fn coerce(&self, row: Row) -> Row {
        let needs = self
            .def
            .types
            .iter()
            .zip(row.iter())
            .any(|(t, v)| *t == crate::value::TypeTag::Addr && matches!(v, Value::Str(_)));
        if !needs {
            return row;
        }
        let converted: Vec<Value> = self
            .def
            .types
            .iter()
            .zip(row.iter())
            .map(|(t, v)| match (t, v) {
                (crate::value::TypeTag::Addr, Value::Str(s)) => Value::Addr(s.clone()),
                _ => v.clone(),
            })
            .collect();
        std::sync::Arc::new(converted)
    }

    /// Insert a row with primary-key overwrite semantics.
    pub fn insert(&mut self, row: Row) -> Result<InsertOutcome> {
        self.typecheck(&row)?;
        let row = self.coerce(row);
        let key = self.key_of(&row);
        match self.rows.entry(key) {
            Entry::Occupied(mut e) => {
                if *e.get() == row {
                    Ok(InsertOutcome::Duplicate)
                } else {
                    let old = e.insert(row.clone());
                    self.index_remove(&old);
                    self.index_add(&row);
                    Ok(InsertOutcome::Replaced(old))
                }
            }
            Entry::Vacant(e) => {
                e.insert(row.clone());
                self.index_add(&row);
                Ok(InsertOutcome::New)
            }
        }
    }

    /// Delete an exact row. Returns true when the row was present.
    ///
    /// A row whose key matches but whose contents differ is *not* removed:
    /// deletion rules re-join the current contents, so a mismatch means the
    /// row was already overwritten.
    pub fn delete(&mut self, row: &Row) -> bool {
        let row = &self.coerce(row.clone());
        let key = self.key_of(row);
        if let Some(existing) = self.rows.get(&key) {
            if existing == row {
                self.rows.remove(&key);
                self.index_remove(row);
                return true;
            }
        }
        false
    }

    /// Delete the row stored under `key` (primary-key order), whatever its
    /// non-key contents. Returns the removed row. The incremental view
    /// maintainer uses this to retract a touched key before re-deriving
    /// it — at that point the stored non-key columns are exactly what it
    /// must report retracted, not something it can reconstruct.
    pub fn delete_by_key(&mut self, key: &[Value]) -> Option<Row> {
        let row = self.rows.remove(key)?;
        self.index_remove(&row);
        Some(row)
    }

    /// Remove every row, keeping index definitions.
    pub fn clear(&mut self) {
        self.rows.clear();
        for idx in self.indexes.values_mut() {
            idx.clear();
        }
    }

    /// True when an identical row is stored.
    pub fn contains(&self, row: &Row) -> bool {
        let row = &self.coerce(row.clone());
        let key = self.key_of(row);
        self.rows.get(&key).is_some_and(|r| r == row)
    }

    /// Fetch the row with the given primary key, if any.
    pub fn get_by_key(&self, key: &[Value]) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Iterate all rows (unordered).
    pub fn scan(&self) -> impl Iterator<Item = &Row> {
        self.rows.values()
    }

    /// All rows, sorted (stable output for tests and traces).
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut v: Vec<Row> = self.rows.values().cloned().collect();
        v.sort();
        v
    }

    /// Build the secondary index over `cols` if it does not exist yet.
    /// The evaluator calls this eagerly for every index the plan's join
    /// analysis says a scan will probe, so [`Table::lookup`] works through
    /// `&self` on the hot path.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        debug_assert!(!cols.is_empty());
        if self.indexes.contains_key(cols) {
            return;
        }
        let mut idx: FxHashMap<Vec<Value>, Vec<Row>> = FxHashMap::default();
        for row in self.rows.values() {
            let k: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            idx.entry(k).or_default().push(row.clone());
        }
        self.indexes.insert(cols.to_vec(), idx);
    }

    /// Coerce index probe values in place to declared column types (`Addr`
    /// columns match string probes), mirroring `insert`. Returns true when
    /// any value was rewritten: a coerced probe can match bucket rows the
    /// evaluator's per-row pattern recheck would reject (`Str != Addr`
    /// under rank comparison), so such buckets are *not* recheck-exempt.
    pub fn coerce_probe(&self, cols: &[usize], vals: &mut [Value]) -> bool {
        let mut coerced = false;
        for (&c, v) in cols.iter().zip(vals.iter_mut()) {
            if let (Some(crate::value::TypeTag::Addr), Value::Str(s)) = (self.def.types.get(c), &v)
            {
                *v = Value::Addr(s.clone());
                coerced = true;
            }
        }
        coerced
    }

    /// Matches for `vals` in the secondary index over `cols`. Returns
    /// `None` when no such index was built (the caller falls back to a
    /// full scan — semantically identical because every check pattern is
    /// re-verified per row). Probe values must already be coerced (see
    /// [`Table::coerce_probe`]).
    pub fn lookup(&self, cols: &[usize], vals: &[Value]) -> Option<&[Row]> {
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert!(!cols.is_empty());
        let idx = self.indexes.get(cols)?;
        Some(idx.get(vals).map(|b| b.as_slice()).unwrap_or(&[]))
    }

    /// Candidate rows for an index probe: the matching bucket when the
    /// index exists, otherwise every row (the full-scan fallback — sound
    /// because scans re-verify each check pattern per row). The second
    /// return is true when the rows come from an exact-match bucket: the
    /// index key equality already proves `row[c] == vals[i]` for every
    /// indexed column, so the evaluator may skip rechecking those columns
    /// (unless the probe was coerced — see [`Table::coerce_probe`]).
    pub fn candidates(&self, cols: &[usize], vals: &[Value]) -> (Candidates<'_>, bool) {
        match self.lookup(cols, vals) {
            Some(bucket) => (Candidates::Slice(bucket.iter()), true),
            None => (self.all_candidates(), false),
        }
    }

    /// Every stored row, as a [`Candidates`] full scan.
    pub fn all_candidates(&self) -> Candidates<'_> {
        Candidates::All(self.rows.values())
    }

    fn index_add(&mut self, row: &Row) {
        for (cols, idx) in &mut self.indexes {
            let k: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            idx.entry(k).or_default().push(row.clone());
        }
    }

    fn index_remove(&mut self, row: &Row) {
        for (cols, idx) in &mut self.indexes {
            let k: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            if let Some(bucket) = idx.get_mut(&k) {
                if let Some(pos) = bucket.iter().position(|r| r == row) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    idx.remove(&k);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::TypeTag;

    fn decl(keys: Option<Vec<usize>>) -> TableDecl {
        TableDecl {
            name: "t".into(),
            keys,
            types: vec![TypeTag::Int, TypeTag::Str],
            kind: TableKind::Materialized,
            span: crate::ast::Span::default(),
        }
    }

    #[test]
    fn insert_new_duplicate_replace() {
        let mut t = Table::new(decl(Some(vec![0])));
        assert_eq!(t.insert(tuple!(1, "a")).unwrap(), InsertOutcome::New);
        assert_eq!(t.insert(tuple!(1, "a")).unwrap(), InsertOutcome::Duplicate);
        match t.insert(tuple!(1, "b")).unwrap() {
            InsertOutcome::Replaced(old) => assert_eq!(old, tuple!(1, "a")),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.len(), 1);
        assert!(t.contains(&tuple!(1, "b")));
        assert!(!t.contains(&tuple!(1, "a")));
    }

    #[test]
    fn whole_row_key_when_no_keys_declared() {
        let mut t = Table::new(decl(None));
        t.insert(tuple!(1, "a")).unwrap();
        t.insert(tuple!(1, "b")).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn typecheck_rejects_bad_rows() {
        let mut t = Table::new(decl(Some(vec![0])));
        assert!(matches!(
            t.insert(tuple!(1)).unwrap_err(),
            OverlogError::ArityMismatch { .. }
        ));
        assert!(matches!(
            t.insert(tuple!("x", "y")).unwrap_err(),
            OverlogError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn delete_requires_exact_match() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "a")).unwrap();
        assert!(!t.delete(&tuple!(1, "b")));
        assert!(t.delete(&tuple!(1, "a")));
        assert!(t.is_empty());
        assert!(!t.delete(&tuple!(1, "a")));
    }

    #[test]
    fn delete_by_key_ignores_nonkey_columns_and_updates_indexes() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "a")).unwrap();
        t.insert(tuple!(2, "b")).unwrap();
        t.ensure_index(&[1]);
        let gone = t.delete_by_key(&[Value::Int(1)]).expect("row stored");
        assert_eq!(gone, tuple!(1, "a"), "removed row is returned verbatim");
        assert!(t.delete_by_key(&[Value::Int(1)]).is_none());
        assert_eq!(t.len(), 1);
        assert_eq!(hits(&t, &[1], &[Value::str("b")]), 1);
        assert!(
            t.lookup(&[1], &[Value::str("a")]).unwrap().is_empty(),
            "secondary index dropped the removed row"
        );
    }

    fn hits(t: &Table, cols: &[usize], vals: &[Value]) -> usize {
        t.lookup(cols, vals).expect("index built").len()
    }

    #[test]
    fn secondary_index_tracks_mutations() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "x")).unwrap();
        t.insert(tuple!(2, "x")).unwrap();
        t.insert(tuple!(3, "y")).unwrap();
        assert!(t.lookup(&[1], &[Value::str("x")]).is_none(), "not built");
        t.ensure_index(&[1]);
        assert_eq!(hits(&t, &[1], &[Value::str("x")]), 2);
        // Mutate after the index exists; it must stay consistent.
        t.insert(tuple!(2, "y")).unwrap(); // replace 2,"x" -> 2,"y"
        t.delete(&tuple!(1, "x"));
        assert_eq!(hits(&t, &[1], &[Value::str("x")]), 0);
        assert_eq!(hits(&t, &[1], &[Value::str("y")]), 2);
        t.insert(tuple!(9, "x")).unwrap();
        assert_eq!(hits(&t, &[1], &[Value::str("x")]), 1);
    }

    #[test]
    fn clear_keeps_indexes_working() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "x")).unwrap();
        t.ensure_index(&[1]);
        t.clear();
        assert!(t.is_empty());
        t.insert(tuple!(2, "x")).unwrap();
        assert_eq!(hits(&t, &[1], &[Value::str("x")]), 1);
    }

    #[test]
    fn get_by_key() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "a")).unwrap();
        assert_eq!(t.get_by_key(&[Value::Int(1)]), Some(&tuple!(1, "a")));
        assert_eq!(t.get_by_key(&[Value::Int(2)]), None);
    }

    #[test]
    fn sorted_rows_is_deterministic() {
        let mut t = Table::new(decl(None));
        t.insert(tuple!(2, "b")).unwrap();
        t.insert(tuple!(1, "a")).unwrap();
        let rows = t.sorted_rows();
        assert_eq!(rows[0], tuple!(1, "a"));
        assert_eq!(rows[1], tuple!(2, "b"));
    }
}
