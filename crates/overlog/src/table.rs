//! Materialized tables: primary-key storage plus maintained secondary
//! indexes used by the rule evaluator's join lookups.

use crate::ast::{TableDecl, TableKind};
use crate::error::{OverlogError, Result};
use crate::fx::FxHashMap;
use crate::value::{Row, Value};
use std::collections::hash_map::Entry;
use std::sync::Arc;

/// Outcome of inserting a row into a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The row is new.
    New,
    /// A row with the same primary key but different contents was replaced
    /// (JOL's key-overwrite update semantics). Carries the displaced row.
    Replaced(Row),
    /// An identical row was already present; no change.
    Duplicate,
}

/// Borrowed candidate rows for a scan: either one index bucket or the
/// whole table. Lets the evaluator iterate join candidates without
/// cloning them into a `Vec<Row>` first (the zero-copy hot path).
pub enum Candidates<'a> {
    /// Rows of one secondary-index bucket (or a delta slice).
    Slice(std::slice::Iter<'a, Row>),
    /// Every stored row (full scan).
    All(std::collections::hash_map::Values<'a, Vec<Value>, Row>),
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a Row;

    fn next(&mut self) -> Option<&'a Row> {
        match self {
            Candidates::Slice(it) => it.next(),
            Candidates::All(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Candidates::Slice(it) => it.size_hint(),
            Candidates::All(it) => it.size_hint(),
        }
    }
}

/// One stored relation.
///
/// Rows are stored in a primary-key map (`keys(...)` columns from the
/// declaration, or the whole row when no key was declared). Secondary
/// indexes over arbitrary column sets are created lazily by the evaluator
/// and maintained on every mutation.
#[derive(Debug)]
pub struct Table {
    def: TableDecl,
    rows: FxHashMap<Vec<Value>, Row>,
    indexes: FxHashMap<Vec<usize>, FxHashMap<Vec<Value>, Vec<Row>>>,
    /// Typed twins of `indexes` over all-`int` column sets, keyed by raw
    /// `i64`s instead of `Vec<Value>` — the compiled kernels' hash-join
    /// probes hash machine integers, not tagged values. Built only for
    /// column sets a kernel probes (see [`Table::ensure_int_index`]) and
    /// maintained in lockstep with the generic index (same push /
    /// `swap_remove` sequence), so a typed bucket iterates its rows in
    /// exactly the order the generic bucket would — the emission-order
    /// identity the byte-identical-state gate depends on. Rows with a
    /// `null` in a key column are excluded: `null` never equals an `int`
    /// probe, and non-`int` probes fall back to the generic index.
    int_indexes: FxHashMap<Vec<usize>, IntIndex>,
}

/// A typed `i64` twin index. The single-column layout stores its key
/// inline (one machine word to hash, no heap deref on key compare);
/// multi-column probes key by the full tuple.
#[derive(Debug)]
enum IntIndex {
    /// Index over exactly one column, keyed by the raw value.
    One(FxHashMap<i64, Vec<Row>>),
    /// Index over two or more columns, keyed by the probe tuple.
    Many(FxHashMap<Vec<i64>, Vec<Row>>),
}

impl IntIndex {
    fn clear(&mut self) {
        match self {
            IntIndex::One(m) => m.clear(),
            IntIndex::Many(m) => m.clear(),
        }
    }
}

impl Table {
    /// Create an empty table from its declaration.
    pub fn new(def: TableDecl) -> Self {
        Table {
            def,
            rows: FxHashMap::default(),
            indexes: FxHashMap::default(),
            int_indexes: FxHashMap::default(),
        }
    }

    /// The table's declaration.
    pub fn def(&self) -> &TableDecl {
        &self.def
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// True for event tables.
    pub fn is_event(&self) -> bool {
        self.def.kind == TableKind::Event
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Extract the primary-key columns of a row.
    fn key_of(&self, row: &Row) -> Vec<Value> {
        match &self.def.keys {
            Some(cols) => cols.iter().map(|&c| row[c].clone()).collect(),
            None => row.as_ref().clone(),
        }
    }

    /// Validate arity and declared types.
    pub fn typecheck(&self, row: &Row) -> Result<()> {
        if row.len() != self.def.arity() {
            return Err(OverlogError::ArityMismatch {
                table: self.def.name.clone(),
                expected: self.def.arity(),
                got: row.len(),
                rule: None,
                span: crate::ast::Span::default(),
            });
        }
        for (i, (tag, v)) in self.def.types.iter().zip(row.iter()).enumerate() {
            if !tag.admits(v) {
                return Err(OverlogError::TypeMismatch {
                    table: self.def.name.clone(),
                    col: i,
                    expected: tag.to_string(),
                    got: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Coerce a row to declared column types: columns declared `Addr`
    /// convert string values into addresses, so address joins never fail
    /// on representation (string literals in facts, computed strings).
    /// Public so the runtime can record *coerced* rows in its delta sets —
    /// a delta row must compare equal to the stored row.
    pub fn coerce(&self, row: Row) -> Row {
        let needs = self
            .def
            .types
            .iter()
            .zip(row.iter())
            .any(|(t, v)| *t == crate::value::TypeTag::Addr && matches!(v, Value::Str(_)));
        if !needs {
            return row;
        }
        let converted: Vec<Value> = self
            .def
            .types
            .iter()
            .zip(row.iter())
            .map(|(t, v)| match (t, v) {
                (crate::value::TypeTag::Addr, Value::Str(s)) => Value::Addr(s.clone()),
                _ => v.clone(),
            })
            .collect();
        std::sync::Arc::new(converted)
    }

    /// Insert a row with primary-key overwrite semantics.
    pub fn insert(&mut self, row: Row) -> Result<InsertOutcome> {
        self.typecheck(&row)?;
        let row = self.coerce(row);
        let key = self.key_of(&row);
        match self.rows.entry(key) {
            Entry::Occupied(mut e) => {
                if *e.get() == row {
                    Ok(InsertOutcome::Duplicate)
                } else {
                    let old = e.insert(row.clone());
                    self.index_remove(&old);
                    self.index_add(&row);
                    Ok(InsertOutcome::Replaced(old))
                }
            }
            Entry::Vacant(e) => {
                e.insert(row.clone());
                self.index_add(&row);
                Ok(InsertOutcome::New)
            }
        }
    }

    /// Delete an exact row. Returns true when the row was present.
    ///
    /// A row whose key matches but whose contents differ is *not* removed:
    /// deletion rules re-join the current contents, so a mismatch means the
    /// row was already overwritten.
    pub fn delete(&mut self, row: &Row) -> bool {
        let row = &self.coerce(row.clone());
        let key = self.key_of(row);
        if let Some(existing) = self.rows.get(&key) {
            if existing == row {
                self.rows.remove(&key);
                self.index_remove(row);
                return true;
            }
        }
        false
    }

    /// Delete the row stored under `key` (primary-key order), whatever its
    /// non-key contents. Returns the removed row. The incremental view
    /// maintainer uses this to retract a touched key before re-deriving
    /// it — at that point the stored non-key columns are exactly what it
    /// must report retracted, not something it can reconstruct.
    pub fn delete_by_key(&mut self, key: &[Value]) -> Option<Row> {
        let row = self.rows.remove(key)?;
        self.index_remove(&row);
        Some(row)
    }

    /// Remove every row, keeping index definitions.
    pub fn clear(&mut self) {
        self.rows.clear();
        for idx in self.indexes.values_mut() {
            idx.clear();
        }
        for idx in self.int_indexes.values_mut() {
            idx.clear();
        }
    }

    /// True when an identical row is stored.
    pub fn contains(&self, row: &Row) -> bool {
        let row = &self.coerce(row.clone());
        let key = self.key_of(row);
        self.rows.get(&key).is_some_and(|r| r == row)
    }

    /// Fetch the row with the given primary key, if any.
    pub fn get_by_key(&self, key: &[Value]) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Iterate all rows (unordered).
    pub fn scan(&self) -> impl Iterator<Item = &Row> {
        self.rows.values()
    }

    /// All rows, sorted (stable output for tests and traces).
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut v: Vec<Row> = self.rows.values().cloned().collect();
        v.sort();
        v
    }

    /// Build the secondary index over `cols` if it does not exist yet.
    /// The evaluator calls this eagerly for every index the plan's join
    /// analysis says a scan will probe, so [`Table::lookup`] works through
    /// `&self` on the hot path.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        debug_assert!(!cols.is_empty());
        if self.indexes.contains_key(cols) {
            return;
        }
        let mut idx: FxHashMap<Vec<Value>, Vec<Row>> = FxHashMap::default();
        for row in self.rows.values() {
            let k: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            idx.entry(k).or_default().push(row.clone());
        }
        self.indexes.insert(cols.to_vec(), idx);
    }

    /// Coerce index probe values in place to declared column types (`Addr`
    /// columns match string probes), mirroring `insert`. Returns true when
    /// any value was rewritten: a coerced probe can match bucket rows the
    /// evaluator's per-row pattern recheck would reject (`Str != Addr`
    /// under rank comparison), so such buckets are *not* recheck-exempt.
    pub fn coerce_probe(&self, cols: &[usize], vals: &mut [Value]) -> bool {
        let mut coerced = false;
        for (&c, v) in cols.iter().zip(vals.iter_mut()) {
            if let (Some(crate::value::TypeTag::Addr), Value::Str(s)) = (self.def.types.get(c), &v)
            {
                *v = Value::Addr(s.clone());
                coerced = true;
            }
        }
        coerced
    }

    /// Matches for `vals` in the secondary index over `cols`. Returns
    /// `None` when no such index was built (the caller falls back to a
    /// full scan — semantically identical because every check pattern is
    /// re-verified per row). Probe values must already be coerced (see
    /// [`Table::coerce_probe`]).
    pub fn lookup(&self, cols: &[usize], vals: &[Value]) -> Option<&[Row]> {
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert!(!cols.is_empty());
        let idx = self.indexes.get(cols)?;
        Some(idx.get(vals).map(|b| b.as_slice()).unwrap_or(&[]))
    }

    /// Candidate rows for an index probe: the matching bucket when the
    /// index exists, otherwise every row (the full-scan fallback — sound
    /// because scans re-verify each check pattern per row). The second
    /// return is true when the rows come from an exact-match bucket: the
    /// index key equality already proves `row[c] == vals[i]` for every
    /// indexed column, so the evaluator may skip rechecking those columns
    /// (unless the probe was coerced — see [`Table::coerce_probe`]).
    pub fn candidates(&self, cols: &[usize], vals: &[Value]) -> (Candidates<'_>, bool) {
        match self.lookup(cols, vals) {
            Some(bucket) => (Candidates::Slice(bucket.iter()), true),
            None => (self.all_candidates(), false),
        }
    }

    /// Every stored row, as a [`Candidates`] full scan.
    pub fn all_candidates(&self) -> Candidates<'_> {
        Candidates::All(self.rows.values())
    }

    fn index_add(&mut self, row: &Row) {
        for (cols, idx) in &mut self.indexes {
            let k: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            idx.entry(k).or_default().push(row.clone());
        }
        for (cols, idx) in &mut self.int_indexes {
            match idx {
                IntIndex::One(m) => {
                    if let Some(k) = row[cols[0]].as_int() {
                        m.entry(k).or_default().push(row.clone());
                    }
                }
                IntIndex::Many(m) => {
                    if let Some(k) = int_key(cols, row) {
                        m.entry(k).or_default().push(row.clone());
                    }
                }
            }
        }
    }

    fn index_remove(&mut self, row: &Row) {
        for (cols, idx) in &mut self.indexes {
            let k: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            if let Some(bucket) = idx.get_mut(&k) {
                if let Some(pos) = bucket.iter().position(|r| r == row) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    idx.remove(&k);
                }
            }
        }
        for (cols, idx) in &mut self.int_indexes {
            match idx {
                IntIndex::One(m) => {
                    if let Some(k) = row[cols[0]].as_int() {
                        bucket_remove(m, &k, row);
                    }
                }
                IntIndex::Many(m) => {
                    if let Some(k) = int_key(cols, row) {
                        bucket_remove(m, &k, row);
                    }
                }
            }
        }
    }

    /// Build the typed `i64`-keyed twin of the secondary index over
    /// `cols` if it does not exist yet. The caller (the runtime, when it
    /// installs a plan with compiled kernels) only requests this for
    /// column sets declared all-`int`, where a typed bucket provably
    /// holds the same rows in the same order as the generic one.
    pub fn ensure_int_index(&mut self, cols: &[usize]) {
        debug_assert!(!cols.is_empty());
        if self.int_indexes.contains_key(cols) {
            return;
        }
        let mut idx = if cols.len() == 1 {
            IntIndex::One(FxHashMap::default())
        } else {
            IntIndex::Many(FxHashMap::default())
        };
        if let Some(generic) = self.indexes.get(cols) {
            // A generic index over the same columns already exists (the
            // runtime always ensures it first). Clone its buckets verbatim
            // so within-bucket row order — which fixes emission order and
            // therefore within-tick overwrite winners — is identical to
            // what the interpreted probe path iterates. Buckets whose key
            // holds a non-`int` (a `null`) stay generic-only: an integer
            // probe can never select them.
            for (vkey, bucket) in generic {
                let k: Option<Vec<i64>> = vkey.iter().map(Value::as_int).collect();
                if let Some(k) = k {
                    match &mut idx {
                        IntIndex::One(m) => {
                            m.insert(k[0], bucket.clone());
                        }
                        IntIndex::Many(m) => {
                            m.insert(k, bucket.clone());
                        }
                    }
                }
            }
        } else {
            for row in self.rows.values() {
                if let Some(k) = int_key(cols, row) {
                    match &mut idx {
                        IntIndex::One(m) => m.entry(k[0]).or_default().push(row.clone()),
                        IntIndex::Many(m) => m.entry(k).or_default().push(row.clone()),
                    }
                }
            }
        }
        self.int_indexes.insert(cols.to_vec(), idx);
    }

    /// Matches for the raw-integer probe `key` in the typed index over
    /// `cols`. `None` when no typed index was built (the caller falls
    /// back to [`Table::lookup`]).
    pub fn lookup_int(&self, cols: &[usize], key: &[i64]) -> Option<&[Row]> {
        debug_assert_eq!(cols.len(), key.len());
        let bucket = match self.int_indexes.get(cols)? {
            IntIndex::One(m) => m.get(&key[0]),
            IntIndex::Many(m) => m.get(key),
        };
        Some(bucket.map(|b| b.as_slice()).unwrap_or(&[]))
    }

    /// Snapshot the table into its typed columnar representation, one
    /// column per declared attribute, rows in storage (`scan`) order.
    pub fn columnar(&self) -> ColumnStore {
        ColumnStore::from_row_iter(self.def.arity(), self.rows.values())
    }
}

/// The all-`int` index key of `row` over `cols`, or `None` when some key
/// column holds a non-integer (such rows are never in a typed index).
fn int_key(cols: &[usize], row: &Row) -> Option<Vec<i64>> {
    cols.iter().map(|&c| row[c].as_int()).collect()
}

/// Remove one occurrence of `row` from the bucket at `key`, dropping the
/// bucket when it empties — the same `swap_remove` sequence the generic
/// index uses, so both stay order-aligned.
fn bucket_remove<K: std::hash::Hash + Eq + Clone>(
    idx: &mut FxHashMap<K, Vec<Row>>,
    key: &K,
    row: &Row,
) {
    if let Some(bucket) = idx.get_mut(key) {
        if let Some(pos) = bucket.iter().position(|r| r == row) {
            bucket.swap_remove(pos);
        }
        if bucket.is_empty() {
            idx.remove(key);
        }
    }
}

// ---------------------------------------------------------------------------
// Columnar representation
// ---------------------------------------------------------------------------

/// One typed column of a [`ColumnStore`]: a dense `i64` vector when every
/// value is an integer, dictionary-interned `u32` codes when every value
/// is a string, and a tagged-`Value` vector otherwise. The typed layouts
/// are what lets the kernels' vectorized gates compare machine words
/// instead of tagged values.
#[derive(Debug, Clone)]
pub enum Column {
    /// Every value is `Value::Int`.
    Int(Vec<i64>),
    /// Every value is `Value::Str`: `codes[i]` indexes into `dict`.
    Str {
        codes: Vec<u32>,
        dict: Vec<Arc<str>>,
    },
    /// Mixed or non-scalar values, stored as-is.
    Val(Vec<Value>),
}

impl Column {
    /// Build a column from one attribute of a row slice.
    pub fn from_rows(rows: &[Row], col: usize) -> Column {
        Column::from_values(rows.iter().map(|r| r[col].clone()).collect())
    }

    /// Build a column, picking the densest layout the values admit.
    pub fn from_values(vals: Vec<Value>) -> Column {
        if !vals.is_empty() && vals.iter().all(|v| matches!(v, Value::Int(_))) {
            return Column::Int(vals.iter().map(|v| v.as_int().unwrap()).collect());
        }
        if !vals.is_empty() && vals.iter().all(|v| matches!(v, Value::Str(_))) {
            let mut dict: Vec<Arc<str>> = Vec::new();
            let mut seen: FxHashMap<Arc<str>, u32> = FxHashMap::default();
            let codes = vals
                .iter()
                .map(|v| match v {
                    Value::Str(s) => *seen.entry(s.clone()).or_insert_with(|| {
                        dict.push(s.clone());
                        (dict.len() - 1) as u32
                    }),
                    _ => unreachable!("all-Str checked above"),
                })
                .collect();
            return Column::Str { codes, dict };
        }
        Column::Val(vals)
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(xs) => xs.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Val(vs) => vs.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(xs) => Value::Int(xs[i]),
            Column::Str { codes, dict } => Value::Str(dict[codes[i] as usize].clone()),
            Column::Val(vs) => vs[i].clone(),
        }
    }

    /// Group the column into a value → row-indices map for O(1) gate
    /// selection (shared across every rule variant gating on this column
    /// in a fixpoint round).
    pub fn group(&self) -> ColGroup {
        match self {
            Column::Int(xs) => {
                let mut m: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
                for (i, &x) in xs.iter().enumerate() {
                    m.entry(x).or_default().push(i as u32);
                }
                ColGroup::Int(m)
            }
            Column::Str { codes, dict } => {
                let mut per_code: Vec<Vec<u32>> = vec![Vec::new(); dict.len()];
                for (i, &c) in codes.iter().enumerate() {
                    per_code[c as usize].push(i as u32);
                }
                let m = dict.iter().cloned().zip(per_code.iter().cloned()).collect();
                ColGroup::Str(m)
            }
            Column::Val(vs) => {
                let mut m: FxHashMap<Value, Vec<u32>> = FxHashMap::default();
                for (i, v) in vs.iter().enumerate() {
                    m.entry(v.clone()).or_default().push(i as u32);
                }
                ColGroup::Val(m)
            }
        }
    }
}

/// A column grouped by value: the vectorized form of a `delta_gate` —
/// one pass over the column answers every variant's "which delta rows
/// carry my literal?" with a selection index vector.
#[derive(Debug)]
pub enum ColGroup {
    /// Grouping of a typed integer column.
    Int(FxHashMap<i64, Vec<u32>>),
    /// Grouping of an interned string column.
    Str(FxHashMap<Arc<str>, Vec<u32>>),
    /// Grouping of a mixed column (hash/eq of `Value` handles the
    /// int/float cross-type equivalence exactly).
    Val(FxHashMap<Value, Vec<u32>>),
}

static EMPTY_SEL: [u32; 0] = [];

impl ColGroup {
    /// Row indices whose value equals `v`, in row order. `None` means
    /// this probe type cannot be answered from the typed grouping
    /// without risking a semantic mismatch (a float probe against an
    /// integer column — `Int(2) == Float(2.0)` cross-type equality);
    /// the caller must fall back to a per-row `Value` scan.
    pub fn select(&self, v: &Value) -> Option<&[u32]> {
        match (self, v) {
            (ColGroup::Int(m), Value::Int(i)) => {
                Some(m.get(i).map(|b| b.as_slice()).unwrap_or(&EMPTY_SEL))
            }
            (ColGroup::Int(_), Value::Float(_)) => None,
            // No other variant compares equal to Int: empty selection.
            (ColGroup::Int(_), _) => Some(&EMPTY_SEL),
            (ColGroup::Str(m), Value::Str(s)) => {
                Some(m.get(s).map(|b| b.as_slice()).unwrap_or(&EMPTY_SEL))
            }
            // Nothing cross-compares equal to Str (Addr is a distinct rank).
            (ColGroup::Str(_), _) => Some(&EMPTY_SEL),
            (ColGroup::Val(m), _) => Some(m.get(v).map(|b| b.as_slice()).unwrap_or(&EMPTY_SEL)),
        }
    }
}

/// A typed columnar snapshot of a row set: one [`Column`] per attribute,
/// all the same length, rows addressable by index. Built alongside the
/// row store (never replacing it — the row store's iteration order is
/// part of the engine's observable emission order).
#[derive(Debug, Clone)]
pub struct ColumnStore {
    cols: Vec<Column>,
    len: usize,
}

impl ColumnStore {
    /// Build from a row slice.
    pub fn from_rows(arity: usize, rows: &[Row]) -> ColumnStore {
        ColumnStore {
            cols: (0..arity).map(|c| Column::from_rows(rows, c)).collect(),
            len: rows.len(),
        }
    }

    /// Build from a row iterator (e.g. a table's storage order).
    pub fn from_row_iter<'a>(arity: usize, rows: impl Iterator<Item = &'a Row>) -> ColumnStore {
        let rows: Vec<Row> = rows.cloned().collect();
        ColumnStore::from_rows(arity, &rows)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column for attribute `c`.
    pub fn col(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Materialize every row back out, in store order (the round-trip
    /// inverse of [`ColumnStore::from_rows`]).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len)
            .map(|i| Arc::new(self.cols.iter().map(|c| c.get(i)).collect::<Vec<_>>()))
            .collect()
    }

    /// Row indices where column `c` equals `v`, in row order — a
    /// vectorized selection scan (tight `i64`/code loops on typed
    /// columns, `Value` comparison on the fallback layout).
    pub fn select_eq(&self, c: usize, v: &Value) -> Vec<u32> {
        match (&self.cols[c], v) {
            (Column::Int(xs), Value::Int(p)) => xs
                .iter()
                .enumerate()
                .filter(|(_, x)| *x == p)
                .map(|(i, _)| i as u32)
                .collect(),
            (Column::Str { codes, dict }, Value::Str(p)) => {
                match dict.iter().position(|s| **s == **p) {
                    Some(code) => codes
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c == code as u32)
                        .map(|(i, _)| i as u32)
                        .collect(),
                    None => Vec::new(),
                }
            }
            (col, _) => (0..col.len())
                .filter(|&i| col.get(i) == *v)
                .map(|i| i as u32)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::TypeTag;

    fn decl(keys: Option<Vec<usize>>) -> TableDecl {
        TableDecl {
            name: "t".into(),
            keys,
            types: vec![TypeTag::Int, TypeTag::Str],
            kind: TableKind::Materialized,
            span: crate::ast::Span::default(),
        }
    }

    #[test]
    fn insert_new_duplicate_replace() {
        let mut t = Table::new(decl(Some(vec![0])));
        assert_eq!(t.insert(tuple!(1, "a")).unwrap(), InsertOutcome::New);
        assert_eq!(t.insert(tuple!(1, "a")).unwrap(), InsertOutcome::Duplicate);
        match t.insert(tuple!(1, "b")).unwrap() {
            InsertOutcome::Replaced(old) => assert_eq!(old, tuple!(1, "a")),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.len(), 1);
        assert!(t.contains(&tuple!(1, "b")));
        assert!(!t.contains(&tuple!(1, "a")));
    }

    #[test]
    fn whole_row_key_when_no_keys_declared() {
        let mut t = Table::new(decl(None));
        t.insert(tuple!(1, "a")).unwrap();
        t.insert(tuple!(1, "b")).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn typecheck_rejects_bad_rows() {
        let mut t = Table::new(decl(Some(vec![0])));
        assert!(matches!(
            t.insert(tuple!(1)).unwrap_err(),
            OverlogError::ArityMismatch { .. }
        ));
        assert!(matches!(
            t.insert(tuple!("x", "y")).unwrap_err(),
            OverlogError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn delete_requires_exact_match() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "a")).unwrap();
        assert!(!t.delete(&tuple!(1, "b")));
        assert!(t.delete(&tuple!(1, "a")));
        assert!(t.is_empty());
        assert!(!t.delete(&tuple!(1, "a")));
    }

    #[test]
    fn delete_by_key_ignores_nonkey_columns_and_updates_indexes() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "a")).unwrap();
        t.insert(tuple!(2, "b")).unwrap();
        t.ensure_index(&[1]);
        let gone = t.delete_by_key(&[Value::Int(1)]).expect("row stored");
        assert_eq!(gone, tuple!(1, "a"), "removed row is returned verbatim");
        assert!(t.delete_by_key(&[Value::Int(1)]).is_none());
        assert_eq!(t.len(), 1);
        assert_eq!(hits(&t, &[1], &[Value::str("b")]), 1);
        assert!(
            t.lookup(&[1], &[Value::str("a")]).unwrap().is_empty(),
            "secondary index dropped the removed row"
        );
    }

    fn hits(t: &Table, cols: &[usize], vals: &[Value]) -> usize {
        t.lookup(cols, vals).expect("index built").len()
    }

    #[test]
    fn secondary_index_tracks_mutations() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "x")).unwrap();
        t.insert(tuple!(2, "x")).unwrap();
        t.insert(tuple!(3, "y")).unwrap();
        assert!(t.lookup(&[1], &[Value::str("x")]).is_none(), "not built");
        t.ensure_index(&[1]);
        assert_eq!(hits(&t, &[1], &[Value::str("x")]), 2);
        // Mutate after the index exists; it must stay consistent.
        t.insert(tuple!(2, "y")).unwrap(); // replace 2,"x" -> 2,"y"
        t.delete(&tuple!(1, "x"));
        assert_eq!(hits(&t, &[1], &[Value::str("x")]), 0);
        assert_eq!(hits(&t, &[1], &[Value::str("y")]), 2);
        t.insert(tuple!(9, "x")).unwrap();
        assert_eq!(hits(&t, &[1], &[Value::str("x")]), 1);
    }

    #[test]
    fn clear_keeps_indexes_working() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "x")).unwrap();
        t.ensure_index(&[1]);
        t.clear();
        assert!(t.is_empty());
        t.insert(tuple!(2, "x")).unwrap();
        assert_eq!(hits(&t, &[1], &[Value::str("x")]), 1);
    }

    #[test]
    fn get_by_key() {
        let mut t = Table::new(decl(Some(vec![0])));
        t.insert(tuple!(1, "a")).unwrap();
        assert_eq!(t.get_by_key(&[Value::Int(1)]), Some(&tuple!(1, "a")));
        assert_eq!(t.get_by_key(&[Value::Int(2)]), None);
    }

    #[test]
    fn sorted_rows_is_deterministic() {
        let mut t = Table::new(decl(None));
        t.insert(tuple!(2, "b")).unwrap();
        t.insert(tuple!(1, "a")).unwrap();
        let rows = t.sorted_rows();
        assert_eq!(rows[0], tuple!(1, "a"));
        assert_eq!(rows[1], tuple!(2, "b"));
    }

    fn decl2int(keys: Option<Vec<usize>>) -> TableDecl {
        TableDecl {
            name: "t".into(),
            keys,
            types: vec![TypeTag::Int, TypeTag::Int],
            kind: TableKind::Materialized,
            span: crate::ast::Span::default(),
        }
    }

    #[test]
    fn int_index_mirrors_generic_bucket_order_through_mutations() {
        let mut t = Table::new(decl2int(None));
        t.ensure_index(&[1]);
        t.ensure_int_index(&[1]);
        for i in 0..6 {
            t.insert(tuple!(i, i % 2)).unwrap();
        }
        // Remove from the middle so swap_remove reorders both buckets.
        t.delete(&tuple!(2, 0));
        t.insert(tuple!(8, 0)).unwrap();
        let generic: Vec<Row> = t.lookup(&[1], &[Value::Int(0)]).unwrap().to_vec();
        let typed: Vec<Row> = t.lookup_int(&[1], &[0]).unwrap().to_vec();
        assert_eq!(generic, typed, "typed bucket must match order exactly");
        assert_eq!(t.lookup_int(&[1], &[7]).unwrap(), &[] as &[Row]);
        assert!(t.lookup_int(&[0], &[1]).is_none(), "not built for [0]");
    }

    #[test]
    fn int_index_skips_null_keys() {
        let mut t = Table::new(decl2int(None));
        t.ensure_int_index(&[1]);
        t.insert(tuple!(1, 5)).unwrap();
        t.insert(Arc::new(vec![Value::Int(2), Value::Null]))
            .unwrap();
        assert_eq!(t.lookup_int(&[1], &[5]).unwrap().len(), 1);
        // The null-keyed row lives only in the row store.
        assert_eq!(t.len(), 2);
        t.clear();
        assert_eq!(t.lookup_int(&[1], &[5]).unwrap().len(), 0);
    }

    #[test]
    fn columnar_layouts_and_round_trip() {
        let rows: Vec<Row> = vec![tuple!(1, "a"), tuple!(2, "b"), tuple!(3, "a")];
        let cs = ColumnStore::from_rows(2, &rows);
        assert!(matches!(cs.col(0), Column::Int(_)));
        assert!(matches!(cs.col(1), Column::Str { .. }));
        assert_eq!(cs.to_rows(), rows);
        // Mixed column falls back to the tagged layout.
        let mixed: Vec<Row> = vec![tuple!(1, "a"), Arc::new(vec![Value::Null, Value::str("b")])];
        let cs = ColumnStore::from_rows(2, &mixed);
        assert!(matches!(cs.col(0), Column::Val(_)));
        assert_eq!(cs.to_rows(), mixed);
    }

    #[test]
    fn column_group_select_matches_value_equality() {
        let rows: Vec<Row> = vec![tuple!(1, "a"), tuple!(2, "b"), tuple!(1, "a")];
        let cs = ColumnStore::from_rows(2, &rows);
        let g0 = cs.col(0).group();
        assert_eq!(g0.select(&Value::Int(1)).unwrap(), &[0, 2]);
        assert_eq!(g0.select(&Value::Int(9)).unwrap(), &[] as &[u32]);
        assert_eq!(g0.select(&Value::str("x")).unwrap(), &[] as &[u32]);
        assert!(
            g0.select(&Value::Float(1.0)).is_none(),
            "float probe on int column must force the fallback scan"
        );
        let g1 = cs.col(1).group();
        assert_eq!(g1.select(&Value::str("a")).unwrap(), &[0, 2]);
        assert_eq!(g1.select(&Value::addr("a")).unwrap(), &[] as &[u32]);
        // Mixed columns answer every probe via Value hash/eq.
        let gv = Column::from_values(vec![Value::Int(2), Value::str("a")]).group();
        assert_eq!(gv.select(&Value::Float(2.0)).unwrap(), &[0]);
        // select_eq agrees with group().select on typed columns.
        assert_eq!(cs.select_eq(0, &Value::Int(1)), vec![0, 2]);
        assert_eq!(cs.select_eq(1, &Value::str("b")), vec![1]);
        assert_eq!(cs.select_eq(0, &Value::Float(1.0)), vec![0, 2]);
    }
}
