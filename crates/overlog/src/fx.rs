//! A fast, seed-free hasher for the tick hot path.
//!
//! Table row maps, secondary indexes, and the runtime's dedup sets hash a
//! `Vec<Value>` on every insert and probe; with `std`'s default SipHash
//! that hashing dominates the per-tuple cost. [`FxHasher`] is the classic
//! rotate-xor-multiply word hash (as used by rustc): a few cycles per
//! word, quality that is ample for our short structured keys, and — being
//! seedless — identical across processes, which strengthens rather than
//! weakens the simulator's determinism story. Not DoS-resistant, which is
//! fine: every key hashed here comes from the program under simulation,
//! not from an untrusted network peer.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier with a good bit-dispersion pattern (2^64 / golden ratio).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Rotate-xor-multiply word hasher. See module docs for the trade-offs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold in the tail length so "ab" + "" != "a" + "b".
            self.add(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so `Default` is free).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let rows = [
            crate::tuple!(1, "alpha"),
            crate::tuple!(2, "beta"),
            crate::tuple!(3, 3.5),
        ];
        for r in &rows {
            assert_eq!(hash_of(r), hash_of(r));
        }
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&"ab".to_string()), hash_of(&"ba".to_string()));
        assert_ne!(hash_of(&(1u64, 2u64)), hash_of(&(2u64, 1u64)));
        assert_ne!(hash_of(&vec![1u8, 2, 3]), hash_of(&vec![1u8, 2, 3, 0]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("x".into(), 1);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
