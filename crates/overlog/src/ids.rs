//! Dense table identifiers.
//!
//! The tick hot path must not hash strings: table names are interned to a
//! [`TableId`] (a dense `u32`) when tables are declared, and every
//! tick-path structure — delta logs, dirty sets, stats — is indexed by it.
//! Names survive only at the API boundary and in diagnostics, resolved
//! through the [`TableIds`] interner.

use std::collections::HashMap;

/// Dense identifier of a declared table. Ids are assigned in declaration
/// order, are stable for the lifetime of a runtime (the interner only
/// appends), and index directly into `Vec`-shaped tick-path storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Append-only name ↔ id interner.
#[derive(Debug, Clone, Default)]
pub struct TableIds {
    names: Vec<String>,
    by_name: HashMap<String, TableId>,
}

impl TableIds {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its existing or freshly assigned id.
    pub fn intern(&mut self, name: &str) -> TableId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TableId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Resolve a name to its id, if interned.
    #[inline]
    pub fn get(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Resolve an id back to its name.
    #[inline]
    pub fn name(&self, id: TableId) -> &str {
        &self.names[id.idx()]
    }

    /// Number of interned names (ids are `0..len`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// A set of [`TableId`]s as a compact bitset. Replaces the
/// `HashSet<String>` dirty/membership sets on the tick path: insert,
/// contains and intersection are a couple of word operations, `clear`
/// keeps the allocation, and iteration is in ascending id order
/// (deterministic, unlike hash-set iteration).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdSet {
    words: Vec<u64>,
}

impl IdSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `id`; returns true when it was not already present.
    pub fn insert(&mut self, id: TableId) -> bool {
        let (w, b) = (id.idx() / 64, id.idx() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: TableId) -> bool {
        let (w, b) = (id.idx() / 64, id.idx() % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// Remove every element, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// True when no id is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of ids present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Do the two sets share any id?
    pub fn intersects(&self, other: &IdSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Add every id of `other`.
    pub fn union_with(&mut self, other: &IdSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterate ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TableId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| TableId((wi * 64 + b) as u32))
        })
    }
}

impl FromIterator<TableId> for IdSet {
    fn from_iter<I: IntoIterator<Item = TableId>>(iter: I) -> Self {
        let mut s = IdSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_dense() {
        let mut ids = TableIds::new();
        let a = ids.intern("a");
        let b = ids.intern("b");
        assert_eq!(a, TableId(0));
        assert_eq!(b, TableId(1));
        assert_eq!(ids.intern("a"), a);
        assert_eq!(ids.get("b"), Some(b));
        assert_eq!(ids.get("c"), None);
        assert_eq!(ids.name(a), "a");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn idset_basic_ops() {
        let mut s = IdSet::new();
        assert!(s.insert(TableId(3)));
        assert!(!s.insert(TableId(3)));
        assert!(s.insert(TableId(70)));
        assert!(s.contains(TableId(3)));
        assert!(!s.contains(TableId(4)));
        assert!(s.contains(TableId(70)));
        assert_eq!(s.len(), 2);
        let got: Vec<u32> = s.iter().map(|t| t.0).collect();
        assert_eq!(got, vec![3, 70]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(TableId(70)));
    }

    #[test]
    fn idset_intersects_and_union() {
        let a: IdSet = [TableId(1), TableId(65)].into_iter().collect();
        let b: IdSet = [TableId(2), TableId(65)].into_iter().collect();
        let c: IdSet = [TableId(0)].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(TableId(2)));
    }
}
