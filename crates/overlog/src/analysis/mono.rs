//! Monotonicity / coordination analysis (CALM).
//!
//! The CALM conjecture — consistency as logical monotonicity — says a
//! distributed program whose derivations are monotonic produces the same
//! result under any message ordering, with no coordination. Non-monotonic
//! constructs (negation, aggregation, deletion) are where reordering can
//! change the answer; when such a construct consumes data that arrived
//! over the network, the program has a **point of order**: a place that
//! needs coordination (or a proof it doesn't) to stay deterministic.
//!
//! Two independent axes are reported per table:
//!
//! * **derivation monotonicity** — the rules transitively deriving the
//!   table are free of negation and aggregation, so the table is a
//!   monotonic query of its inputs: it only ever grows as its inputs grow.
//!   (BOOM-FS path resolution is the paper's flagship example.)
//! * **retraction taint** — the table, or something in its derivation
//!   closure, is the target of a deletion rule, so its contents can
//!   shrink across ticks. A table can be a perfectly monotonic *query*
//!   and still retract when its base inputs are deleted.
//!
//! Points of order are computed by forward reachability from the
//! **network inputs** — tables filled by `@`-located rule heads (message
//! channels) and host-driven external event tables — to the inputs of
//! each non-monotonic construct.

use super::{ProgramContext, SourceMap};
use crate::ast::{BodyElem, Rule, Span, TableKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Why a table's derivation is non-monotonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taint {
    /// "negation" or "aggregation".
    pub kind: &'static str,
    /// Label of the rule introducing the construct.
    pub rule: String,
    /// Table the taint entered through (the construct's own head for
    /// direct taint; the tainted body table for inherited taint).
    pub via: String,
}

/// Verdict for one table.
#[derive(Debug, Clone)]
pub struct TableVerdict {
    /// Table name.
    pub table: String,
    /// Derivation closure is negation- and aggregation-free.
    pub monotonic: bool,
    /// The table's *own* deriving rules are pure joins/recursion — it is a
    /// certified monotonic query of its direct inputs, even when the whole
    /// closure is tainted. This is the axis the paper's "path resolution
    /// is monotonic" claim lives on: `fqpath` is a monotone query of
    /// `file`, although file creation itself needs negation.
    pub locally_monotonic: bool,
    /// Why not, when `monotonic` is false.
    pub taint: Option<Taint>,
    /// A deletion rule targets this table or something it derives from.
    pub retractable: bool,
    /// The delete-targeted table retraction flows through.
    pub retract_via: Option<String>,
    /// Reachable from a network input.
    pub network_reachable: bool,
}

/// One place the program needs coordination: a non-monotonic construct
/// consuming network-reachable data.
#[derive(Debug, Clone)]
pub struct PointOfOrder {
    /// "negation", "aggregation" or "deletion".
    pub kind: &'static str,
    /// Label of the rule containing the construct.
    pub rule: String,
    /// The table whose contents the construct decides (rule head, or the
    /// deletion target).
    pub table: String,
    /// The network-reachable body table feeding the construct.
    pub input: String,
    /// A path from a network input to `input` (first element is the
    /// network input; last is `input` itself).
    pub path: Vec<String>,
    /// Span of the contributing rule.
    pub span: Span,
}

/// The whole monotonicity report for a program group.
#[derive(Debug, Clone, Default)]
pub struct MonoReport {
    /// Network inputs, with why each qualifies ("message" for tables
    /// fed by `@`-located heads, "external event" for host-driven events).
    pub network_inputs: Vec<(String, &'static str)>,
    /// Per-table verdicts, sorted by name.
    pub tables: Vec<TableVerdict>,
    /// Points of order, in rule order.
    pub points_of_order: Vec<PointOfOrder>,
}

impl MonoReport {
    /// Verdict for one table, if declared.
    pub fn verdict(&self, table: &str) -> Option<&TableVerdict> {
        self.tables.iter().find(|t| t.table == table)
    }

    /// Tables certified monotonic (derivation axis).
    pub fn monotonic_tables(&self) -> impl Iterator<Item = &str> {
        self.tables
            .iter()
            .filter(|t| t.monotonic)
            .map(|t| t.table.as_str())
    }

    /// Tables whose own rules are certified monotonic queries although the
    /// derivation closure is tainted (taint is inherited, never introduced).
    pub fn certified_queries(&self) -> impl Iterator<Item = &str> {
        self.tables
            .iter()
            .filter(|t| !t.monotonic && t.locally_monotonic)
            .map(|t| t.table.as_str())
    }
}

/// Derivation taint over a rule set: the tables whose derivation closure
/// contains negation or aggregation, each with the first (deterministic)
/// reason found. Standalone so the planner can consult it without a full
/// [`ProgramContext`].
pub fn derivation_taint(rules: &[Rule]) -> BTreeMap<String, Taint> {
    let mut taint: BTreeMap<String, Taint> = BTreeMap::new();
    // Direct taint: the rule's own construct.
    for (i, rule) in rules.iter().enumerate() {
        if rule.delete {
            continue;
        }
        let head = rule.head.table.clone();
        if rule.is_aggregate() && !taint.contains_key(&head) {
            taint.insert(
                head.clone(),
                Taint {
                    kind: "aggregation",
                    rule: rule.label(i),
                    via: head.clone(),
                },
            );
        }
        let negated = rule.body.iter().any(|b| match b {
            BodyElem::Pred(p) => p.negated,
            _ => false,
        });
        if negated && !taint.contains_key(&head) {
            taint.insert(
                head.clone(),
                Taint {
                    kind: "negation",
                    rule: rule.label(i),
                    via: head,
                },
            );
        }
    }
    // Inherited taint: a head deriving from a tainted body table.
    loop {
        let mut changed = false;
        for rule in rules.iter() {
            if rule.delete || taint.contains_key(&rule.head.table) {
                continue;
            }
            for p in rule.positive_predicates() {
                if let Some(t) = taint.get(&p.table) {
                    let inherited = Taint {
                        kind: t.kind,
                        rule: t.rule.clone(),
                        via: p.table.clone(),
                    };
                    taint.insert(rule.head.table.clone(), inherited);
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    taint
}

/// Retraction taint: tables that are delete-targeted, plus everything
/// transitively derived from them. Maps each to the delete-targeted table
/// retraction flows through.
fn retraction_taint(rules: &[Rule]) -> BTreeMap<String, String> {
    let mut via: BTreeMap<String, String> = BTreeMap::new();
    for rule in rules {
        if rule.delete {
            via.entry(rule.head.table.clone())
                .or_insert_with(|| rule.head.table.clone());
        }
    }
    loop {
        let mut changed = false;
        for rule in rules {
            if rule.delete || via.contains_key(&rule.head.table) {
                continue;
            }
            for p in rule.positive_predicates() {
                if via.contains_key(&p.table) {
                    let v = via[&p.table].clone();
                    via.insert(rule.head.table.clone(), v);
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    via
}

/// Network inputs of a context: tables fed by `@`-located rule heads
/// (message channels) and external event tables (host-driven).
fn network_inputs(ctx: &ProgramContext) -> Vec<(String, &'static str)> {
    let mut inputs: BTreeMap<String, &'static str> = BTreeMap::new();
    for rule in &ctx.rules {
        if rule.head.loc.is_some() {
            inputs.insert(rule.head.table.clone(), "message");
        }
    }
    for name in &ctx.external {
        if let Some(d) = ctx.decls.get(name) {
            if d.kind == TableKind::Event {
                inputs.entry(name.clone()).or_insert("external event");
            }
        }
    }
    inputs.into_iter().collect()
}

/// Forward reachability from the network inputs over all rule edges
/// (body table -> head table; for deletion rules the edge targets the
/// deleted table, since a network-driven deletion mutates it). Returns
/// each reachable table's BFS predecessor for path reconstruction.
fn network_reach(
    rules: &[Rule],
    inputs: &[(String, &'static str)],
) -> BTreeMap<String, Option<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for rule in rules {
        for elem in &rule.body {
            if let BodyElem::Pred(p) = elem {
                adj.entry(p.table.as_str())
                    .or_default()
                    .insert(rule.head.table.as_str());
            }
        }
    }
    let mut prev: BTreeMap<String, Option<String>> = BTreeMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for (t, _) in inputs {
        prev.insert(t.clone(), None);
        queue.push_back(t.clone());
    }
    while let Some(t) = queue.pop_front() {
        if let Some(nexts) = adj.get(t.as_str()) {
            for &n in nexts {
                if !prev.contains_key(n) {
                    prev.insert(n.to_string(), Some(t.clone()));
                    queue.push_back(n.to_string());
                }
            }
        }
    }
    prev
}

/// Reconstruct the network path ending at `table`.
fn path_to(table: &str, prev: &BTreeMap<String, Option<String>>) -> Vec<String> {
    let mut path = vec![table.to_string()];
    let mut cur = table.to_string();
    while let Some(Some(p)) = prev.get(&cur) {
        path.push(p.clone());
        cur = p.clone();
    }
    path.reverse();
    path
}

/// Run the full monotonicity analysis over a context. `rule_ok` masks
/// rules that failed the error-level checks (their structure is not
/// trustworthy).
pub fn analyze_mono(ctx: &ProgramContext, rule_ok: &[bool]) -> MonoReport {
    let rules: Vec<Rule> = ctx
        .rules
        .iter()
        .enumerate()
        .filter(|(i, _)| rule_ok.get(*i).copied().unwrap_or(false))
        .map(|(_, r)| r.clone())
        .collect();

    let taint = derivation_taint(&rules);
    let retract = retraction_taint(&rules);
    let inputs = network_inputs(ctx);
    let reach = network_reach(&rules, &inputs);

    let mut names: Vec<&String> = ctx.decls.keys().collect();
    names.sort();
    let tables = names
        .into_iter()
        .map(|name| TableVerdict {
            table: name.clone(),
            monotonic: !taint.contains_key(name),
            // Direct taint records `via == head`; anything else means the
            // table's own rules are clean and the taint flowed in.
            locally_monotonic: taint.get(name).is_none_or(|t| t.via != *name),
            taint: taint.get(name).cloned(),
            retractable: retract.contains_key(name),
            retract_via: retract.get(name).cloned(),
            network_reachable: reach.contains_key(name),
        })
        .collect();

    // Points of order: every non-monotonic construct whose inputs can
    // carry network-derived data.
    let mut points = Vec::new();
    for (i, rule) in rules.iter().enumerate() {
        let label = rule.label(i);
        let mut constructs: Vec<(&'static str, String, Span)> = Vec::new();
        if rule.delete {
            constructs.push(("deletion", rule.head.table.clone(), rule.span));
        } else {
            if rule.is_aggregate() {
                constructs.push(("aggregation", rule.head.table.clone(), rule.head.span));
            }
            for elem in &rule.body {
                if let BodyElem::Pred(p) = elem {
                    if p.negated {
                        constructs.push(("negation", rule.head.table.clone(), p.span));
                    }
                }
            }
        }
        if constructs.is_empty() {
            continue;
        }
        // The construct's inputs: prefer the negated table itself for
        // negation (that is where reordering bites); otherwise any body
        // table.
        let body_tables: Vec<&str> = rule
            .body
            .iter()
            .filter_map(|b| match b {
                BodyElem::Pred(p) => Some(p.table.as_str()),
                _ => None,
            })
            .collect();
        for (kind, table, span) in constructs {
            let candidates: Vec<&str> = if kind == "negation" {
                rule.body
                    .iter()
                    .filter_map(|b| match b {
                        BodyElem::Pred(p) if p.negated => Some(p.table.as_str()),
                        _ => None,
                    })
                    .chain(body_tables.iter().copied())
                    .collect()
            } else {
                body_tables.clone()
            };
            if let Some(input) = candidates.iter().find(|t| reach.contains_key(**t)) {
                points.push(PointOfOrder {
                    kind,
                    rule: label.clone(),
                    table,
                    input: input.to_string(),
                    path: path_to(input, &reach),
                    span,
                });
            }
        }
    }

    MonoReport {
        network_inputs: inputs,
        tables,
        points_of_order: points,
    }
}

/// Render the report as text for `olgcheck analyze`.
pub fn render(report: &MonoReport, map: &SourceMap) -> String {
    let mut s = String::new();
    s.push_str("monotonicity (CALM):\n");
    if report.network_inputs.is_empty() {
        s.push_str("  network inputs: none (program is sealed)\n");
    } else {
        let rendered: Vec<String> = report
            .network_inputs
            .iter()
            .map(|(t, why)| format!("{t} ({why})"))
            .collect();
        s.push_str(&format!("  network inputs: {}\n", rendered.join(", ")));
    }

    let monotonic: Vec<&TableVerdict> = report.tables.iter().filter(|t| t.monotonic).collect();
    let non_monotonic: Vec<&TableVerdict> = report.tables.iter().filter(|t| !t.monotonic).collect();
    s.push_str(&format!(
        "  monotonic tables ({}): {}\n",
        monotonic.len(),
        monotonic
            .iter()
            .map(|t| t.table.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for t in &monotonic {
        if let Some(via) = &t.retract_via {
            s.push_str(&format!(
                "    note: `{}` is a monotonic derivation but retracts via deletions on `{via}`\n",
                t.table
            ));
        }
    }
    s.push_str(&format!(
        "  non-monotonic tables ({}):\n",
        non_monotonic.len()
    ));
    for t in &non_monotonic {
        let taint = t.taint.as_ref().expect("non-monotonic implies taint");
        if taint.via == t.table {
            s.push_str(&format!(
                "    {}: {} in rule `{}`\n",
                t.table, taint.kind, taint.rule
            ));
        } else {
            s.push_str(&format!(
                "    {}: inherits {} (rule `{}`) via `{}`\n",
                t.table, taint.kind, taint.rule, taint.via
            ));
        }
    }

    let certified: Vec<&str> = report.certified_queries().collect();
    if !certified.is_empty() {
        s.push_str(&format!(
            "  certified monotonic queries ({}) — own rules are pure joins/recursion, \
             taint only inherited: {}\n",
            certified.len(),
            certified.join(", ")
        ));
    }

    if report.points_of_order.is_empty() {
        s.push_str("  points of order: none — network-facing derivations are monotonic\n");
    } else {
        s.push_str(&format!(
            "  points of order ({}):\n",
            report.points_of_order.len()
        ));
        for (n, p) in report.points_of_order.iter().enumerate() {
            let (file, line, col) = map.resolve(p.span.start);
            s.push_str(&format!(
                "    {}. {} in rule `{}` decides `{}` from network-reachable `{}`\n",
                n + 1,
                p.kind,
                p.rule,
                p.table,
                p.input
            ));
            s.push_str(&format!(
                "       network path: {}\n       at {file}:{line}:{col}\n",
                p.path.join(" -> ")
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str, external_events: &[&str]) -> MonoReport {
        let mut ctx = ProgramContext::new();
        let mut map = SourceMap::new();
        assert!(ctx.add_source("t.olg", src, &mut map));
        for e in external_events {
            ctx.mark_external(e);
        }
        let rule_ok = vec![true; ctx.rules.len()];
        analyze_mono(&ctx, &rule_ok)
    }

    #[test]
    fn positive_recursion_is_monotonic() {
        let r = report(
            "define(edge, keys(0,1), {Int, Int});
             define(path, keys(0,1), {Int, Int});
             edge(1, 2);
             path(X, Y) :- edge(X, Y);
             path(X, Z) :- edge(X, Y), path(Y, Z);",
            &[],
        );
        assert!(r.verdict("path").unwrap().monotonic);
        assert!(r.points_of_order.is_empty());
    }

    #[test]
    fn aggregation_taints_downstream() {
        let r = report(
            "define(t, keys(0,1), {Int, Int});
             define(c, keys(0), {Int, Int});
             define(d, keys(0), {Int, Int});
             t(1, 2);
             c(X, count<Y>) :- t(X, Y);
             d(X, N) :- c(X, N);",
            &[],
        );
        let c = r.verdict("c").unwrap();
        assert!(!c.monotonic);
        assert!(!c.locally_monotonic, "aggregate is c's own construct");
        let d = r.verdict("d").unwrap();
        assert!(!d.monotonic);
        assert!(
            d.locally_monotonic,
            "d's own rule is a plain copy; taint is inherited"
        );
        assert_eq!(d.taint.as_ref().unwrap().via, "c");
        assert_eq!(r.certified_queries().collect::<Vec<_>>(), vec!["d"]);
        // No network inputs, so no point of order despite the aggregate.
        assert!(r.points_of_order.is_empty());
    }

    #[test]
    fn network_fed_aggregate_is_a_point_of_order() {
        let r = report(
            "define(seen, keys(0), {Int});
             define(best, keys(0), {Int, Int});
             event vote, {String, Int};
             vote(@A, B) :- seen(B), A := \"px1\";
             seen(B) :- vote(_, B);
             best(0, max<B>) :- seen(B);",
            &[],
        );
        assert_eq!(r.network_inputs, vec![("vote".to_string(), "message")]);
        let p = r
            .points_of_order
            .iter()
            .find(|p| p.kind == "aggregation")
            .expect("aggregation point of order");
        assert_eq!(p.table, "best");
        assert_eq!(p.input, "seen");
        assert_eq!(p.path.first().map(String::as_str), Some("vote"));
    }

    #[test]
    fn deletion_marks_retraction_not_derivation() {
        let r = report(
            "define(file, keys(0), {String});
             define(fq, keys(0), {String});
             event rm, {String};
             file(\"/a\");
             fq(P) :- file(P);
             delete file(P) :- rm(P), file(P);",
            &["rm"],
        );
        let fq = r.verdict("fq").unwrap();
        assert!(fq.monotonic, "deletion must not break derivation verdict");
        assert!(fq.retractable);
        assert_eq!(fq.retract_via.as_deref(), Some("file"));
        // rm is an external event -> the deletion is a point of order.
        assert!(r
            .points_of_order
            .iter()
            .any(|p| p.kind == "deletion" && p.table == "file"));
    }

    #[test]
    fn negation_fed_by_network_is_a_point_of_order() {
        let r = report(
            "define(alive, keys(0), {String});
             define(lonely, keys(0), {Int});
             event hb, {String, String};
             hb(@A, N) :- alive(N), A := \"x\";
             alive(N) :- hb(_, N);
             lonely(1) :- alive(_), notin alive(\"ghost\");",
            &[],
        );
        assert!(r
            .points_of_order
            .iter()
            .any(|p| p.kind == "negation" && p.input == "alive"));
    }
}
