//! Range-restriction (safety) checking, shared by the planner and olgcheck.
//!
//! A rule is *safe* when every variable it uses — in the head, in
//! conditions, in assignments, and in negated predicates — is bound by some
//! positive body predicate or by an assignment whose inputs are bound. The
//! check is constructive: [`schedule_order`] produces the greedy join order
//! the evaluator executes (delta predicate first, then every remaining body
//! element as soon as its inputs are bound), and a rule is unsafe exactly
//! when some element can never become ready. The planner follows the
//! returned order when emitting operators, so load-time rejection and
//! standalone analysis cannot disagree.

use crate::ast::{BodyElem, Expr, HeadArg, Rule, Span};
use std::collections::HashSet;

/// A safety violation: the variable that can never be bound, and the source
/// location of the element that needs it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeVar {
    /// The unbound variable (`"_"` for a wildcard in a head position).
    pub var: String,
    /// Span of the blocked body element or of the rule head.
    pub span: Span,
}

/// Free variables of an expression, in first-occurrence order.
pub fn expr_vars(e: &Expr) -> Vec<String> {
    let mut v = Vec::new();
    e.collect_vars(&mut v);
    v
}

/// Does the expression contain a `_` wildcard anywhere?
pub fn contains_wildcard(e: &Expr) -> bool {
    match e {
        Expr::Wildcard => true,
        Expr::Binary(_, a, b) => contains_wildcard(a) || contains_wildcard(b),
        Expr::Unary(_, a) => contains_wildcard(a),
        Expr::Call(_, args) | Expr::ListLit(args) => args.iter().any(contains_wildcard),
        Expr::Lit(_) | Expr::Var(_) => false,
    }
}

/// All variables bound by some positive predicate or by an assignment whose
/// inputs are (transitively) bound.
pub fn bindable_vars(rule: &Rule) -> HashSet<String> {
    let mut bound = HashSet::new();
    // Iterate until fixpoint: assignments may chain.
    loop {
        let before = bound.len();
        for elem in &rule.body {
            match elem {
                BodyElem::Pred(p) if !p.negated => {
                    for a in &p.args {
                        if let Some(v) = a.as_var() {
                            bound.insert(v.to_string());
                        }
                    }
                }
                BodyElem::Assign(v, e) if expr_vars(e).iter().all(|x| bound.contains(x)) => {
                    bound.insert(v.clone());
                }
                _ => {}
            }
        }
        if bound.len() == before {
            break;
        }
    }
    bound
}

/// Span of a body element (conditions and assignments carry no span of
/// their own, so they fall back to the whole rule).
fn elem_span(rule: &Rule, bi: usize) -> Span {
    match &rule.body[bi] {
        BodyElem::Pred(p) => p.span,
        _ => rule.span,
    }
}

/// Greedy ready-element scheduling: compute the order in which the body
/// elements of `rule` run for the semi-naive variant whose `delta_pred`-th
/// positive predicate reads the delta (`None` for body-less variants).
///
/// The delta predicate is hoisted to the front; the remaining elements run
/// in source order as soon as their inputs are bound. Returns body-element
/// indices in execution order, or the first variable that blocks progress.
pub fn schedule_order(rule: &Rule, delta_pred: Option<usize>) -> Result<Vec<usize>, UnsafeVar> {
    // Work list of body element indices, delta predicate hoisted to front.
    let mut order: Vec<usize> = Vec::new();
    if let Some(d) = delta_pred {
        // Find the body index of the d-th positive predicate.
        let mut seen = 0usize;
        for (i, e) in rule.body.iter().enumerate() {
            if let BodyElem::Pred(p) = e {
                if !p.negated {
                    if seen == d {
                        order.push(i);
                    }
                    seen += 1;
                }
            }
        }
    }
    for i in 0..rule.body.len() {
        if !order.contains(&i) {
            order.push(i);
        }
    }

    let mut scheduled = Vec::with_capacity(order.len());
    let mut bound: HashSet<String> = HashSet::new();
    let mut remaining: Vec<usize> = order;
    while !remaining.is_empty() {
        let mut picked = None;
        for (pos, &bi) in remaining.iter().enumerate() {
            let ready = match &rule.body[bi] {
                BodyElem::Pred(p) if !p.negated => {
                    // Non-variable argument expressions must be bound.
                    p.args.iter().all(|a| match a {
                        Expr::Var(_) | Expr::Wildcard => true,
                        other => expr_vars(other).iter().all(|v| bound.contains(v)),
                    })
                }
                BodyElem::Pred(p) => p
                    .args
                    .iter()
                    .flat_map(expr_vars)
                    .all(|v| bound.contains(&v)),
                BodyElem::Cond(e) => expr_vars(e).iter().all(|v| bound.contains(v)),
                BodyElem::Assign(_, e) => expr_vars(e).iter().all(|v| bound.contains(v)),
            };
            if ready {
                picked = Some(pos);
                break;
            }
        }
        let Some(pos) = picked else {
            // Report the first blocked variable for diagnostics.
            let bi = remaining[0];
            let var = match &rule.body[bi] {
                BodyElem::Pred(p) => p
                    .args
                    .iter()
                    .flat_map(expr_vars)
                    .find(|v| !bound.contains(v)),
                BodyElem::Cond(e) | BodyElem::Assign(_, e) => {
                    expr_vars(e).into_iter().find(|v| !bound.contains(v))
                }
            }
            .unwrap_or_else(|| "?".to_string());
            return Err(UnsafeVar {
                var,
                span: elem_span(rule, bi),
            });
        };
        let bi = remaining.remove(pos);
        match &rule.body[bi] {
            BodyElem::Pred(p) if !p.negated => {
                for a in &p.args {
                    if let Some(v) = a.as_var() {
                        bound.insert(v.to_string());
                    }
                }
            }
            BodyElem::Assign(v, _) => {
                bound.insert(v.clone());
            }
            _ => {}
        }
        scheduled.push(bi);
    }
    Ok(scheduled)
}

/// Cost-based ready-element scheduling: the same safety discipline as
/// [`schedule_order`] (only elements whose inputs are bound may run, and
/// the delta predicate runs as early as possible), but among the ready
/// elements the *cheapest* runs next instead of the first in source order.
/// Assignments and conditions are free (binding and pruning early never
/// hurts), negation probes are cheap filters, and a positive scan costs
/// `scan_cost(table, bound_columns)` — the estimated number of rows it
/// yields given which of its columns are already constrained. Ties break
/// to source order, so plans are deterministic.
///
/// Scheduling any ready element keeps every other ready element ready
/// (binding only grows), so this succeeds exactly when [`schedule_order`]
/// does; callers still fall back to the greedy order on error.
pub fn schedule_order_costed<F>(
    rule: &Rule,
    delta_pred: Option<usize>,
    scan_cost: F,
) -> Result<Vec<usize>, UnsafeVar>
where
    F: Fn(&str, &[usize]) -> f64,
{
    // Body index of the delta predicate, if any.
    let delta_bi = delta_pred.and_then(|d| {
        rule.body
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, BodyElem::Pred(p) if !p.negated))
            .nth(d)
            .map(|(i, _)| i)
    });

    let mut scheduled = Vec::with_capacity(rule.body.len());
    let mut bound: HashSet<String> = HashSet::new();
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    while !remaining.is_empty() {
        let mut best: Option<(f64, usize)> = None; // (cost, position in remaining)
        for (pos, &bi) in remaining.iter().enumerate() {
            let cost = match &rule.body[bi] {
                BodyElem::Pred(p) if !p.negated => {
                    let ready = p.args.iter().all(|a| match a {
                        Expr::Var(_) | Expr::Wildcard => true,
                        other => expr_vars(other).iter().all(|v| bound.contains(v)),
                    });
                    if !ready {
                        continue;
                    }
                    if Some(bi) == delta_bi {
                        // The delta is the smallest input by construction:
                        // run it the moment it is ready.
                        f64::NEG_INFINITY
                    } else {
                        let cols: Vec<usize> = p
                            .args
                            .iter()
                            .enumerate()
                            .filter(|(_, a)| match a {
                                Expr::Wildcard => false,
                                Expr::Var(v) => bound.contains(v.as_str()),
                                _ => true, // ready ⇒ the expression is bound
                            })
                            .map(|(i, _)| i)
                            .collect();
                        scan_cost(&p.table, &cols)
                    }
                }
                BodyElem::Pred(p) => {
                    let ready = p
                        .args
                        .iter()
                        .flat_map(expr_vars)
                        .all(|v| bound.contains(&v));
                    if !ready {
                        continue;
                    }
                    0.5 // a cheap existence probe: prune early
                }
                BodyElem::Cond(e) | BodyElem::Assign(_, e) => {
                    if !expr_vars(e).iter().all(|v| bound.contains(v)) {
                        continue;
                    }
                    0.0
                }
            };
            if best.map(|(c, _)| cost < c).unwrap_or(true) {
                best = Some((cost, pos));
            }
        }
        let Some((_, pos)) = best else {
            // Same blocked-variable report as the greedy scheduler.
            let bi = remaining[0];
            let var = match &rule.body[bi] {
                BodyElem::Pred(p) => p
                    .args
                    .iter()
                    .flat_map(expr_vars)
                    .find(|v| !bound.contains(v)),
                BodyElem::Cond(e) | BodyElem::Assign(_, e) => {
                    expr_vars(e).into_iter().find(|v| !bound.contains(v))
                }
            }
            .unwrap_or_else(|| "?".to_string());
            return Err(UnsafeVar {
                var,
                span: elem_span(rule, bi),
            });
        };
        let bi = remaining.remove(pos);
        match &rule.body[bi] {
            BodyElem::Pred(p) if !p.negated => {
                for a in &p.args {
                    if let Some(v) = a.as_var() {
                        bound.insert(v.to_string());
                    }
                }
            }
            BodyElem::Assign(v, _) => {
                bound.insert(v.clone());
            }
            _ => {}
        }
        scheduled.push(bi);
    }
    Ok(scheduled)
}

/// Check that every head argument is bound by the body (and contains no
/// wildcard). Aggregate arguments check their input variable.
pub fn check_head(rule: &Rule) -> Result<(), UnsafeVar> {
    let bound = bindable_vars(rule);
    for arg in &rule.head.args {
        match arg {
            HeadArg::Expr(e) => {
                if contains_wildcard(e) {
                    return Err(UnsafeVar {
                        var: "_".into(),
                        span: rule.head.span,
                    });
                }
                for v in expr_vars(e) {
                    if !bound.contains(&v) {
                        return Err(UnsafeVar {
                            var: v,
                            span: rule.head.span,
                        });
                    }
                }
            }
            HeadArg::Agg(_, Some(v)) => {
                if !bound.contains(v) {
                    return Err(UnsafeVar {
                        var: v.clone(),
                        span: rule.head.span,
                    });
                }
            }
            HeadArg::Agg(_, None) => {}
        }
    }
    Ok(())
}

/// Full safety check of one rule: compute the execution order of every
/// semi-naive variant (one per positive predicate, or a single body-less
/// variant), then check the head. Returns the per-variant orders for the
/// planner to follow.
pub fn check_rule(rule: &Rule) -> Result<Vec<Vec<usize>>, UnsafeVar> {
    let npos = rule.positive_predicates().count();
    let nvariants = npos.max(1);
    let mut orders = Vec::with_capacity(nvariants);
    for d in 0..nvariants {
        let delta_pred = if npos == 0 { None } else { Some(d) };
        orders.push(schedule_order(rule, delta_pred)?);
    }
    check_head(rule)?;
    Ok(orders)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn rule(src: &str) -> Rule {
        parse_program(src).unwrap().rules().next().unwrap().clone()
    }

    #[test]
    fn assignment_chains_bind() {
        let r = rule("p(Z) :- Y := X + 1, q(X), Z := Y * 2;");
        let order = schedule_order(&r, Some(0)).unwrap();
        // q(X) runs first, then Y := X + 1, then Z := Y * 2.
        assert_eq!(order, vec![1, 0, 2]);
        assert!(check_head(&r).is_ok());
    }

    #[test]
    fn unbound_condition_is_unsafe() {
        let r = rule("p(X) :- q(X), Y > 2;");
        let err = schedule_order(&r, Some(0)).unwrap_err();
        assert_eq!(err.var, "Y");
        assert_eq!(err.span, r.span); // conditions fall back to the rule span
    }

    #[test]
    fn unbound_negation_points_at_the_predicate() {
        let r = rule("p(X) :- q(X), notin r(Y);");
        let err = schedule_order(&r, Some(0)).unwrap_err();
        assert_eq!(err.var, "Y");
        let BodyElem::Pred(neg) = &r.body[1] else {
            panic!()
        };
        assert_eq!(err.span, neg.span);
    }

    #[test]
    fn unbound_head_var_reported_with_head_span() {
        let r = rule("p(X, Y) :- q(X);");
        assert!(schedule_order(&r, Some(0)).is_ok());
        let err = check_head(&r).unwrap_err();
        assert_eq!(err.var, "Y");
        assert_eq!(err.span, r.head.span);
    }

    #[test]
    fn costed_order_puts_cheap_scans_first() {
        let cost = |t: &str, _bound: &[usize]| if t == "big" { 1000.0 } else { 2.0 };

        // The cheap table runs before the expensive one (as a generator —
        // plain variable arguments never block readiness).
        let r = rule("p(X) :- e(X), big(X, Y), small(Y, Z);");
        let order = schedule_order_costed(&r, Some(0), cost).unwrap();
        assert_eq!(order, vec![0, 2, 1], "delta first, then cheap, then big");

        // An expression argument pins the scan until its inputs are bound:
        // small cannot run before big binds Y.
        let r = rule("p(X) :- e(X), big(X, Y), small(Y * 1, Z);");
        let order = schedule_order_costed(&r, Some(0), cost).unwrap();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn costed_order_hoists_filters_and_probes() {
        let r = rule("p(X) :- e(X), big(X, Y), X > 3, notin dead(X);");
        let order = schedule_order_costed(&r, Some(0), |_, _| 100.0).unwrap();
        // Filter and negation probe depend only on X: both run before the
        // expensive join.
        assert_eq!(order, vec![0, 2, 3, 1]);
    }

    #[test]
    fn costed_order_fails_like_greedy_on_unsafe_rules() {
        let r = rule("p(X) :- q(X), Y > 2;");
        let err = schedule_order_costed(&r, Some(0), |_, _| 1.0).unwrap_err();
        assert_eq!(err.var, "Y");
    }
}
