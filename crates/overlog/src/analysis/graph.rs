//! Graphviz (DOT) rendering of the rule precedence graph.
//!
//! `olgcheck --graph` emits this for a program group. Materialized tables
//! draw as boxes and event tables as ellipses, each labeled with its
//! stratum; negated and aggregate edges are highlighted (they force strata
//! apart), and edges from deletion/inductive rules — which act across the
//! timestep boundary and do not constrain stratification — are dashed.

use super::stratify::PrecedenceGraph;
use crate::ast::{TableDecl, TableKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Escape a string for a double-quoted DOT identifier.
fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the precedence graph as DOT. `strata` may omit tables (e.g. when
/// stratification failed); those nodes render without a stratum label.
pub fn to_dot(
    graph: &PrecedenceGraph,
    strata: &HashMap<String, usize>,
    decls: &HashMap<String, TableDecl>,
) -> String {
    let mut out = String::from("digraph precedence {\n  rankdir=BT;\n  node [fontsize=10];\n");
    for table in &graph.tables {
        let shape = match decls.get(table).map(|d| d.kind) {
            Some(TableKind::Event) => "ellipse",
            _ => "box",
        };
        let label = match strata.get(table) {
            Some(s) => format!("{table}\\nstratum {s}"),
            None => table.clone(),
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape={shape}, label=\"{label}\"];",
            dot_escape(table)
        );
    }
    for e in &graph.edges {
        let mut attrs: Vec<String> = vec![format!("tooltip=\"{}\"", dot_escape(&e.rule))];
        if e.negated {
            attrs.push("color=red".into());
            attrs.push("label=\"notin\"".into());
        } else if e.aggregate {
            attrs.push("color=blue".into());
            attrs.push("label=\"agg\"".into());
        }
        if !e.constrains {
            attrs.push("style=dashed".into());
        }
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [{}];",
            dot_escape(&e.src),
            dot_escape(&e.dst),
            attrs.join(", ")
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify_all, stratify};
    use crate::parser::parse_program;

    #[test]
    fn dot_output_has_nodes_edges_and_styles() {
        let prog = parse_program(
            "define(a, keys(0), {Int});
             define(b, keys(0), {Int});
             event e, {Int};
             a(X) :- e(X);
             b(X) :- a(X), notin c(X);
             define(c, keys(0), {Int});
             c(X) :- a(X);
             delete a(X) :- b(X), a(X);",
        )
        .unwrap();
        let decls: HashMap<String, TableDecl> = prog
            .declarations()
            .map(|d| (d.name.clone(), d.clone()))
            .collect();
        let rules: Vec<_> = prog.rules().cloned().collect();
        let classes = classify_all(&decls, &rules);
        let graph = stratify::build_graph(&decls, &rules, &classes);
        let strata = stratify::stratify(&graph).unwrap();
        let dot = to_dot(&graph, &strata, &decls);
        assert!(dot.contains("digraph precedence"), "{dot}");
        assert!(dot.contains("\"e\" [shape=ellipse"), "{dot}");
        assert!(dot.contains("\"a\" [shape=box"), "{dot}");
        assert!(dot.contains("stratum"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
        assert!(dot.contains("style=dashed"), "{dot}");
    }
}
