//! Shard-safety analysis: which rule variants can be evaluated over hash
//! partitions of their delta without cross-shard probes?
//!
//! The distributed-query reading of a semi-naive variant is: the round's
//! delta slice is hash-partitioned over N disjoint shards by the columns
//! that determine the head row's placement (its declared primary key), and
//! each shard joins only against its own slice of every other relation. A
//! variant is **shardable** when every probe it performs can be answered
//! locally:
//!
//! * **co-partitioned** — the probed table's declared key columns are all
//!   bound *before* the scan runs by expressions that are pure functions of
//!   the delta row, depending on exactly the delta columns that make up the
//!   shard key. Rows that join then hash to the same shard.
//! * **broadcast** — a probe that does not co-partition can still be
//!   answered locally if the probed relation is provably small (by the
//!   [`CostModel`] estimate) and replicated to every shard, the classic
//!   broadcast-join fallback.
//! * **serial** — anything else: cross-shard probes would be required, or
//!   the rule calls a stateful builtin whose evaluation count and order
//!   must not change.
//!
//! The verdicts drive two consumers. `olgcheck analyze` renders them (and
//! lint W0008 flags hot rules that miss sharding only because of a
//! non-key join attribute). The runtime uses the shard key to partition
//! the delta log across worker threads when `PlanOptions::shards > 1`;
//! its determinism does *not* rest on this analysis (shard outputs are
//! merged back in delta order before any effect is applied — see
//! `runtime.rs`), but only variants free of stateful builtins may run
//! concurrently, which is exactly what a non-serial verdict certifies.

use super::card::CostModel;
use super::ProgramContext;
use crate::ast::{BodyElem, Expr, HeadArg, Rule, Span, TableDecl};
use crate::builtins::PURE_BUILTINS;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Tables at or below this estimated row count may be replicated to every
/// shard (broadcast) instead of co-partitioned.
pub const BROADCAST_MAX_ROWS: f64 = 128.0;

/// The shard-safety verdict for one semi-naive variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardVerdict {
    /// Hash-distributable with zero cross-shard probes: every probed key
    /// co-partitions with the head key on the given delta columns.
    Sharded {
        /// Delta columns whose hash places a row (the shard key).
        key: Vec<usize>,
    },
    /// Distributable after replicating the listed provably-small tables
    /// to every shard.
    Broadcast {
        /// Delta columns whose hash places a row (the shard key).
        key: Vec<usize>,
        /// Tables each shard needs a full copy of, sorted.
        tables: Vec<String>,
    },
    /// Must be evaluated serially.
    Serial {
        /// Why the variant cannot shard.
        reason: String,
        /// True when the *only* obstacle is a join attribute that is not
        /// a function of the delta's key columns (the W0008 rewrite hint);
        /// false for hard blocks like stateful builtins.
        nonkey: bool,
    },
}

impl ShardVerdict {
    /// The shard key, for verdicts that allow concurrent evaluation.
    pub fn key(&self) -> Option<&[usize]> {
        match self {
            ShardVerdict::Sharded { key } | ShardVerdict::Broadcast { key, .. } => Some(key),
            ShardVerdict::Serial { .. } => None,
        }
    }
}

impl fmt::Display for ShardVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardVerdict::Sharded { key } => write!(f, "sharded(key={key:?})"),
            ShardVerdict::Broadcast { key, tables } => {
                write!(f, "broadcast(key={key:?}, tables={})", tables.join("+"))
            }
            ShardVerdict::Serial { reason, .. } => write!(f, "serial: {reason}"),
        }
    }
}

/// Per-plan shard verdicts: one entry per rule, one verdict per semi-naive
/// variant, aligned with `CompiledRule::variants`.
#[derive(Debug, Clone, Default)]
pub struct ShardPlan {
    /// `verdicts[rule_id][variant_index]`.
    pub verdicts: Vec<Vec<ShardVerdict>>,
}

impl ShardPlan {
    /// The shard key of a variant, or `None` when it must run serially.
    pub fn shard_key(&self, rid: usize, vi: usize) -> Option<&[usize]> {
        self.verdicts.get(rid)?.get(vi)?.key()
    }
}

/// Is every builtin call of the expression in the pure standard library?
pub fn expr_reorderable(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Wildcard => true,
        Expr::Binary(_, a, b) => expr_reorderable(a) && expr_reorderable(b),
        Expr::Unary(_, a) => expr_reorderable(a),
        Expr::Call(f, args) => {
            PURE_BUILTINS.contains(&f.as_str()) && args.iter().all(expr_reorderable)
        }
        Expr::ListLit(items) => items.iter().all(expr_reorderable),
    }
}

/// May the planner reorder this rule's body? Only when every body
/// expression calls pure builtins exclusively (a stateful builtin like
/// `qid()` must not change how often or in what order it runs).
pub fn rule_reorderable(rule: &Rule) -> bool {
    rule.body.iter().all(|b| match b {
        BodyElem::Pred(p) => p.args.iter().all(expr_reorderable),
        BodyElem::Cond(e) | BodyElem::Assign(_, e) => expr_reorderable(e),
    })
}

/// The first call to a builtin outside the pure standard library anywhere
/// in the rule (head included — head expressions run once per derived row
/// too), or `None` for a fully pure rule.
pub(crate) fn impure_call(rule: &Rule) -> Option<String> {
    fn find(e: &Expr) -> Option<String> {
        match e {
            Expr::Call(f, args) => {
                if !PURE_BUILTINS.contains(&f.as_str()) {
                    return Some(f.clone());
                }
                args.iter().find_map(find)
            }
            Expr::Binary(_, a, b) => find(a).or_else(|| find(b)),
            Expr::Unary(_, a) => find(a),
            Expr::ListLit(items) => items.iter().find_map(find),
            Expr::Lit(_) | Expr::Var(_) | Expr::Wildcard => None,
        }
    }
    for arg in &rule.head.args {
        if let HeadArg::Expr(e) = arg {
            if let Some(f) = find(e) {
                return Some(f);
            }
        }
    }
    rule.body.iter().find_map(|b| match b {
        BodyElem::Pred(p) => p.args.iter().find_map(find),
        BodyElem::Cond(e) | BodyElem::Assign(_, e) => find(e),
    })
}

/// The columns whose hash places a row of `table`: the declared primary
/// key, or the whole row when no key is declared.
fn placement_cols(decls: &HashMap<String, TableDecl>, table: &str, arity: usize) -> Vec<usize> {
    match decls.get(table).and_then(|d| d.keys.clone()) {
        Some(k) => k,
        None => (0..arity).collect(),
    }
}

/// Delta-purity of an expression under the variable statuses accumulated
/// so far: `Some(cols)` when the value is a pure function of exactly the
/// given delta columns (constants depend on none), `None` when any input
/// is join-bound or unbound.
fn expr_delta_deps(
    e: &Expr,
    status: &HashMap<String, Option<BTreeSet<usize>>>,
) -> Option<BTreeSet<usize>> {
    let mut vars = Vec::new();
    e.collect_vars(&mut vars);
    let mut deps = BTreeSet::new();
    for v in vars {
        deps.extend(status.get(&v)?.as_ref()?.iter().copied());
    }
    Some(deps)
}

/// A whole-rule reason the rule can never shard, independent of which
/// delta variant runs: stateful builtins must see the delta in arrival
/// order on one thread, and aggregate heads are recomputed globally
/// (never through the semi-naive variant path). W0008 stays quiet for
/// these — no join rewrite would help.
pub(crate) fn hard_serial_reason(rule: &Rule) -> Option<String> {
    if let Some(f) = impure_call(rule) {
        return Some(format!("calls stateful builtin `{f}()`"));
    }
    if rule
        .head
        .args
        .iter()
        .any(|a| matches!(a, HeadArg::Agg(_, _)))
    {
        return Some("aggregate head is recomputed as a whole".into());
    }
    None
}

fn serial(reason: impl Into<String>, nonkey: bool) -> ShardVerdict {
    ShardVerdict::Serial {
        reason: reason.into(),
        nonkey,
    }
}

/// Judge one semi-naive variant of a rule, given the execution `order`
/// the planner will emit (body element indices) and which positive
/// predicate reads the delta.
pub fn variant_verdict(
    rule: &Rule,
    order: &[usize],
    delta_pred: Option<usize>,
    decls: &HashMap<String, TableDecl>,
    cost: &CostModel,
) -> ShardVerdict {
    if let Some(reason) = hard_serial_reason(rule) {
        return serial(reason, false);
    }
    let Some(d) = delta_pred else {
        return serial("no positive body predicate to partition", false);
    };
    // Body index of the d-th positive predicate.
    let delta_bi = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, BodyElem::Pred(p) if !p.negated))
        .nth(d)
        .map(|(i, _)| i)
        .expect("delta_pred indexes a positive predicate");
    let delta_table = match &rule.body[delta_bi] {
        BodyElem::Pred(p) => p.table.as_str(),
        _ => unreachable!(),
    };

    // Walk the execution order once, tracking for every bound variable
    // whether it is a pure function of the delta row (and of which delta
    // columns). Probes are judged at the point they run, against exactly
    // the bindings available then.
    let mut status: HashMap<String, Option<BTreeSet<usize>>> = HashMap::new();
    // `(table, key deps)` per non-delta predicate: `Some(cols)` when every
    // placement column is bound pre-scan by a delta-pure expression.
    let mut probes: Vec<(String, Option<BTreeSet<usize>>)> = Vec::new();
    for &bi in order {
        match &rule.body[bi] {
            BodyElem::Pred(p) if bi == delta_bi => {
                for (c, a) in p.args.iter().enumerate() {
                    if let Expr::Var(v) = a {
                        status
                            .entry(v.clone())
                            .or_insert_with(|| Some(BTreeSet::from([c])));
                    }
                }
            }
            BodyElem::Pred(p) => {
                let mut deps: Option<BTreeSet<usize>> = Some(BTreeSet::new());
                for c in placement_cols(decls, &p.table, p.args.len()) {
                    let d = match &p.args[c] {
                        Expr::Wildcard => None,
                        // A variable the probe itself binds has no status
                        // yet and correctly judges as not-covered.
                        Expr::Var(v) => status.get(v).cloned().flatten(),
                        e => expr_delta_deps(e, &status),
                    };
                    match (d, &mut deps) {
                        (Some(cols), Some(acc)) => acc.extend(cols),
                        _ => deps = None,
                    }
                }
                probes.push((p.table.clone(), deps));
                if !p.negated {
                    for a in &p.args {
                        if let Expr::Var(v) = a {
                            status.entry(v.clone()).or_insert(None);
                        }
                    }
                }
            }
            BodyElem::Assign(v, e) => {
                let d = expr_delta_deps(e, &status);
                status.insert(v.clone(), d);
            }
            BodyElem::Cond(_) => {}
        }
    }

    // The shard key: the delta columns the head row's placement columns
    // are computed from. A deletion must identify its exact target row,
    // so every column counts as placement for delete rules.
    let head_cols: Vec<usize> = if rule.delete {
        (0..rule.head.args.len()).collect()
    } else {
        placement_cols(decls, &rule.head.table, rule.head.args.len())
    };
    let mut key: BTreeSet<usize> = BTreeSet::new();
    for c in head_cols {
        match rule.head.args.get(c) {
            Some(HeadArg::Expr(e)) => match expr_delta_deps(e, &status) {
                Some(cols) => key.extend(cols),
                None => {
                    // Not a W0008 candidate: the output key itself comes
                    // from the probed table, so no join rewrite removes the
                    // cross-shard dependency — only a schema change would.
                    return serial(
                        format!(
                            "head key column {c} is join-bound, not a function of \
                             the `{delta_table}` delta"
                        ),
                        false,
                    );
                }
            },
            Some(HeadArg::Agg(_, _)) => {
                return serial(format!("aggregate output in key column {c}"), false)
            }
            None => return serial("head arity mismatch", false),
        }
    }
    if key.is_empty() {
        return serial(
            "shard key is constant (no delta column reaches the head key)",
            false,
        );
    }

    // Every probe must co-partition on exactly the shard key, or be small
    // enough to broadcast.
    let mut tables: Vec<String> = Vec::new();
    for (table, deps) in probes {
        if deps.as_ref() == Some(&key) {
            continue; // co-partitioned
        }
        if cost.table_rows(&table) <= BROADCAST_MAX_ROWS {
            if !tables.contains(&table) {
                tables.push(table);
            }
        } else {
            return serial(
                format!(
                    "probe of `{table}` (~{:.0} rows) does not co-partition with \
                     the `{delta_table}` delta's shard key",
                    cost.table_rows(&table)
                ),
                true,
            );
        }
    }
    let key: Vec<usize> = key.into_iter().collect();
    if tables.is_empty() {
        ShardVerdict::Sharded { key }
    } else {
        tables.sort_unstable();
        ShardVerdict::Broadcast { key, tables }
    }
}

/// Judge every semi-naive variant of a rule. `orders` are the planner's
/// final per-variant execution orders (after any cost-based reordering).
pub fn rule_verdicts(
    rule: &Rule,
    orders: &[Vec<usize>],
    decls: &HashMap<String, TableDecl>,
    cost: &CostModel,
) -> Vec<ShardVerdict> {
    let npos = rule.positive_predicates().count();
    orders
        .iter()
        .enumerate()
        .map(|(d, order)| {
            let delta_pred = (npos > 0).then_some(d);
            variant_verdict(rule, order, delta_pred, decls, cost)
        })
        .collect()
}

/// One rule's entry in the whole-program [`ShardReport`].
#[derive(Debug, Clone)]
pub struct RuleShardReport {
    /// The rule's display label.
    pub label: String,
    /// Head table.
    pub head: String,
    /// Source location of the rule (for annotations).
    pub span: Span,
    /// `(delta table, verdict)` per semi-naive variant, in variant order;
    /// empty when the rule failed the error-level checks.
    pub variants: Vec<(String, ShardVerdict)>,
}

/// Whole-program shard analysis: a verdict for every variant of every
/// rule, mirroring exactly the orders the planner emits under default
/// options (cost-based reordering on).
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Per-rule entries, aligned with `ProgramContext::rules`.
    pub rules: Vec<RuleShardReport>,
}

/// Run the shard-safety pass over a context. `rule_ok` is the error-pass
/// mask; broken rules get an empty entry.
pub fn analyze(ctx: &ProgramContext, rule_ok: &[bool], cost: &CostModel) -> ShardReport {
    let mut rules = Vec::with_capacity(ctx.rules.len());
    for (i, rule) in ctx.rules.iter().enumerate() {
        let label = rule.label(i);
        let head = rule.head.table.clone();
        let mut entry = RuleShardReport {
            label,
            head,
            span: rule.span,
            variants: Vec::new(),
        };
        if rule_ok[i] {
            if let Ok(mut ra) = super::validate_rule(i, rule, &ctx.decls) {
                // Mirror the planner: reorderable rules follow the costed
                // schedule, everything else keeps the greedy source order.
                if rule_reorderable(rule) {
                    let npos = rule.positive_predicates().count();
                    for (d, order) in ra.orders.iter_mut().enumerate() {
                        let delta = (npos > 0).then_some(d);
                        if let Ok(costed) =
                            super::safety::schedule_order_costed(rule, delta, |t, b| {
                                cost.scan_estimate(t, b)
                            })
                        {
                            *order = costed;
                        }
                    }
                }
                let verdicts = rule_verdicts(rule, &ra.orders, &ctx.decls, cost);
                let mut deltas: Vec<String> = rule
                    .positive_predicates()
                    .map(|p| p.table.clone())
                    .collect();
                if deltas.is_empty() {
                    deltas.push("(none)".into());
                }
                entry.variants = deltas.into_iter().zip(verdicts).collect();
            }
        }
        rules.push(entry);
    }
    ShardReport { rules }
}

/// Render the report for `olgcheck analyze` (text format).
pub fn render(report: &ShardReport) -> String {
    let mut s = format!(
        "shard safety (co-partition on the head key; broadcast <= {BROADCAST_MAX_ROWS:.0} \
         estimated rows):\n"
    );
    for r in &report.rules {
        s.push_str(&format!("  rule `{}` -> {}:\n", r.label, r.head));
        if r.variants.is_empty() {
            s.push_str("    skipped (failed error-level checks)\n");
            continue;
        }
        for (delta, v) in &r.variants {
            s.push_str(&format!("    delta {delta}: {v}\n"));
        }
    }
    s
}

/// Render the report as a JSON array (one object per rule), for the
/// machine-readable `olgcheck analyze --format json` output.
pub fn render_json(report: &ShardReport) -> String {
    use super::diag::json_string;
    let mut out = String::from("[");
    for (i, r) in report.rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"head\":{},\"variants\":[",
            json_string(&r.label),
            json_string(&r.head)
        ));
        for (j, (delta, v)) in r.variants.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                ShardVerdict::Sharded { key } => out.push_str(&format!(
                    "{{\"delta\":{},\"verdict\":\"sharded\",\"key\":{key:?}}}",
                    json_string(delta)
                )),
                ShardVerdict::Broadcast { key, tables } => {
                    let ts: Vec<String> = tables.iter().map(|t| json_string(t)).collect();
                    out.push_str(&format!(
                        "{{\"delta\":{},\"verdict\":\"broadcast\",\"key\":{key:?},\
                         \"broadcast\":[{}]}}",
                        json_string(delta),
                        ts.join(",")
                    ));
                }
                ShardVerdict::Serial { reason, nonkey } => out.push_str(&format!(
                    "{{\"delta\":{},\"verdict\":\"serial\",\"reason\":{},\"nonkey\":{nonkey}}}",
                    json_string(delta),
                    json_string(reason)
                )),
            }
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::super::{report, ProgramContext, SourceMap};
    use super::*;

    fn shard_report(src: &str) -> ShardReport {
        let mut ctx = ProgramContext::new();
        let mut map = SourceMap::new();
        assert!(ctx.add_source("t.olg", src, &mut map));
        report(&ctx).shard
    }

    fn verdict(rep: &ShardReport, rule: usize, variant: usize) -> &ShardVerdict {
        &rep.rules[rule].variants[variant].1
    }

    #[test]
    fn pure_event_projection_shards_on_head_key() {
        let rep = shard_report(
            "event e, {Int, Int};
             define(t, keys(0), {Int, Int});
             t(X, Y) :- e(X, Y);",
        );
        assert_eq!(
            verdict(&rep, 0, 0),
            &ShardVerdict::Sharded { key: vec![0] },
            "{rep:?}"
        );
    }

    #[test]
    fn pure_function_of_delta_columns_shards() {
        // The head key is computed from the delta row through a pure
        // builtin chain; the shard key is the underlying delta column.
        let rep = shard_report(
            "event e, {List};
             define(t, keys(0), {Int});
             t(C) :- e(Args), C := toint(nth(Args, 0));",
        );
        assert_eq!(verdict(&rep, 0, 0), &ShardVerdict::Sharded { key: vec![0] });
    }

    #[test]
    fn co_partitioned_join_shards_but_nonkey_probe_is_serial() {
        // Probe key column == head key column: co-partitioned.
        let src = "event e, {Int, Int};
             define(idx, keys(0), {Int, Int});
             define(out, keys(0), {Int, Int});
             idx(X, Y) :- e(X, Y); idx(Y, X) :- e(X, Y);
             idx(X, Y) :- f(X, Y); idx(Y, X) :- f(X, Y); idx(X, X) :- f(X, _);
             event f, {Int, Int};
             out(X, Z) :- e(X, Y), idx(X, Z), Z > Y;";
        let rep = shard_report(src);
        let out_rule = &rep.rules[5];
        assert_eq!(out_rule.variants[0].0, "e");
        assert_eq!(
            out_rule.variants[0].1,
            ShardVerdict::Sharded { key: vec![0] }
        );

        // Same shape, but the probe uses the non-key delta column: idx is
        // too big (5 deriving rules ~ 160 rows) to broadcast -> serial,
        // flagged as a non-key join attribute.
        let src = src.replace("idx(X, Z), Z > Y", "idx(Y, Z), Z > X");
        let rep = shard_report(&src);
        match &rep.rules[5].variants[0].1 {
            ShardVerdict::Serial { nonkey, reason } => {
                assert!(*nonkey, "{reason}");
                assert!(reason.contains("idx"), "{reason}");
            }
            other => panic!("expected serial, got {other}"),
        }
    }

    #[test]
    fn small_probe_becomes_broadcast() {
        let rep = shard_report(
            "event e, {Int, Int};
             define(cfg, keys(0), {Int, Int});
             define(out, keys(0), {Int, Int});
             cfg(1, 10);
             out(X, Z) :- e(X, Y), cfg(Y, Z);",
        );
        assert_eq!(
            verdict(&rep, 0, 0),
            &ShardVerdict::Broadcast {
                key: vec![0],
                tables: vec!["cfg".into()]
            }
        );
    }

    #[test]
    fn stateful_builtin_is_a_hard_serial() {
        let rep = shard_report(
            "event e, {Int};
             event out, {Int, Int};
             out(X, I) :- e(X), I := qid();",
        );
        match verdict(&rep, 0, 0) {
            ShardVerdict::Serial { reason, nonkey } => {
                assert!(reason.contains("qid"), "{reason}");
                assert!(!nonkey);
            }
            other => panic!("expected serial, got {other}"),
        }
    }

    #[test]
    fn bodyless_and_aggregate_rules_are_serial() {
        let rep = shard_report(
            "define(t, keys(0), {Int, Int});
             define(c, keys(0), {Int, Int});
             t(1, 2);
             c(X, count<Y>) :- t(X, Y);",
        );
        // The runtime recomputes aggregate heads globally, never through
        // the semi-naive variant path, so the analysis reports them serial
        // no matter the probe structure.
        match verdict(&rep, 0, 0) {
            ShardVerdict::Serial { reason, nonkey } => {
                assert!(reason.contains("aggregate"), "{reason}");
                assert!(!nonkey);
            }
            other => panic!("expected serial, got {other}"),
        }
    }

    #[test]
    fn every_rule_gets_a_verdict_even_when_broken() {
        let rep = shard_report(
            "define(p, keys(0), {Int});
             p(X) :- q(X);",
        );
        assert_eq!(rep.rules.len(), 1);
        assert!(rep.rules[0].variants.is_empty(), "broken rules are skipped");
    }

    #[test]
    fn render_lists_every_rule() {
        let rep = shard_report(
            "event e, {Int};
             define(t, keys(0), {Int});
             t(X) :- e(X);",
        );
        let s = render(&rep);
        assert!(s.contains("rule `rule#0(t)` -> t"), "{s}");
        assert!(s.contains("delta e: sharded(key=[0])"), "{s}");
        let j = render_json(&rep);
        assert!(j.contains("\"verdict\":\"sharded\""), "{j}");
    }
}
