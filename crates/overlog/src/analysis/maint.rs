//! Maintenance-strategy analysis: which incremental algorithm keeps each
//! view correct under *retractions*?
//!
//! Insertions already propagate incrementally through the semi-naive delta
//! path; what forces the runtime into full view recomputation is shrinkage
//! — deletions, key-overwrites, and growth of negated inputs. This pass
//! classifies every planned view-rule variant by the cheapest maintenance
//! algorithm that is *provably* sound for it:
//!
//! * **counting** — set-semantic select/project over a single positive
//!   predicate, no negation, whole-row-keyed head. Each source row derives
//!   its head rows independently, so a multiplicity count per derived row
//!   maintains the view under weighted `(row, +1/-1)` deltas: a head row
//!   leaves exactly when its support reaches zero.
//! * **support-rederive** — joins, negation, or a keyed head: deleting a
//!   source row can retract head rows other sources still support, so the
//!   runtime deletes the touched head keys and re-derives them from the
//!   current state (DRed-style delete-and-rederive, scoped to the keys the
//!   delta names). Recursive views are flagged: their re-derivation
//!   closure is unbounded, so the runtime falls back to recomputation.
//! * **group-recompute** — aggregates. A delta row names its group key, so
//!   only the touched groups are re-folded; untouched groups keep their
//!   materialized rows.
//! * **full-recompute** — the fallback, with a machine-readable reason
//!   code and a hard-vs-fixable split: `fixable: true` marks views a
//!   schema or rule rewrite could rescue (lint W0010 surfaces the hot
//!   ones), `false` marks structural blocks (stateful builtins, body-less
//!   rules).
//!
//! Verdicts drive two consumers. `olgcheck analyze` renders them per view
//! rule variant; the planner compiles them into a [`MaintPlan`] whose
//! per-view [`ViewMaint`] strategies the runtime executes instead of
//! recomputing (`runtime.rs` falls back per round whenever a dirty input
//! cannot name the touched keys, so determinism never rests on this
//! analysis being complete — only the *speed* does).

use super::ProgramContext;
use crate::ast::{BodyElem, Expr, HeadArg, Predicate, Rule, Span, TableDecl};
use crate::ids::{TableId, TableIds};
use crate::plan::{CExpr, CHeadArg, CompiledRule};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The maintenance verdict for one semi-naive variant of a view rule.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintVerdict {
    /// Weighted multiplicity counting: each delta row's derivations are
    /// independent, a per-row support count decides retraction.
    Counting,
    /// Delete-and-rederive the head keys the delta names, against current
    /// state. Sound under stratified negation; `recursive` marks views
    /// whose re-derivation closure is unbounded (runtime falls back).
    SupportRederive {
        /// Head key columns a delta row determines.
        key: Vec<usize>,
        /// Head table reachable from its own body through view rules.
        recursive: bool,
    },
    /// Re-fold only the aggregate groups the delta touches.
    GroupRecompute {
        /// Head columns forming the group key (the non-aggregate columns).
        group: Vec<usize>,
    },
    /// No incremental strategy applies; the view recomputes wholesale.
    FullRecompute {
        /// Machine-readable reason code (stable across releases):
        /// `impure-builtin`, `no-delta`, `unbound-group-key`,
        /// `unbound-head-key`.
        code: &'static str,
        /// Human-readable explanation.
        reason: String,
        /// True when a schema or rule rewrite could rescue the view (the
        /// W0010 hint); false for structural blocks.
        fixable: bool,
    },
}

impl MaintVerdict {
    /// Is this a fixable full-recompute (the W0010 candidate shape)?
    pub fn fixable_full(&self) -> bool {
        matches!(self, MaintVerdict::FullRecompute { fixable: true, .. })
    }

    /// Does the verdict certify some incremental strategy (counting,
    /// non-recursive rederive, or group recompute)?
    pub fn incremental(&self) -> bool {
        match self {
            MaintVerdict::Counting | MaintVerdict::GroupRecompute { .. } => true,
            MaintVerdict::SupportRederive { recursive, .. } => !recursive,
            MaintVerdict::FullRecompute { .. } => false,
        }
    }
}

impl fmt::Display for MaintVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintVerdict::Counting => write!(f, "counting(weighted row deltas)"),
            MaintVerdict::SupportRederive { key, recursive } => {
                if *recursive {
                    write!(f, "support-rederive(key={key:?}, recursive)")
                } else {
                    write!(f, "support-rederive(key={key:?})")
                }
            }
            MaintVerdict::GroupRecompute { group } => {
                write!(f, "group-recompute(group={group:?})")
            }
            MaintVerdict::FullRecompute {
                code,
                reason,
                fixable,
            } => {
                let fix = if *fixable { ", fixable" } else { "" };
                write!(f, "full-recompute({code}{fix}): {reason}")
            }
        }
    }
}

/// The declared primary key of `table`, or the whole row when unkeyed.
fn placement_cols(decls: &HashMap<String, TableDecl>, table: &str, arity: usize) -> Vec<usize> {
    match decls.get(table).and_then(|d| d.keys.clone()) {
        Some(k) => k,
        None => (0..arity).collect(),
    }
}

/// Is head column `c` a constant or a verbatim column of `pred`'s row?
/// (Only verbatim bindings are *invertible* — the runtime must go from a
/// head key back to the matching source rows via an index probe, so pure
/// computed functions of delta columns do not qualify here, unlike in the
/// shard pass.)
fn head_col_bound(rule: &Rule, c: usize, pred: &Predicate) -> bool {
    match rule.head.args.get(c) {
        Some(HeadArg::Expr(Expr::Lit(_))) => true,
        Some(HeadArg::Expr(Expr::Var(v))) => pred
            .args
            .iter()
            .any(|a| matches!(a, Expr::Var(w) if *w == *v)),
        _ => false,
    }
}

fn full(code: &'static str, reason: impl Into<String>, fixable: bool) -> MaintVerdict {
    MaintVerdict::FullRecompute {
        code,
        reason: reason.into(),
        fixable,
    }
}

/// Judge one semi-naive variant of a view rule: which maintenance
/// algorithm is sound when the delta arrives through positive predicate
/// `delta_pred`? Unlike the shard pass this is order-independent — the
/// judgement depends only on what a delta row determines, not on the
/// schedule the planner runs.
pub fn variant_verdict(
    rule: &Rule,
    delta_pred: Option<usize>,
    decls: &HashMap<String, TableDecl>,
    recursive: bool,
) -> MaintVerdict {
    if let Some(fname) = super::shard::impure_call(rule) {
        return full(
            "impure-builtin",
            format!("calls stateful builtin `{fname}()`; re-derivation would mint fresh values"),
            false,
        );
    }
    let Some(d) = delta_pred else {
        return full(
            "no-delta",
            "no positive body predicate: nothing arrives incrementally",
            false,
        );
    };
    let delta = rule
        .positive_predicates()
        .nth(d)
        .expect("delta_pred indexes a positive predicate");

    if rule.is_aggregate() {
        // Groups are keyed by the non-aggregate head columns
        // (`check_aggregate` pins the head table's primary key to exactly
        // these); a delta row must name its group.
        let group: Vec<usize> = rule
            .head
            .args
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, HeadArg::Expr(_)))
            .map(|(i, _)| i)
            .collect();
        for &c in &group {
            if !head_col_bound(rule, c, delta) {
                return full(
                    "unbound-group-key",
                    format!(
                        "group key column {c} is not a column of the `{}` delta row",
                        delta.table
                    ),
                    true,
                );
            }
        }
        return MaintVerdict::GroupRecompute { group };
    }

    let key = placement_cols(decls, &rule.head.table, rule.head.args.len());
    if recursive {
        return MaintVerdict::SupportRederive {
            key,
            recursive: true,
        };
    }
    // Counting needs no key binding at all: single positive predicate, no
    // negation, whole-row-keyed head means every derivation stands or
    // falls with exactly one source row, and a support count per derived
    // row replays that — even when the head columns are computed.
    let npos = rule.positive_predicates().count();
    let negated = rule
        .body
        .iter()
        .any(|b| matches!(b, BodyElem::Pred(p) if p.negated));
    let whole_row = key.len() == rule.head.args.len();
    if npos == 1 && !negated && whole_row {
        return MaintVerdict::Counting;
    }
    for &c in &key {
        if !head_col_bound(rule, c, delta) {
            return full(
                "unbound-head-key",
                format!(
                    "head key column {c} is join-bound, not a column of the `{}` delta row",
                    delta.table
                ),
                true,
            );
        }
    }
    MaintVerdict::SupportRederive {
        key,
        recursive: false,
    }
}

/// Judge every semi-naive variant of a view rule.
pub fn rule_verdicts(
    rule: &Rule,
    decls: &HashMap<String, TableDecl>,
    recursive: bool,
) -> Vec<MaintVerdict> {
    let npos = rule.positive_predicates().count();
    if npos == 0 {
        return vec![variant_verdict(rule, None, decls, recursive)];
    }
    (0..npos)
        .map(|d| variant_verdict(rule, Some(d), decls, recursive))
        .collect()
}

/// View tables reachable from their own bodies through view rules: the
/// recursion test behind `SupportRederive { recursive }`. Keyed by table
/// name; only heads of view rules appear.
pub fn recursive_views(rules: &[Rule], decls: &HashMap<String, TableDecl>) -> HashSet<String> {
    let mut deps: HashMap<&str, HashSet<&str>> = HashMap::new();
    for rule in rules {
        if !super::classify(rule, decls).is_view {
            continue;
        }
        let entry = deps.entry(rule.head.table.as_str()).or_default();
        for b in &rule.body {
            if let BodyElem::Pred(p) = b {
                entry.insert(p.table.as_str());
            }
        }
    }
    // Transitive closure over the view graph only: base tables terminate.
    let heads: Vec<&str> = deps.keys().copied().collect();
    loop {
        let mut grew = false;
        for &h in &heads {
            let reach: Vec<&str> = deps[h]
                .iter()
                .flat_map(|t| deps.get(t).into_iter().flatten())
                .copied()
                .collect();
            let entry = deps.get_mut(h).expect("head present");
            for t in reach {
                grew |= entry.insert(t);
            }
        }
        if !grew {
            break;
        }
    }
    heads
        .into_iter()
        .filter(|h| deps[h].contains(h))
        .map(String::from)
        .collect()
}

/// One view rule's entry in the whole-program [`MaintReport`].
#[derive(Debug, Clone)]
pub struct RuleMaintReport {
    /// Index of the rule in `ProgramContext::rules` (for lint anchoring).
    pub rule_index: usize,
    /// The rule's display label.
    pub label: String,
    /// Head (view) table.
    pub head: String,
    /// Source location of the rule (for annotations).
    pub span: Span,
    /// `(delta table, verdict)` per semi-naive variant, in variant order.
    pub variants: Vec<(String, MaintVerdict)>,
}

/// Whole-program maintenance analysis: a verdict for every planned
/// variant of every view rule.
#[derive(Debug, Clone, Default)]
pub struct MaintReport {
    /// Per-view-rule entries, in rule order (non-view rules are absent —
    /// their heads are events or inductive state, never maintained).
    pub rules: Vec<RuleMaintReport>,
}

/// Run the maintenance pass over a context. `rule_ok` is the error-pass
/// mask; broken rules are skipped.
pub fn analyze(ctx: &ProgramContext, rule_ok: &[bool]) -> MaintReport {
    let recursive = recursive_views(&ctx.rules, &ctx.decls);
    let mut rules = Vec::new();
    for (i, rule) in ctx.rules.iter().enumerate() {
        if !rule_ok[i] || !super::classify(rule, &ctx.decls).is_view {
            continue;
        }
        let verdicts = rule_verdicts(rule, &ctx.decls, recursive.contains(&rule.head.table));
        let mut deltas: Vec<String> = rule
            .positive_predicates()
            .map(|p| p.table.clone())
            .collect();
        if deltas.is_empty() {
            deltas.push("(none)".into());
        }
        rules.push(RuleMaintReport {
            rule_index: i,
            label: rule.label(i),
            head: rule.head.table.clone(),
            span: rule.span,
            variants: deltas.into_iter().zip(verdicts).collect(),
        });
    }
    MaintReport { rules }
}

/// Render the report for `olgcheck analyze` (text format).
pub fn render(report: &MaintReport) -> String {
    let mut s = String::from("maintenance strategies (how retractions propagate to each view):\n");
    if report.rules.is_empty() {
        s.push_str("  (no view rules)\n");
    }
    for r in &report.rules {
        s.push_str(&format!("  view rule `{}` -> {}:\n", r.label, r.head));
        for (delta, v) in &r.variants {
            s.push_str(&format!("    delta {delta}: {v}\n"));
        }
    }
    s
}

/// Render the report as a JSON array (one object per view rule), for
/// `olgcheck analyze --format json`.
pub fn render_json(report: &MaintReport) -> String {
    use super::diag::json_string;
    let mut out = String::from("[");
    for (i, r) in report.rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"head\":{},\"variants\":[",
            json_string(&r.label),
            json_string(&r.head)
        ));
        for (j, (delta, v)) in r.variants.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                MaintVerdict::Counting => out.push_str(&format!(
                    "{{\"delta\":{},\"verdict\":\"counting\"}}",
                    json_string(delta)
                )),
                MaintVerdict::SupportRederive { key, recursive } => out.push_str(&format!(
                    "{{\"delta\":{},\"verdict\":\"support-rederive\",\"key\":{key:?},\
                     \"recursive\":{recursive}}}",
                    json_string(delta)
                )),
                MaintVerdict::GroupRecompute { group } => out.push_str(&format!(
                    "{{\"delta\":{},\"verdict\":\"group-recompute\",\"group\":{group:?}}}",
                    json_string(delta)
                )),
                MaintVerdict::FullRecompute {
                    code,
                    reason,
                    fixable,
                } => out.push_str(&format!(
                    "{{\"delta\":{},\"verdict\":\"full-recompute\",\"code\":{},\
                     \"reason\":{},\"fixable\":{fixable}}}",
                    json_string(delta),
                    json_string(code),
                    json_string(reason)
                )),
            }
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

///////////////////////////////////////////////////////////////////////////
// Compiled strategies: what the runtime executes
///////////////////////////////////////////////////////////////////////////

/// How one component of a view's key is computed from a source row.
#[derive(Debug, Clone, PartialEq)]
pub enum Bind {
    /// The key component is this column of the source row, verbatim.
    Col(usize),
    /// The key component is this constant for every row the rule derives.
    Const(Value),
}

/// One body predicate (positive or negated) of some rule deriving a view,
/// as the maintenance executor sees it: where dirt can come from, and how
/// a dirty row names the touched keys.
#[derive(Debug, Clone)]
pub struct SourceDep {
    /// The source table.
    pub tid: TableId,
    /// Key projection (one [`Bind`] per key component), or `None` when a
    /// dirty row of this source cannot name the touched keys — the
    /// executor falls back to full recomputation for that round.
    pub binds: Option<Vec<Bind>>,
}

/// A scoped re-evaluation recipe: which rule variant to run, anchored on
/// which positive predicate, and how to find the anchor rows for a key.
#[derive(Debug, Clone)]
pub struct AnchorEval {
    /// Rule id (index into `Plan::rules`).
    pub rule: usize,
    /// Variant whose delta predicate is the anchor.
    pub variant: usize,
    /// Anchor table.
    pub tid: TableId,
    /// Key projection over anchor rows; all components are `Col` or
    /// `Const`, so `Col` columns form an index probe and `Const`
    /// components filter keys that this rule can never derive.
    pub binds: Vec<Bind>,
}

/// The compiled maintenance strategy for one view table.
#[derive(Debug, Clone)]
pub enum ViewMaint {
    /// Weighted multiplicity counting over single-predicate rules.
    Counting {
        /// `(rule id, variant index)` per deriving rule (each rule has
        /// exactly one positive predicate).
        rules: Vec<(usize, usize)>,
        /// The source table of each rule, parallel to `rules`.
        sources: Vec<TableId>,
    },
    /// Re-fold only the touched groups of a single aggregate rule.
    GroupRecompute {
        /// The aggregate rule id.
        rule: usize,
        /// How to re-evaluate a touched group.
        anchor: AnchorEval,
        /// Every body predicate, with key projections for dirt scoping.
        sources: Vec<SourceDep>,
        /// Head columns forming the group key, in head order.
        group_cols: Vec<usize>,
        /// Declared-key order as indices into the group-key tuple (for
        /// deleting an emptied group's row by primary key).
        key_map: Vec<usize>,
    },
    /// Delete the touched head keys, then re-derive them rule by rule.
    KeyRederive {
        /// The head table's declared key columns.
        key_cols: Vec<usize>,
        /// One anchored re-evaluation per deriving rule, in rule order
        /// (insertion order ties break exactly as recomputation would).
        rules: Vec<AnchorEval>,
        /// Every body predicate of every deriving rule.
        sources: Vec<SourceDep>,
    },
}

/// Per-plan maintenance strategies, built by the planner alongside the
/// shard plan.
#[derive(Debug, Clone, Default)]
pub struct MaintPlan {
    /// `verdicts[rule_id][variant_index]`; empty for non-view rules.
    pub verdicts: Vec<Vec<MaintVerdict>>,
    /// Compiled strategy per view table. Views absent here always
    /// recompute (recursive, impure, or structurally unbindable).
    pub views: HashMap<TableId, ViewMaint>,
}

/// The key projection of `pred`'s row onto the head columns `key_cols`,
/// or `None` when some component is neither a constant nor a verbatim
/// column of the predicate. `slot_names` translates compiled head slots
/// back to source-level variable names.
fn source_binds(
    cr: &CompiledRule,
    rule: &Rule,
    key_cols: &[usize],
    pred: &Predicate,
) -> Option<Vec<Bind>> {
    let mut binds = Vec::with_capacity(key_cols.len());
    for &c in key_cols {
        match cr.head_args.get(c) {
            Some(CHeadArg::Expr(CExpr::Lit(v))) => binds.push(Bind::Const(v.clone())),
            Some(CHeadArg::Expr(CExpr::Slot(s))) => {
                let name = cr.slot_names.get(*s)?;
                let col = pred
                    .args
                    .iter()
                    .position(|a| matches!(a, Expr::Var(w) if *w == *name))?;
                binds.push(Bind::Col(col));
            }
            _ => return None,
        }
    }
    // Head args on the AST side must agree (paranoia against slot reuse).
    debug_assert_eq!(rule.head.args.len(), cr.head_args.len());
    Some(binds)
}

/// The variant of `cr` whose delta predicate is positive predicate `p`.
fn variant_for(cr: &CompiledRule, p: usize) -> Option<usize> {
    cr.variants.iter().position(|v| v.delta_pred == Some(p))
}

/// Build the compiled per-view strategies from the planner's outputs.
/// `rules` are the AST rules aligned index-for-index with `compiled`.
pub fn view_strategies(
    rules: &[Rule],
    compiled: &[CompiledRule],
    decls: &HashMap<String, TableDecl>,
    ids: &TableIds,
) -> HashMap<TableId, ViewMaint> {
    let recursive = recursive_views(rules, decls);
    // Deriving view rules per head table, in rule order.
    let mut by_head: HashMap<TableId, Vec<usize>> = HashMap::new();
    for cr in compiled {
        if cr.is_view {
            by_head.entry(cr.head_tid).or_default().push(cr.id);
        }
    }
    let mut out = HashMap::new();
    'views: for (&v, rids) in &by_head {
        // Any recursion or statefulness anywhere in the deriving set
        // disqualifies the whole view.
        for &rid in rids {
            let rule = &rules[rid];
            if recursive.contains(&rule.head.table) || super::shard::impure_call(rule).is_some() {
                continue 'views;
            }
        }
        let any_aggregate = rids.iter().any(|&r| compiled[r].aggregate);
        if any_aggregate {
            // Aggregate views must be the sole writer of their head: a
            // second rule would interleave with group overwrites in an
            // order the scoped path cannot reproduce.
            if rids.len() != 1 {
                continue;
            }
            let rid = rids[0];
            let (cr, rule) = (&compiled[rid], &rules[rid]);
            let group_cols: Vec<usize> = cr
                .head_args
                .iter()
                .enumerate()
                .filter(|(_, a)| matches!(a, CHeadArg::Expr(_)))
                .map(|(i, _)| i)
                .collect();
            // Declared key order -> position in the group tuple
            // (`check_aggregate` guarantees the sets match).
            let declared = placement_cols(decls, &cr.head_table, cr.head_args.len());
            let key_map: Option<Vec<usize>> = declared
                .iter()
                .map(|k| group_cols.iter().position(|g| g == k))
                .collect();
            let Some(key_map) = key_map else { continue };
            let mut sources = Vec::new();
            let mut anchor = None;
            let mut pos = 0usize;
            for b in &rule.body {
                let BodyElem::Pred(p) = b else { continue };
                let Some(tid) = ids.get(&p.table) else {
                    continue 'views;
                };
                let binds = source_binds(cr, rule, &group_cols, p);
                if !p.negated {
                    if anchor.is_none() && binds.is_some() {
                        if let Some(vi) = variant_for(cr, pos) {
                            anchor = Some(AnchorEval {
                                rule: rid,
                                variant: vi,
                                tid,
                                binds: binds.clone().expect("checked is_some"),
                            });
                        }
                    }
                    pos += 1;
                }
                sources.push(SourceDep { tid, binds });
            }
            let Some(anchor) = anchor else { continue };
            out.insert(
                v,
                ViewMaint::GroupRecompute {
                    rule: rid,
                    anchor,
                    sources,
                    group_cols,
                    key_map,
                },
            );
            continue;
        }

        // Non-aggregate views: counting when every rule is a simple
        // single-predicate projection over a whole-row-keyed head, else
        // keyed delete-and-rederive when every rule can anchor.
        let arity = compiled[rids[0]].head_args.len();
        let key_cols = placement_cols(decls, &compiled[rids[0]].head_table, arity);
        let whole_row = key_cols.len() == arity;
        let countable = whole_row
            && rids.iter().all(|&r| {
                let rule = &rules[r];
                rule.positive_predicates().count() == 1
                    && !rule
                        .body
                        .iter()
                        .any(|b| matches!(b, BodyElem::Pred(p) if p.negated))
            });
        if countable {
            let mut crules = Vec::new();
            let mut sources = Vec::new();
            for &rid in rids {
                let cr = &compiled[rid];
                let Some(vi) = variant_for(cr, 0) else {
                    continue 'views;
                };
                crules.push((rid, vi));
                sources.push(cr.positive_tids[0]);
            }
            out.insert(
                v,
                ViewMaint::Counting {
                    rules: crules,
                    sources,
                },
            );
            continue;
        }

        let mut anchors = Vec::new();
        let mut sources = Vec::new();
        for &rid in rids {
            let (cr, rule) = (&compiled[rid], &rules[rid]);
            let mut anchor = None;
            let mut pos = 0usize;
            for b in &rule.body {
                let BodyElem::Pred(p) = b else { continue };
                let Some(tid) = ids.get(&p.table) else {
                    continue 'views;
                };
                let binds = source_binds(cr, rule, &key_cols, p);
                if !p.negated {
                    if anchor.is_none() && binds.is_some() {
                        if let Some(vi) = variant_for(cr, pos) {
                            anchor = Some(AnchorEval {
                                rule: rid,
                                variant: vi,
                                tid,
                                binds: binds.clone().expect("checked is_some"),
                            });
                        }
                    }
                    pos += 1;
                }
                sources.push(SourceDep { tid, binds });
            }
            // Every deriving rule needs an anchor, or touched keys could
            // not be re-derived through it.
            match anchor {
                Some(a) => anchors.push(a),
                None => continue 'views,
            }
        }
        out.insert(
            v,
            ViewMaint::KeyRederive {
                key_cols: key_cols.clone(),
                rules: anchors,
                sources,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{report, ProgramContext, SourceMap};
    use super::*;

    fn maint_report(src: &str) -> MaintReport {
        let mut ctx = ProgramContext::new();
        let mut map = SourceMap::new();
        assert!(ctx.add_source("t.olg", src, &mut map));
        report(&ctx).maint
    }

    fn verdict(rep: &MaintReport, rule: usize, variant: usize) -> &MaintVerdict {
        &rep.rules[rule].variants[variant].1
    }

    #[test]
    fn single_pred_whole_row_view_counts() {
        let rep = maint_report(
            "define(src, keys(0), {Int, Int});
             define(v, keys(0,1), {Int, Int});
             src(1, 2);
             v(X, Y) :- src(X, Y), Y > 0;",
        );
        assert_eq!(verdict(&rep, 0, 0), &MaintVerdict::Counting, "{rep:?}");
    }

    #[test]
    fn computed_head_still_counts() {
        // The head column is a pure function of the source row: counting
        // needs no inverse, so this still certifies.
        let rep = maint_report(
            "define(src, keys(0), {Int});
             define(v, keys(0), {Int});
             src(1);
             v(Y) :- src(X), Y := X + 1;",
        );
        assert_eq!(verdict(&rep, 0, 0), &MaintVerdict::Counting);
    }

    #[test]
    fn keyed_join_gets_support_rederive() {
        let rep = maint_report(
            "define(a, keys(0), {Int, Int});
             define(b, keys(0), {Int, Int});
             define(v, keys(0), {Int, Int});
             a(1, 2); b(2, 3);
             v(X, Z) :- a(X, Y), b(Y, Z);",
        );
        // delta a: head key col 0 = X, a column of a's row.
        assert_eq!(
            verdict(&rep, 0, 0),
            &MaintVerdict::SupportRederive {
                key: vec![0],
                recursive: false
            }
        );
        // delta b: X is join-bound -> fixable full recompute.
        match verdict(&rep, 0, 1) {
            MaintVerdict::FullRecompute { code, fixable, .. } => {
                assert_eq!(*code, "unbound-head-key");
                assert!(fixable);
            }
            other => panic!("expected full-recompute, got {other}"),
        }
    }

    #[test]
    fn aggregates_group_recompute_when_delta_names_the_group() {
        let rep = maint_report(
            "define(src, keys(0,1), {Int, Int});
             define(agg, keys(0), {Int, Int});
             src(1, 2);
             agg(X, count<Y>) :- src(X, Y);",
        );
        assert_eq!(
            verdict(&rep, 0, 0),
            &MaintVerdict::GroupRecompute { group: vec![0] }
        );
    }

    #[test]
    fn aggregate_over_join_bound_group_is_fixable_full() {
        let rep = maint_report(
            "define(m, keys(0), {Int, Int});
             define(src, keys(0,1), {Int, Int});
             define(agg, keys(0), {Int, Int});
             m(1, 7); src(7, 2);
             agg(G, count<Y>) :- m(X, G), src(X, Y);",
        );
        // delta src: G is join-bound through m.
        match verdict(&rep, 0, 1) {
            MaintVerdict::FullRecompute { code, fixable, .. } => {
                assert_eq!(*code, "unbound-group-key");
                assert!(fixable);
            }
            other => panic!("expected full-recompute, got {other}"),
        }
    }

    #[test]
    fn recursive_views_are_flagged() {
        let rep = maint_report(
            "define(edge, keys(0,1), {Int, Int});
             define(path, keys(0,1), {Int, Int});
             edge(1, 2);
             path(X, Y) :- edge(X, Y);
             path(X, Z) :- edge(X, Y), path(Y, Z);",
        );
        // Both path rules carry the recursive flag (the head is reachable
        // from its own body), including the non-recursive base rule.
        match verdict(&rep, 1, 1) {
            MaintVerdict::SupportRederive { recursive, .. } => assert!(recursive),
            other => panic!("expected support-rederive, got {other}"),
        }
        match verdict(&rep, 0, 0) {
            MaintVerdict::SupportRederive { recursive, .. } => assert!(recursive),
            other => panic!("expected support-rederive, got {other}"),
        }
    }

    #[test]
    fn stateful_builtin_is_hard_full_recompute() {
        let rep = maint_report(
            "define(src, keys(0), {Int});
             define(v, keys(0,1), {Int, Int});
             src(1);
             v(X, I) :- src(X), I := qid();",
        );
        match verdict(&rep, 0, 0) {
            MaintVerdict::FullRecompute {
                code,
                fixable,
                reason,
            } => {
                assert_eq!(*code, "impure-builtin");
                assert!(!fixable, "{reason}");
            }
            other => panic!("expected full-recompute, got {other}"),
        }
    }

    #[test]
    fn non_view_rules_are_absent() {
        let rep = maint_report(
            "event e, {Int};
             define(t, keys(0), {Int});
             t(X) :- e(X);",
        );
        assert!(rep.rules.is_empty(), "{rep:?}");
    }

    #[test]
    fn negated_body_means_rederive_not_counting() {
        let rep = maint_report(
            "define(a, keys(0), {Int});
             define(b, keys(0), {Int});
             define(v, keys(0), {Int});
             a(1); b(2);
             v(X) :- a(X), notin b(X);",
        );
        assert_eq!(
            verdict(&rep, 0, 0),
            &MaintVerdict::SupportRederive {
                key: vec![0],
                recursive: false
            }
        );
    }

    #[test]
    fn render_lists_verdicts_and_json_is_tagged() {
        let rep = maint_report(
            "define(src, keys(0), {Int, Int});
             define(v, keys(0,1), {Int, Int});
             src(1, 2);
             v(X, Y) :- src(X, Y);",
        );
        let s = render(&rep);
        assert!(s.contains("view rule `rule#0(v)` -> v"), "{s}");
        assert!(s.contains("delta src: counting"), "{s}");
        let j = render_json(&rep);
        assert!(j.contains("\"verdict\":\"counting\""), "{j}");
    }
}
