//! Whole-program type inference.
//!
//! A lattice fixpoint over the merged program: declared column types seed
//! a catalog, every rule head and ground fact contributes the types it
//! writes, and `Value`-declared (wildcard) columns are *refined* to the
//! join of their contributions. Variable types flow through the refined
//! catalog, so a type learned in one rule reaches every other rule that
//! joins the same table — upgrading the old per-rule E0012 check to a
//! whole-program one, and enabling a new error:
//!
//! * **E0012** — a rule head writes a type incompatible with the column's
//!   declaration (span: the offending head argument).
//! * **E0013** — one variable is bound at two body positions whose types
//!   cannot unify; the join can never match (span: the second binding).
//!
//! The lattice is small: `Value` sits at the top, `Int` coerces to
//! `Float`, `String` interchanges with `Addr` (mirroring the evaluator's
//! `TypeTag::admits`), and everything else unifies only with itself.
//! Refinement joins conflicting contributions back up to `Value`, so a
//! genuinely heterogeneous column stays wildcard-typed rather than
//! erroring. Tables the host fills (external) are never refined — the
//! program text does not see those writes.

use super::{Diagnostic, ProgramContext};
use crate::ast::{AggKind, Expr, HeadArg, Rule, TableKind};
use crate::value::TypeTag;
use std::collections::{BTreeMap, HashMap};

/// Refinement rounds before giving up (the lattice is tiny; two or three
/// rounds settle every shipped program).
const MAX_ROUNDS: usize = 10;

/// The inferred whole-program catalog: declared types with `Value`
/// columns narrowed to what the program actually writes.
#[derive(Debug, Clone, Default)]
pub struct TypedCatalog {
    /// Final column types per table.
    pub cols: BTreeMap<String, Vec<TypeTag>>,
    /// Columns the fixpoint narrowed from a `Value` declaration, with the
    /// type they settled at. Sorted by (table, column).
    pub refined: Vec<(String, usize, TypeTag)>,
}

impl TypedCatalog {
    fn col(&self, table: &str, i: usize) -> Option<TypeTag> {
        self.cols.get(table).and_then(|ts| ts.get(i)).copied()
    }
}

/// Unification on the type lattice: `None` means the two types are
/// disjoint (a join over them can never match).
pub fn unify(a: TypeTag, b: TypeTag) -> Option<TypeTag> {
    match (a, b) {
        _ if a == b => Some(a),
        (TypeTag::Any, t) | (t, TypeTag::Any) => Some(t),
        (TypeTag::Int, TypeTag::Float) | (TypeTag::Float, TypeTag::Int) => Some(TypeTag::Float),
        (TypeTag::Str, TypeTag::Addr) | (TypeTag::Addr, TypeTag::Str) => Some(TypeTag::Addr),
        _ => None,
    }
}

/// Type compatibility for E0012, mirroring `TypeTag::admits` at the
/// schema level: `Value` admits anything, ints coerce to floats, and
/// strings interchange with addresses.
pub fn compatible(decl: TypeTag, inferred: TypeTag) -> bool {
    decl == inferred
        || decl == TypeTag::Any
        || inferred == TypeTag::Any
        || (decl == TypeTag::Float && inferred == TypeTag::Int)
        || matches!(
            (decl, inferred),
            (TypeTag::Addr, TypeTag::Str) | (TypeTag::Str, TypeTag::Addr)
        )
}

/// Join for catalog refinement: like [`unify`], but disjoint
/// contributions widen back to `Value` instead of failing — a column fed
/// both ints and strings is a wildcard column, not an error.
fn join(a: TypeTag, b: TypeTag) -> TypeTag {
    unify(a, b).unwrap_or(TypeTag::Any)
}

/// One variable's inferred type plus where it was first pinned down
/// (for E0013 messages).
#[derive(Clone, Copy)]
struct Binding {
    ty: TypeTag,
    table_col: (usize, usize), // (body predicate ordinal, column)
    poisoned: bool,            // conflicting inferences: stop using it
}

/// Infer variable types for one rule from positive body predicate
/// positions, resolving column types through `catalog`. When `out` is
/// given, unification failures are reported as E0013.
fn rule_var_types<'r>(
    rule: &'r Rule,
    label: &str,
    catalog: &TypedCatalog,
    mut out: Option<&mut Vec<Diagnostic>>,
) -> HashMap<&'r str, TypeTag> {
    let mut bound: HashMap<&str, Binding> = HashMap::new();
    let positives: Vec<_> = rule.positive_predicates().collect();
    for (pi, p) in positives.iter().enumerate() {
        for (i, arg) in p.args.iter().enumerate() {
            let (Some(v), Some(t)) = (arg.as_var(), catalog.col(&p.table, i)) else {
                continue;
            };
            match bound.get_mut(v) {
                None => {
                    bound.insert(
                        v,
                        Binding {
                            ty: t,
                            table_col: (pi, i),
                            poisoned: false,
                        },
                    );
                }
                Some(b) if b.poisoned => {}
                Some(b) => match unify(b.ty, t) {
                    Some(u) => b.ty = u,
                    None => {
                        if let Some(out) = out.as_deref_mut() {
                            let (ppi, pcol) = b.table_col;
                            let prev = positives[ppi];
                            out.push(
                                Diagnostic::error(
                                    "E0013",
                                    p.arg_span(i),
                                    format!(
                                        "rule `{label}` joins `{v}` as {t} (column {i} of \
                                         `{}`), but it is {} (column {pcol} of `{}`); \
                                         the join can never match",
                                        p.table, b.ty, prev.table
                                    ),
                                )
                                .with_help(
                                    "the column types are disjoint; rename one variable \
                                     or fix the schema",
                                ),
                            );
                        }
                        b.poisoned = true;
                    }
                },
            }
        }
    }
    bound
        .into_iter()
        .filter(|(_, b)| !b.poisoned)
        .map(|(v, b)| (v, b.ty))
        .collect()
}

/// The type a head argument writes, given the rule's variable types.
/// `None` when it cannot be determined statically.
fn head_arg_type(arg: &HeadArg, vars: &HashMap<&str, TypeTag>) -> Option<TypeTag> {
    match arg {
        HeadArg::Expr(Expr::Lit(v)) => Some(v.type_tag()),
        HeadArg::Expr(Expr::Var(v)) => vars.get(v.as_str()).copied(),
        HeadArg::Agg(AggKind::Count, _) => Some(TypeTag::Int),
        HeadArg::Agg(AggKind::Avg, _) => Some(TypeTag::Float),
        HeadArg::Agg(AggKind::Set, _) => Some(TypeTag::List),
        HeadArg::Agg(AggKind::Sum | AggKind::Min | AggKind::Max, Some(v)) => {
            vars.get(v.as_str()).copied()
        }
        _ => None,
    }
}

/// Run the refinement fixpoint: start from the declared types and narrow
/// `Value` columns of non-external materialized tables to the join of
/// everything the program writes into them. `rule_ok` masks rules that
/// failed the error-level checks.
pub fn infer(ctx: &ProgramContext, rule_ok: &[bool]) -> TypedCatalog {
    let mut catalog = TypedCatalog {
        cols: ctx
            .decls
            .values()
            .map(|d| (d.name.clone(), d.types.clone()))
            .collect(),
        refined: Vec::new(),
    };
    // Which (table, col) slots may be narrowed: declared Value, on a
    // materialized table the host does not fill. Events are host-insertable
    // by convention (message channels), so their wildcards stay wild.
    let refinable: HashMap<&str, Vec<bool>> = ctx
        .decls
        .values()
        .map(|d| {
            let ok = d.kind == TableKind::Materialized && !ctx.external.contains(&d.name);
            (
                d.name.as_str(),
                d.types.iter().map(|t| ok && *t == TypeTag::Any).collect(),
            )
        })
        .collect();

    for _ in 0..MAX_ROUNDS {
        // Contributions this round: None = nothing written yet. An
        // unknowable contribution widens to Value — we cannot prove the
        // column narrow.
        let mut contrib: HashMap<String, Vec<Option<TypeTag>>> = HashMap::new();
        let contribute =
            |table: &str,
             i: usize,
             t: Option<TypeTag>,
             contrib: &mut HashMap<String, Vec<Option<TypeTag>>>| {
                let Some(flags) = refinable.get(table) else {
                    return;
                };
                if !flags.get(i).copied().unwrap_or(false) {
                    return;
                }
                let slots = contrib
                    .entry(table.to_string())
                    .or_insert_with(|| vec![None; flags.len()]);
                let t = t.unwrap_or(TypeTag::Any);
                slots[i] = Some(match slots[i] {
                    None => t,
                    Some(prev) => join(prev, t),
                });
            };

        for f in &ctx.facts {
            for (i, e) in f.values.iter().enumerate() {
                let t = match e {
                    Expr::Lit(v) => Some(v.type_tag()),
                    _ => None,
                };
                contribute(&f.table, i, t, &mut contrib);
            }
        }
        for (ri, rule) in ctx.rules.iter().enumerate() {
            if rule.delete || !rule_ok.get(ri).copied().unwrap_or(false) {
                continue;
            }
            let vars = rule_var_types(rule, &rule.label(ri), &catalog, None);
            for (i, arg) in rule.head.args.iter().enumerate() {
                contribute(&rule.head.table, i, head_arg_type(arg, &vars), &mut contrib);
            }
        }

        // Fold contributions into the catalog.
        let mut changed = false;
        for (table, slots) in contrib {
            let Some(cols) = catalog.cols.get_mut(&table) else {
                continue;
            };
            for (i, slot) in slots.into_iter().enumerate() {
                if let Some(t) = slot {
                    if cols[i] != t {
                        cols[i] = t;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Record what the fixpoint narrowed.
    for d in ctx.decls.values() {
        let Some(cols) = catalog.cols.get(&d.name) else {
            continue;
        };
        for (i, (&decl_t, &final_t)) in d.types.iter().zip(cols).enumerate() {
            if decl_t == TypeTag::Any && final_t != TypeTag::Any {
                catalog.refined.push((d.name.clone(), i, final_t));
            }
        }
    }
    catalog
        .refined
        .sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    catalog
}

/// The diagnostic pass: with the fixpoint catalog in hand, check every
/// valid rule for body join conflicts (E0013) and head/declaration
/// mismatches (E0012). Spans point at the offending argument.
pub fn check(
    ctx: &ProgramContext,
    rule_ok: &[bool],
    catalog: &TypedCatalog,
    out: &mut Vec<Diagnostic>,
) {
    for (ri, rule) in ctx.rules.iter().enumerate() {
        if !rule_ok.get(ri).copied().unwrap_or(false) {
            continue;
        }
        let label = rule.label(ri);
        let vars = rule_var_types(rule, &label, catalog, Some(out));
        let Some(head_decl) = ctx.decls.get(&rule.head.table) else {
            continue;
        };
        for (i, arg) in rule.head.args.iter().enumerate() {
            let Some(&decl_t) = head_decl.types.get(i) else {
                continue;
            };
            if let Some(inf_t) = head_arg_type(arg, &vars) {
                if !compatible(decl_t, inf_t) {
                    out.push(Diagnostic::error(
                        "E0012",
                        rule.head.arg_span(i),
                        format!(
                            "rule `{label}` writes a {inf_t} into column {i} of `{}`, \
                             declared {decl_t}",
                            rule.head.table
                        ),
                    ));
                }
            }
        }
    }
}

/// Render the catalog for `olgcheck analyze`: one line per table, with
/// refined columns marked.
pub fn render(catalog: &TypedCatalog) -> String {
    let mut s = String::new();
    s.push_str("typed catalog:\n");
    let refined: std::collections::HashSet<(&str, usize)> = catalog
        .refined
        .iter()
        .map(|(t, i, _)| (t.as_str(), *i))
        .collect();
    for (table, cols) in &catalog.cols {
        let rendered: Vec<String> = cols
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if refined.contains(&(table.as_str(), i)) {
                    format!("{t}*")
                } else {
                    format!("{t}")
                }
            })
            .collect();
        s.push_str(&format!("  {table}({})\n", rendered.join(", ")));
    }
    if !catalog.refined.is_empty() {
        s.push_str("  (* = narrowed from Value by whole-program inference)\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze_sources, SourceMap};

    fn catalog(src: &str) -> TypedCatalog {
        let mut ctx = ProgramContext::new();
        let mut map = SourceMap::new();
        assert!(ctx.add_source("t.olg", src, &mut map));
        let rule_ok = vec![true; ctx.rules.len()];
        infer(&ctx, &rule_ok)
    }

    fn codes(src: &str) -> Vec<&'static str> {
        let (diags, _) = analyze_sources(&[("t.olg", src)]);
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn value_column_is_refined_from_writers() {
        let c = catalog(
            "define(u, keys(0), {Value});
             event e, {String};
             u(X) :- e(X);",
        );
        assert_eq!(c.col("u", 0), Some(TypeTag::Str));
        assert_eq!(c.refined, vec![("u".to_string(), 0, TypeTag::Str)]);
    }

    #[test]
    fn conflicting_writers_keep_value() {
        let c = catalog(
            "define(u, keys(0), {Value});
             event e, {String};
             event f, {Int};
             u(X) :- e(X);
             u(X) :- f(X);",
        );
        assert_eq!(c.col("u", 0), Some(TypeTag::Any));
        assert!(c.refined.is_empty());
    }

    #[test]
    fn inference_flows_through_refined_tables() {
        // Per-rule inference sees only `u`'s declared Value and stays
        // silent; the whole-program pass learns u is a String column and
        // flags the write into the Int-typed `t`.
        let src = "define(u, keys(0), {Value});
                   define(t, keys(0), {Int});
                   event e, {String};
                   u(X) :- e(X);
                   t(Y) :- u(Y);";
        assert!(codes(src).contains(&"E0012"), "{:?}", codes(src));
    }

    #[test]
    fn disjoint_join_is_e0013() {
        let src = "define(q, keys(0), {Int});
                   define(r, keys(0), {String});
                   define(p, keys(0), {Int});
                   q(1); r(\"a\");
                   p(X) :- q(X), r(X);";
        let c = codes(src);
        assert!(c.contains(&"E0013"), "{c:?}");
        // The conflicted variable must not cascade into an E0012.
        assert!(!c.contains(&"E0012"), "{c:?}");
    }

    #[test]
    fn coercible_join_is_not_e0013() {
        let src = "define(q, keys(0), {Int});
                   define(r, keys(0), {Float});
                   define(p, keys(0), {Float});
                   q(1); r(2.0);
                   p(X) :- q(X), r(X);";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn e0012_span_points_at_the_offending_argument() {
        let src = "event e, {String};\ndefine(t, keys(0,1), {Int, String});\nt(X, X) :- e(X);";
        let (diags, map) = analyze_sources(&[("t.olg", src)]);
        let d = diags.iter().find(|d| d.code == "E0012").expect("E0012");
        let (file, line, col) = map.resolve(d.span.start);
        assert_eq!(
            (file, line, col),
            ("t.olg", 3, 3),
            "span = first head argument"
        );
    }

    #[test]
    fn external_tables_are_not_refined() {
        let mut ctx = ProgramContext::new();
        let mut map = SourceMap::new();
        assert!(ctx.add_source(
            "t.olg",
            "define(cfg, keys(0), {Value});
             event e, {Int};
             cfg(X) :- e(X);",
            &mut map
        ));
        ctx.mark_external("cfg");
        let c = infer(&ctx, &vec![true; ctx.rules.len()]);
        assert_eq!(c.col("cfg", 0), Some(TypeTag::Any));
    }
}
