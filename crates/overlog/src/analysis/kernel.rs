//! Kernel-specialization analysis: which semi-naive variants compile to
//! specialized kernels, which fall back to generic `Value` probes, and
//! which run fully interpreted — plus *why*, and whether a program change
//! would fix it.
//!
//! The verdicts themselves come from the planner ([`crate::kernel`]
//! compiles every variant and records a [`KernelVerdict`]); this pass
//! re-runs plan compilation over the valid rules so `olgcheck analyze`
//! reports exactly what the runtime will execute. On top of the raw
//! verdicts it adds one piece of whole-program knowledge the planner
//! lacks: the type-inference catalog. A probe column that is *declared*
//! untyped but *inferred* `int` by [`super::types`] is a one-line
//! declaration change away from upgrading a generic kernel to the typed
//! `i64` path — those columns are surfaced as `refinable` and drive the
//! W0011 lint.

use super::types::TypedCatalog;
use super::ProgramContext;
use crate::ast::Span;
use crate::kernel::KernelVerdict;
use crate::plan;
use crate::value::TypeTag;

/// One rule's entry in the whole-program [`KernelReport`].
#[derive(Debug, Clone)]
pub struct RuleKernelReport {
    /// The rule's display label.
    pub label: String,
    /// Head table.
    pub head: String,
    /// Source location of the rule (for annotations).
    pub span: Span,
    /// Index into `ProgramContext::rules`.
    pub rule_index: usize,
    /// `(delta table, verdict)` per semi-naive variant, in variant order;
    /// empty when the rule failed the error-level checks.
    pub variants: Vec<(String, KernelVerdict)>,
    /// Probe columns that keep a variant on the generic path but whose
    /// inferred type is a concrete key type: declaring the column would
    /// upgrade the kernel to typed `i64` probes.
    pub refinable: Vec<(String, usize)>,
}

impl RuleKernelReport {
    /// True when some variant has a kernel-unlocking program fix: an
    /// interpreted fallback the compiler marked fixable, or a generic
    /// probe over a refinable column.
    pub fn fixable(&self) -> bool {
        !self.refinable.is_empty()
            || self
                .variants
                .iter()
                .any(|(_, v)| matches!(v, KernelVerdict::Interpreted { fixable: true, .. }))
    }
}

/// Whole-program kernel-specialization report, aligned with
/// `ProgramContext::rules`.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Per-rule entries.
    pub rules: Vec<RuleKernelReport>,
}

/// Run the kernel-specialization pass: compile the valid rules exactly as
/// the runtime's planner does and collect the per-variant verdicts,
/// cross-referencing generic probe columns against the inference catalog.
pub fn analyze(ctx: &ProgramContext, rule_ok: &[bool], catalog: &TypedCatalog) -> KernelReport {
    let mut report = KernelReport::default();
    let mut valid_idx = Vec::new();
    let mut rules = Vec::new();
    for (i, rule) in ctx.rules.iter().enumerate() {
        report.rules.push(RuleKernelReport {
            label: rule.label(i),
            head: rule.head.table.clone(),
            span: rule.span,
            rule_index: i,
            variants: Vec::new(),
            refinable: Vec::new(),
        });
        if rule_ok[i] {
            valid_idx.push(i);
            rules.push(rule.clone());
        }
    }
    let Ok(plan) = plan::compile(&ctx.decls, &rules) else {
        // A whole-program failure (stratification, view conflict) leaves
        // every entry empty; the error pass already reported it.
        return report;
    };
    for ((orig, rule), verdicts) in valid_idx.iter().zip(&rules).zip(&plan.kernel.verdicts) {
        let entry = &mut report.rules[*orig];
        let mut deltas: Vec<String> = rule
            .positive_predicates()
            .map(|p| p.table.clone())
            .collect();
        if deltas.is_empty() {
            deltas.push("(none)".into());
        }
        // Variants cycle through the delta predicates in order.
        entry.variants = verdicts
            .iter()
            .enumerate()
            .map(|(d, v)| (deltas[d % deltas.len()].clone(), v.clone()))
            .collect();
        for (_, v) in &entry.variants {
            let KernelVerdict::Generic { value_cols } = v else {
                continue;
            };
            for (table, col) in value_cols {
                let declared = ctx
                    .decls
                    .get(table)
                    .and_then(|d| d.types.get(*col))
                    .copied()
                    .unwrap_or(TypeTag::Any);
                let inferred = catalog
                    .cols
                    .get(table)
                    .and_then(|c| c.get(*col))
                    .copied()
                    .unwrap_or(TypeTag::Any);
                if declared == TypeTag::Any
                    && inferred == TypeTag::Int
                    && !entry.refinable.contains(&(table.clone(), *col))
                {
                    entry.refinable.push((table.clone(), *col));
                }
            }
        }
    }
    report
}

/// Render the report for `olgcheck analyze` (text format).
pub fn render(report: &KernelReport) -> String {
    let mut s = String::from(
        "kernel specialization (typed i64 probes where declared column types \
         allow; BOOM_KERNELS=0 forces interpreted):\n",
    );
    for r in &report.rules {
        s.push_str(&format!("  rule `{}` -> {}:\n", r.label, r.head));
        if r.variants.is_empty() {
            s.push_str("    skipped (failed error-level checks)\n");
            continue;
        }
        for (delta, v) in &r.variants {
            s.push_str(&format!("    delta {delta}: {v}\n"));
        }
        for (table, col) in &r.refinable {
            s.push_str(&format!(
                "    refinable: `{table}` column {col} is declared untyped but \
                 inferred Int — declare it to unlock typed probes\n"
            ));
        }
    }
    s
}

/// Render the report as a JSON array (one object per rule), for the
/// machine-readable `olgcheck analyze --format json` output.
pub fn render_json(report: &KernelReport) -> String {
    use super::diag::json_string;
    let mut out = String::from("[");
    for (i, r) in report.rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"head\":{},\"variants\":[",
            json_string(&r.label),
            json_string(&r.head)
        ));
        for (j, (delta, v)) in r.variants.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                KernelVerdict::Typed { int_probes } => out.push_str(&format!(
                    "{{\"delta\":{},\"verdict\":\"typed\",\"int_probes\":{int_probes}}}",
                    json_string(delta)
                )),
                KernelVerdict::Generic { value_cols } => {
                    let cols: Vec<String> = value_cols
                        .iter()
                        .map(|(t, c)| format!("[{},{c}]", json_string(t)))
                        .collect();
                    out.push_str(&format!(
                        "{{\"delta\":{},\"verdict\":\"generic\",\"value_cols\":[{}]}}",
                        json_string(delta),
                        cols.join(",")
                    ));
                }
                KernelVerdict::Interpreted { reason, fixable } => out.push_str(&format!(
                    "{{\"delta\":{},\"verdict\":\"interpreted\",\"reason\":{},\
                     \"fixable\":{fixable}}}",
                    json_string(delta),
                    json_string(reason)
                )),
            }
        }
        out.push(']');
        if !r.refinable.is_empty() {
            let cols: Vec<String> = r
                .refinable
                .iter()
                .map(|(t, c)| format!("[{},{c}]", json_string(t)))
                .collect();
            out.push_str(&format!(",\"refinable\":[{}]", cols.join(",")));
        }
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::super::{report, ProgramContext, SourceMap};
    use super::*;

    fn kernel_report(src: &str) -> KernelReport {
        let mut ctx = ProgramContext::new();
        let mut map = SourceMap::new();
        assert!(ctx.add_source("t.olg", src, &mut map));
        report(&ctx).kernel
    }

    #[test]
    fn typed_join_gets_typed_kernel() {
        let r = kernel_report(
            "define(a, keys(0), {Int, Int});
             define(b, keys(0), {Int, Int});
             define(j, keys(0,1), {Int, Int});
             j(X, Z) :- a(X, Y), b(Y, Z);",
        );
        let entry = &r.rules[0];
        assert_eq!(entry.variants.len(), 2, "{entry:?}");
        for (_, v) in &entry.variants {
            assert!(
                matches!(v, KernelVerdict::Typed { int_probes } if *int_probes == 1),
                "{v}"
            );
        }
        assert!(entry.refinable.is_empty());
    }

    #[test]
    fn untyped_probe_column_is_refinable_when_inferred_int() {
        // `u` is declared wildcard but only ever written from Int columns,
        // so inference pins its columns to Int: the generic probe over
        // u.0 is one declaration away from a typed kernel.
        let r = kernel_report(
            "define(src, keys(0), {Int, Int});
             define(u, keys(0), {Value, Value});
             define(out, keys(0), {Int, Int});
             u(X, Y) :- src(X, Y);
             out(X, Z) :- src(X, Y), u(Y, Z);",
        );
        let entry = &r.rules[1];
        let generic = entry
            .variants
            .iter()
            .any(|(_, v)| matches!(v, KernelVerdict::Generic { .. }));
        assert!(generic, "{:?}", entry.variants);
        assert_eq!(entry.refinable, vec![("u".to_string(), 0)]);
        assert!(entry.fixable());
    }

    #[test]
    fn nested_expression_is_fixable_interpreted() {
        let r = kernel_report(
            "define(t, keys(0), {Int, Int});
             define(o, keys(0), {Int, Int});
             o(X, Y) :- t(X, N), Y := (N + 1) * 2;",
        );
        let entry = &r.rules[0];
        assert!(
            entry
                .variants
                .iter()
                .any(|(_, v)| matches!(v, KernelVerdict::Interpreted { fixable: true, .. })),
            "{:?}",
            entry.variants
        );
        assert!(entry.fixable());
    }

    #[test]
    fn json_shape_is_stable() {
        let r = kernel_report(
            "define(a, keys(0), {Int, Int});
             define(j, keys(0), {Int, Int});
             j(X, Y) :- a(X, Y);",
        );
        let j = render_json(&r);
        assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
        assert!(j.contains("\"verdict\":\"typed\""), "{j}");
    }
}
