//! Diagnostic values, source mapping, and rendering.
//!
//! Every analysis finding is a [`Diagnostic`]: a severity, a stable code
//! (`E####` for errors, `W####` for warnings — see the table in DESIGN.md),
//! a byte [`Span`], a message, and an optional help line. Diagnostics are
//! plain data so tests can assert on codes and positions; [`render`] turns
//! one into the familiar `file:line:col: error[E0004]: ...` form with a
//! caret underline.

use crate::ast::Span;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory; the program still loads.
    Warning,
    /// The program is rejected at load time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable code, e.g. `"E0004"`.
    pub code: &'static str,
    /// Source location (group-relative byte offsets).
    pub span: Span,
    /// One-line description of the problem.
    pub message: String,
    /// Optional suggestion for fixing it.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Is this an error (as opposed to a warning)?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

/// Byte-offset → line/column mapping for one source text.
#[derive(Debug, Clone)]
pub struct LineIndex {
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    len: usize,
}

impl LineIndex {
    /// Index a source text.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex {
            line_starts,
            len: src.len(),
        }
    }

    /// 1-based `(line, col)` of a byte offset. Columns count bytes, matching
    /// how editors address ASCII Overlog sources.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// Byte offset of a 1-based `(line, col)` position (inverse of
    /// [`LineIndex::line_col`]); out-of-range positions clamp.
    pub fn offset(&self, line: usize, col: usize) -> usize {
        let start = self
            .line_starts
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(self.len);
        (start + col.saturating_sub(1)).min(self.len)
    }

    /// The 1-based line number range `[start_line, end_line]` of a span.
    pub fn line_range(&self, span: Span) -> (usize, usize) {
        (
            self.line_col(span.start).0,
            self.line_col(span.end.saturating_sub(1).max(span.start)).0,
        )
    }
}

/// A group of named sources sharing one span offset space.
///
/// olgcheck analyzes several `.olg` files as a single program (the same way
/// the runtime loads them into one `OverlogRuntime`); each file's spans are
/// relocated by its base offset, and `SourceMap` resolves a group-relative
/// span back to `(file, line, col)`.
#[derive(Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

#[derive(Debug)]
struct SourceFile {
    name: String,
    text: String,
    base: usize,
    index: LineIndex,
}

impl SourceMap {
    /// Empty map.
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Add a file and return the base offset its spans must be shifted by.
    pub fn add(&mut self, name: impl Into<String>, text: impl Into<String>) -> usize {
        let text = text.into();
        // +1 gap between files so a span can never straddle two of them and
        // so base 0 stays unique to the first file (dummy spans resolve
        // there, harmlessly, at 1:1).
        let base = self
            .files
            .last()
            .map(|f| f.base + f.text.len() + 1)
            .unwrap_or(0);
        self.files.push(SourceFile {
            name: name.into(),
            index: LineIndex::new(&text),
            text,
            base,
        });
        base
    }

    /// Resolve a group-relative offset to `(file_name, line, col)`.
    pub fn resolve(&self, offset: usize) -> (&str, usize, usize) {
        let fi = self
            .files
            .iter()
            .rposition(|f| offset >= f.base)
            .unwrap_or(0);
        let f = &self.files[fi];
        let (line, col) = f.index.line_col(offset - f.base);
        (&f.name, line, col)
    }

    /// The source line (text, without newline) containing a group offset.
    pub fn line_text(&self, offset: usize) -> &str {
        let fi = self
            .files
            .iter()
            .rposition(|f| offset >= f.base)
            .unwrap_or(0);
        let f = &self.files[fi];
        let local = (offset - f.base).min(f.text.len());
        let start = f.text[..local].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let end = f.text[local..]
            .find('\n')
            .map(|i| local + i)
            .unwrap_or(f.text.len());
        &f.text[start..end]
    }

    /// File names in the map, in insertion order.
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.iter().map(|f| f.name.as_str())
    }
}

/// Render one diagnostic in compiler style:
///
/// ```text
/// namenode.olg:41:3: error[E0004]: unsafe rule `r12`: variable `X` ...
///    |  fqpath(Path, F) :- file(F, D, N, _);
///    |  ^^^^^^^^^^^^^^^
///    = help: bind `X` in a positive body predicate
/// ```
pub fn render(diag: &Diagnostic, map: &SourceMap) -> String {
    let (file, line, col) = map.resolve(diag.span.start);
    let mut out = format!(
        "{file}:{line}:{col}: {}[{}]: {}\n",
        diag.severity, diag.code, diag.message
    );
    let text = map.line_text(diag.span.start);
    if !text.is_empty() {
        out.push_str(&format!("   |  {text}\n"));
        let width = diag
            .span
            .end
            .saturating_sub(diag.span.start)
            .clamp(1, text.len().saturating_sub(col - 1).max(1));
        out.push_str(&format!(
            "   |  {}{}\n",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
    }
    if let Some(help) = &diag.help {
        out.push_str(&format!("   = help: {help}\n"));
    }
    out
}

/// Render one diagnostic as a GitHub Actions workflow command, so CI
/// findings surface as inline annotations on pull requests:
///
/// ```text
/// ::warning file=namenode.olg,line=41,col=3::W0003: variable `X` ...
/// ```
pub fn render_github(diag: &Diagnostic, map: &SourceMap) -> String {
    let (file, line, col) = map.resolve(diag.span.start);
    let (_, end_line, _) = map.resolve(diag.span.end.saturating_sub(1).max(diag.span.start));
    let level = match diag.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    format!(
        "::{level} file={file},line={line},endLine={end_line},col={col},title={}::{}",
        diag.code,
        github_escape(&diag.message)
    )
}

/// Escape a message for the data portion of a workflow command.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Render a diagnostic list as a JSON array (machine-readable `--format
/// json` output). Hand-rolled: the schema is flat and stable, and the
/// build carries no JSON dependency.
pub fn render_json(diags: &[Diagnostic], map: &SourceMap) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (file, line, col) = map.resolve(d.span.start);
        let (_, end_line, end_col) = map.resolve(d.span.end.saturating_sub(1).max(d.span.start));
        out.push_str(&format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"file\":{},\"line\":{line},\
             \"col\":{col},\"end_line\":{end_line},\"end_col\":{end_col},\
             \"message\":{}",
            d.severity,
            d.code,
            json_string(file),
            json_string(&d.message)
        ));
        if let Some(h) = &d.help {
            out.push_str(&format!(",\"help\":{}", json_string(h)));
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// JSON string literal with the escapes the grammar requires.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_maps_offsets() {
        let idx = LineIndex::new("ab\ncd\n\nefg");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(2), (1, 3)); // the newline itself
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(6), (3, 1));
        assert_eq!(idx.line_col(7), (4, 1));
        assert_eq!(idx.line_col(9), (4, 3));
        // Past-the-end clamps.
        assert_eq!(idx.line_col(100), (4, 4));
    }

    #[test]
    fn source_map_resolves_across_files() {
        let mut map = SourceMap::new();
        let b0 = map.add("a.olg", "one\ntwo\n");
        let b1 = map.add("b.olg", "three\n");
        assert_eq!(b0, 0);
        assert_eq!(b1, 9); // 8 bytes + 1 gap
        assert_eq!(map.resolve(4), ("a.olg", 2, 1));
        assert_eq!(map.resolve(b1), ("b.olg", 1, 1));
        assert_eq!(map.resolve(b1 + 2), ("b.olg", 1, 3));
        assert_eq!(map.line_text(b1), "three");
    }

    #[test]
    fn render_includes_position_code_and_caret() {
        let mut map = SourceMap::new();
        map.add("t.olg", "p(X) :- q(X);\n");
        let d = Diagnostic::error("E0002", Span::new(8, 12), "unknown table `q`")
            .with_help("declare it with define(...)");
        let s = render(&d, &map);
        assert!(s.contains("t.olg:1:9: error[E0002]"), "{s}");
        assert!(s.contains("^^^^"), "{s}");
        assert!(s.contains("help: declare"), "{s}");
    }

    #[test]
    fn github_rendering_is_a_workflow_command() {
        let mut map = SourceMap::new();
        map.add("t.olg", "p(X) :- q(X);\n");
        let d = Diagnostic::warning("W0003", Span::new(8, 12), "odd\n100% odd");
        let s = render_github(&d, &map);
        assert_eq!(
            s,
            "::warning file=t.olg,line=1,endLine=1,col=9,title=W0003::odd%0A100%25 odd"
        );
    }

    #[test]
    fn json_rendering_escapes_and_positions() {
        let mut map = SourceMap::new();
        map.add("t.olg", "p(X) :- q(X);\n");
        let diags = vec![
            Diagnostic::error("E0002", Span::new(8, 12), "unknown \"q\"").with_help("declare it"),
            Diagnostic::warning("W0001", Span::new(0, 1), "unused"),
        ];
        let s = render_json(&diags, &map);
        assert!(s.starts_with('[') && s.ends_with(']'), "{s}");
        assert!(s.contains("\"code\":\"E0002\""), "{s}");
        assert!(s.contains("\"message\":\"unknown \\\"q\\\"\""), "{s}");
        assert!(s.contains("\"help\":\"declare it\""), "{s}");
        assert!(s.contains("\"line\":1,\"col\":9"), "{s}");
        assert!(s.contains("\"code\":\"W0001\""), "{s}");
    }
}
