//! Cardinality and selectivity estimation.
//!
//! The estimator assigns every table an expected steady-state row count
//! from what the program text declares: ground facts seed exact counts,
//! event tables are assumed sparse (a handful of tuples per tick), and
//! derived materialized tables get a population prior scaled by how many
//! rules feed them. Declared primary keys double as functional
//! dependencies: a scan whose bound columns cover the key returns at most
//! one row, and every other bound column contributes a fixed selectivity
//! factor.
//!
//! The planner consumes the resulting [`CostModel`] to pick cheap join
//! orders (see [`super::safety::schedule_order_costed`]); `olgcheck
//! analyze` renders the same numbers so the estimates driving the planner
//! are inspectable.

use super::ProgramContext;
use crate::ast::TableKind;
use std::collections::{BTreeMap, HashMap};

/// Expected rows in an event table at any given tick.
const EVENT_ROWS: f64 = 4.0;
/// Population prior for a derived materialized table, per deriving rule.
const DERIVED_ROWS_PER_RULE: f64 = 32.0;
/// Population prior for a host-filled (external) materialized table.
const EXTERNAL_ROWS: f64 = 16.0;
/// Selectivity of one bound non-key column.
const COL_SELECTIVITY: f64 = 0.1;

/// Per-table cardinality estimates plus the key structure needed to score
/// scans. Built either from a whole [`ProgramContext`] (the analyzer) or
/// from declarations and fact counts alone (the planner).
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Estimated steady-state rows per table, sorted for deterministic
    /// rendering.
    pub rows: BTreeMap<String, f64>,
    /// Declared primary-key columns per table (`None` = whole row).
    keys: HashMap<String, Option<Vec<usize>>>,
    arity: HashMap<String, usize>,
}

impl CostModel {
    /// Estimate from declarations, ground-fact counts, per-table deriving
    /// rule counts, and the set of host-filled tables.
    pub fn build(
        decls: &HashMap<String, crate::ast::TableDecl>,
        fact_counts: &HashMap<String, usize>,
        deriving_rules: &HashMap<String, usize>,
        external: impl Fn(&str) -> bool,
    ) -> CostModel {
        let mut rows = BTreeMap::new();
        let mut keys = HashMap::new();
        let mut arity = HashMap::new();
        for d in decls.values() {
            let facts = fact_counts.get(&d.name).copied().unwrap_or(0) as f64;
            let nrules = deriving_rules.get(&d.name).copied().unwrap_or(0) as f64;
            let est = match d.kind {
                TableKind::Event => (EVENT_ROWS + facts).max(1.0),
                TableKind::Materialized => {
                    let mut est = facts + nrules * DERIVED_ROWS_PER_RULE;
                    if external(&d.name) {
                        est += EXTERNAL_ROWS;
                    }
                    est.max(1.0)
                }
            };
            rows.insert(d.name.clone(), est);
            keys.insert(d.name.clone(), d.keys.clone());
            arity.insert(d.name.clone(), d.arity());
        }
        CostModel { rows, keys, arity }
    }

    /// Estimate from an analysis context (facts counted from the program
    /// text, deriving rules from the merged rule set).
    pub fn from_context(ctx: &ProgramContext) -> CostModel {
        let mut fact_counts: HashMap<String, usize> = HashMap::new();
        for f in &ctx.facts {
            *fact_counts.entry(f.table.clone()).or_default() += 1;
        }
        let mut deriving: HashMap<String, usize> = HashMap::new();
        for r in &ctx.rules {
            if !r.delete {
                *deriving.entry(r.head.table.clone()).or_default() += 1;
            }
        }
        CostModel::build(&ctx.decls, &fact_counts, &deriving, |t| {
            ctx.external.contains(t)
        })
    }

    /// Estimated rows in a table (1.0 for unknown tables, so broken
    /// references never poison scheduling).
    pub fn table_rows(&self, table: &str) -> f64 {
        self.rows.get(table).copied().unwrap_or(1.0)
    }

    /// Expected rows a scan of `table` returns when the columns in `bound`
    /// are constrained: at most one row when the bound set covers the
    /// declared key (the key is a functional dependency for the rest),
    /// otherwise the table estimate damped per bound column.
    pub fn scan_estimate(&self, table: &str, bound: &[usize]) -> f64 {
        let rows = self.table_rows(table);
        if !bound.is_empty() {
            let key: Vec<usize> = match self.keys.get(table) {
                Some(Some(k)) => k.clone(),
                Some(None) => (0..self.arity.get(table).copied().unwrap_or(0)).collect(),
                None => Vec::new(),
            };
            if !key.is_empty() && key.iter().all(|c| bound.contains(c)) {
                return 1.0;
            }
        }
        (rows * COL_SELECTIVITY.powi(bound.len() as i32)).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SourceMap;

    fn model(src: &str) -> CostModel {
        let mut ctx = ProgramContext::new();
        let mut map = SourceMap::new();
        assert!(ctx.add_source("t.olg", src, &mut map));
        CostModel::from_context(&ctx)
    }

    #[test]
    fn facts_dominate_fact_tables() {
        let m = model(
            "define(cfg, keys(0), {Int, Int});
             cfg(1, 10); cfg(2, 20); cfg(3, 30);",
        );
        assert_eq!(m.table_rows("cfg"), 3.0);
    }

    #[test]
    fn events_are_sparse_and_derived_tables_scale_with_rules() {
        let m = model(
            "event e, {Int};
             define(t, keys(0), {Int});
             define(u, keys(0), {Int});
             t(X) :- e(X);
             u(X) :- t(X);
             u(X) :- e(X);",
        );
        assert!(m.table_rows("e") < m.table_rows("t"));
        assert!(m.table_rows("u") > m.table_rows("t"), "two deriving rules");
    }

    #[test]
    fn key_coverage_yields_single_row() {
        let m = model(
            "define(t, keys(0), {Int, Int});
             t(1, 2); t(2, 3); t(3, 4); t(4, 5);",
        );
        assert_eq!(m.scan_estimate("t", &[0]), 1.0);
        assert_eq!(m.scan_estimate("t", &[0, 1]), 1.0);
        // A non-key bound column helps but does not pin a single row.
        let partial = m.scan_estimate("t", &[1]);
        assert!(partial >= 1.0 && partial < m.table_rows("t"));
        assert_eq!(m.scan_estimate("t", &[]), 4.0);
    }

    #[test]
    fn unknown_tables_cost_one_row() {
        let m = model("define(t, keys(0), {Int}); t(1);");
        assert_eq!(m.table_rows("ghost"), 1.0);
        assert_eq!(m.scan_estimate("ghost", &[0]), 1.0);
    }
}
